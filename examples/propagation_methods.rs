//! Uncertainty propagation through the unified engine layer: one
//! [`sysunc::PropagationRequest`] pushed through every standard
//! [`sysunc::Propagator`] — crude Monte Carlo, Latin hypercube, spectral
//! polynomial chaos and evidential (Dempster–Shafer) propagation — each
//! tagged with the coping means it realizes from the paper's Sec. IV
//! catalog (removal / forecasting / tolerance).
//!
//! Run with `cargo run --release --example propagation_methods`.

use sysunc::{run_all, standard_engines, PropagationRequest, UncertainInput};

/// Ishigami test function with the standard a = 7, b = 0.1.
fn ishigami(x: &[f64]) -> f64 {
    x[0].sin() + 7.0 * x[1].sin().powi(2) + 0.1 * x[2].powi(4) * x[0].sin()
}

fn main() -> sysunc::Result<()> {
    let pi = std::f64::consts::PI;
    // Analytic moments of Ishigami over U(-π, π)³.
    let mean_true = 3.5;
    let var_true = {
        let v1 = 0.5 * (1.0 + 0.1 * pi.powi(4) / 5.0).powi(2);
        let v2 = 49.0 / 8.0;
        let v13 = 0.01 * pi.powi(8) * (1.0 / 18.0 - 1.0 / 50.0);
        v1 + v2 + v13
    };
    println!("Ishigami: true mean {mean_true:.4}, true variance {var_true:.4}\n");

    // One request, every engine: the whole point of the engine layer.
    let model = |x: &[f64]| ishigami(x);
    let request = PropagationRequest::new(
        vec![UncertainInput::Uniform { a: -pi, b: pi }; 3],
        &model,
    )?
    .with_budget(4096)
    .with_seed(1)
    .with_threshold(9.0);

    let engines = standard_engines();
    println!("== All engines, one request (parallel batch driver) ==");
    for report in run_all(&engines, &request, engines.len()) {
        let rep = report?;
        println!("{rep}");
        println!(
            "{:16} mean err {:.5}  var err {:+.5}  q05..q95 {:.3}..{:.3}",
            "",
            (rep.mean_estimate() - mean_true).abs(),
            rep.variance_estimate() - var_true,
            rep.quantiles.first().map(|(_, q)| q.midpoint()).unwrap_or(f64::NAN),
            rep.quantiles.last().map(|(_, q)| q.midpoint()).unwrap_or(f64::NAN),
        );
    }

    // Budget scaling for the design-of-experiment engines.
    println!("\n== Mean error vs budget (removal by design of experiment) ==");
    println!("{:<16} {:>8} {:>12} {:>12}", "engine", "evals", "mean err", "var err");
    for budget in [256usize, 1_024, 4_096] {
        let scaled = request.clone().with_budget(budget);
        for report in run_all(&engines, &scaled, engines.len()) {
            let rep = report?;
            if rep.engine == "evidential" {
                continue; // budget means focal combos there, not samples
            }
            println!(
                "{:<16} {:>8} {:>12.5} {:>12.5}",
                rep.engine,
                rep.evaluations,
                (rep.mean_estimate() - mean_true).abs(),
                (rep.variance_estimate() - var_true).abs()
            );
        }
        println!();
    }

    // The epistemic case no sampling engine can express: replace the
    // third input by a pure interval. Only the evidential engine accepts
    // it; the others refuse instead of inventing a distribution.
    println!("== Epistemic third input: x3 in [-π, π] with no distribution ==");
    let epistemic = PropagationRequest::new(
        vec![
            UncertainInput::Uniform { a: -pi, b: pi },
            UncertainInput::Uniform { a: -pi, b: pi },
            UncertainInput::Interval { lo: -pi, hi: pi },
        ],
        &model,
    )?
    .with_budget(4096)
    .with_seed(1);
    for (engine, report) in engines.iter().zip(run_all(&engines, &epistemic, engines.len())) {
        match report {
            Ok(rep) => println!(
                "{:<16} mean envelope [{:.4}, {:.4}] (width {:.4})",
                rep.engine,
                rep.mean.lo(),
                rep.mean.hi(),
                rep.epistemic_width()
            ),
            Err(e) => println!("{:<16} refused: {e}", engine.name()),
        }
    }
    Ok(())
}
