//! Round-trip serialization of the model artifacts a team would persist:
//! Bayesian networks, fault trees, mass functions, budgets and the
//! uncertainty register.

use sysunc::budget::UncertaintyBudget;
use sysunc::casestudy::paper_bayes_net;
use sysunc::evidence::{Frame, Interval, MassFunction};
use sysunc::fta::{FaultTree, GateKind};
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::taxonomy::{Means, UncertaintyKind};

#[test]
fn bayes_net_round_trips_through_json() {
    let bn = paper_bayes_net().expect("builds");
    let json = serde_json::to_string(&bn).expect("serializes");
    let back: sysunc::bayesnet::BayesNet = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(bn, back);
    // The deserialized network answers queries identically.
    let a = bn.marginal("ground_truth", &[("perception", "none")]).expect("query");
    let b = back.marginal("ground_truth", &[("perception", "none")]).expect("query");
    assert_eq!(a, b);
}

#[test]
fn fault_tree_round_trips_through_json() {
    let mut ft = FaultTree::new();
    let a = ft.add_basic_event("a", 0.01).expect("valid");
    let b = ft.add_basic_event("b", 0.02).expect("valid");
    let g = ft.add_gate("g", GateKind::KOfN(1), vec![a, b]).expect("valid");
    ft.set_top(g).expect("valid");
    let json = serde_json::to_string_pretty(&ft).expect("serializes");
    let back: FaultTree = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(ft, back);
    assert_eq!(
        ft.top_probability_exact().expect("small"),
        back.top_probability_exact().expect("small")
    );
}

#[test]
fn mass_function_round_trips_through_json() {
    let frame = Frame::new(vec!["car", "pedestrian", "unknown"]).expect("valid");
    let m = MassFunction::from_focal(
        &frame,
        vec![
            (frame.singleton("car").expect("in frame"), 0.6),
            (frame.subset(&["car", "pedestrian"]).expect("in frame"), 0.3),
            (frame.theta(), 0.1),
        ],
    )
    .expect("valid");
    let json = serde_json::to_string(&m).expect("serializes");
    let back: MassFunction = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(m, back);
    let car = frame.singleton("car").expect("in frame");
    assert_eq!(m.belief(car), back.belief(car));
    assert_eq!(m.plausibility(car), back.plausibility(car));
}

#[test]
fn interval_budget_and_register_round_trip() {
    let iv = Interval::new(0.25, 0.75).expect("ordered");
    let iv2: Interval =
        serde_json::from_str(&serde_json::to_string(&iv).expect("ser")).expect("de");
    assert_eq!(iv, iv2);

    let budget = UncertaintyBudget::new(0.1, 0.02, 0.001).expect("valid");
    let b2: UncertaintyBudget =
        serde_json::from_str(&serde_json::to_string(&budget).expect("ser")).expect("de");
    assert_eq!(budget, b2);
    assert_eq!(b2.dominant(), UncertaintyKind::Aleatory);

    let mut reg = UncertaintyRegister::new();
    reg.add("U1", "here", "thing", UncertaintyKind::Ontological).expect("valid");
    reg.assign("U1", Means::Forecasting).expect("known");
    reg.set_status("U1", MitigationStatus::AcceptedResidual).expect("assigned");
    let r2: UncertaintyRegister =
        serde_json::from_str(&serde_json::to_string(&reg).expect("ser")).expect("de");
    assert_eq!(reg, r2);
    assert!(r2.release_ready());
}
