//! Dirichlet distribution over the probability simplex.

use super::{Categorical, Continuous, Gamma};
use crate::error::{ProbError, Result};
use crate::special::{digamma, ln_gamma};
use crate::rng::RngCore;

/// Dirichlet distribution over probability vectors of dimension `k`.
///
/// The conjugate prior for [`Categorical`] observation processes: it is the
/// natural representation of *epistemic* uncertainty about the entries of a
/// conditional probability table (paper Table I). Observing outcomes
/// sharpens the posterior; the marginal credible widths quantify the
/// remaining lack of knowledge.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::Dirichlet;
/// let d = Dirichlet::new(vec![6.0, 3.0, 1.0])?;
/// let m = d.mean();
/// assert!((m[0] - 0.6).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution from concentration parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] unless all concentrations are
    /// strictly positive and there are at least two of them.
    pub fn new(alpha: Vec<f64>) -> Result<Self> {
        if alpha.len() < 2 {
            return Err(ProbError::InvalidParameter(
                "Dirichlet requires at least 2 components".into(),
            ));
        }
        if alpha.iter().any(|&a| !a.is_finite() || a <= 0.0) {
            return Err(ProbError::InvalidParameter(format!(
                "Dirichlet requires all alpha > 0, got {alpha:?}"
            )));
        }
        Ok(Self { alpha })
    }

    /// Symmetric Dirichlet with `k` components and common concentration `a`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `k < 2` or `a <= 0`.
    pub fn symmetric(k: usize, a: f64) -> Result<Self> {
        Self::new(vec![a; k])
    }

    /// Concentration parameters.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// Always false for constructed values (kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }

    /// Total concentration `alpha_0 = sum(alpha)`.
    pub fn total_concentration(&self) -> f64 {
        self.alpha.iter().sum()
    }

    /// Mean probability vector.
    pub fn mean(&self) -> Vec<f64> {
        let a0 = self.total_concentration();
        self.alpha.iter().map(|a| a / a0).collect()
    }

    /// Per-component variances.
    pub fn variance(&self) -> Vec<f64> {
        let a0 = self.total_concentration();
        self.alpha.iter().map(|&a| a * (a0 - a) / (a0 * a0 * (a0 + 1.0))).collect()
    }

    /// Log-density at a point `x` on the simplex.
    ///
    /// Returns negative infinity if `x` is not a valid probability vector of
    /// the right dimension.
    pub fn ln_pdf(&self, x: &[f64]) -> f64 {
        if x.len() != self.alpha.len() {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = x.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || x.iter().any(|&xi| xi < 0.0) {
            return f64::NEG_INFINITY;
        }
        let a0 = self.total_concentration();
        let mut acc = ln_gamma(a0);
        for (&a, &xi) in self.alpha.iter().zip(x) {
            acc -= ln_gamma(a);
            if a != 1.0 { // tidy: allow(float-eq)
                if xi == 0.0 { // tidy: allow(float-eq)
                    return if a > 1.0 { f64::NEG_INFINITY } else { f64::INFINITY };
                }
                acc += (a - 1.0) * xi.ln();
            }
        }
        acc
    }

    /// Draws a probability vector by normalizing independent gammas.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        let gs: Vec<f64> = self
            .alpha
            .iter()
            .map(|&a| Gamma::new(a, 1.0).expect("validated").sample(rng)) // tidy: allow(panic)
            .collect();
        let total: f64 = gs.iter().sum();
        gs.iter().map(|g| g / total).collect()
    }

    /// Draws a [`Categorical`] distribution (a random CPT row).
    ///
    /// # Panics
    ///
    /// Never panics for constructed values; the sampled vector always
    /// normalizes.
    pub fn sample_categorical(&self, rng: &mut dyn RngCore) -> Categorical {
        Categorical::new(self.sample(rng)).expect("sampled simplex point is valid") // tidy: allow(panic)
    }

    /// Bayesian update with observed category counts (conjugacy).
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::DimensionMismatch`] if `counts.len()` differs
    /// from the number of components.
    pub fn updated(&self, counts: &[u64]) -> Result<Self> {
        if counts.len() != self.alpha.len() {
            return Err(ProbError::DimensionMismatch {
                expected: self.alpha.len(),
                actual: counts.len(),
            });
        }
        Ok(Self {
            alpha: self.alpha.iter().zip(counts).map(|(a, &c)| a + c as f64).collect(),
        })
    }

    /// Expected Shannon entropy of a categorical drawn from this Dirichlet,
    /// `E[H(p)] = ψ(α₀+1) − Σᵢ (αᵢ/α₀) ψ(αᵢ+1)` (in nats). A scalar summary
    /// of combined aleatory+epistemic spread.
    pub fn expected_entropy(&self) -> f64 {
        let a0 = self.total_concentration();
        digamma(a0 + 1.0)
            - self.alpha.iter().map(|&a| (a / a0) * digamma(a + 1.0)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dirichlet::new(vec![1.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, -1.0]).is_err());
    }

    #[test]
    fn mean_and_variance_match_formulae() {
        let d = Dirichlet::new(vec![2.0, 3.0, 5.0]).unwrap();
        let m = d.mean();
        assert!((m[0] - 0.2).abs() < 1e-15);
        assert!((m[2] - 0.5).abs() < 1e-15);
        let v = d.variance();
        assert!((v[0] - 0.2 * 0.8 / 11.0).abs() < 1e-15);
    }

    #[test]
    fn samples_lie_on_simplex() {
        let d = Dirichlet::new(vec![0.5, 1.0, 2.0, 4.0]).unwrap();
        let mut rng = testutil::rng(23);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(x.iter().all(|&xi| xi >= 0.0));
        }
    }

    #[test]
    fn sample_mean_converges_to_analytic_mean() {
        let d = Dirichlet::new(vec![6.0, 3.0, 1.0]).unwrap();
        let mut rng = testutil::rng(29);
        let n = 100_000;
        let mut acc = vec![0.0; 3];
        for _ in 0..n {
            for (a, x) in acc.iter_mut().zip(d.sample(&mut rng)) {
                *a += x;
            }
        }
        for (a, m) in acc.iter().zip(d.mean()) {
            assert!((a / n as f64 - m).abs() < 0.005);
        }
    }

    #[test]
    fn conjugate_update_concentrates() {
        let prior = Dirichlet::symmetric(3, 1.0).unwrap();
        let post = prior.updated(&[60, 30, 10]).unwrap();
        let m = post.mean();
        assert!((m[0] - 61.0 / 103.0).abs() < 1e-12);
        // Epistemic spread shrinks.
        assert!(post.variance()[0] < prior.variance()[0]);
        assert!(prior.updated(&[1, 2]).is_err());
    }

    #[test]
    fn ln_pdf_uniform_case() {
        // Dirichlet(1,1,1) is uniform on the simplex with density Γ(3) = 2.
        let d = Dirichlet::symmetric(3, 1.0).unwrap();
        let x = [0.2, 0.3, 0.5];
        assert!((d.ln_pdf(&x) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(d.ln_pdf(&[0.5, 0.5]), f64::NEG_INFINITY);
    }

    #[test]
    fn expected_entropy_decreases_with_concentration() {
        let vague = Dirichlet::symmetric(3, 1.0).unwrap();
        let sharp = Dirichlet::new(vec![100.0, 1.0, 1.0]).unwrap();
        assert!(sharp.expected_entropy() < vague.expected_entropy());
    }
}
