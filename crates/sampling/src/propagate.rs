//! Pushing designs through input distributions and models — the scalar
//! reference implementation of the aleatory-uncertainty propagation
//! loop. The production hot path is the chunked struct-of-arrays driver
//! in the `sysunc` core crate (`propagate_chunked`), which is asserted
//! bit-identical to [`propagate`] output-for-output.

use crate::design::Design;
use crate::error::{Result, SamplingError};
use sysunc_prob::rng::RngCore;
use sysunc_prob::dist::Continuous;
use sysunc_prob::stats::RunningStats;

/// A deterministic model `y = f(x)` mapping an input vector to a scalar,
/// in the sense of the paper's Fig. 2 model A.
///
/// Blanket-implemented for closures.
pub trait Model: Sync {
    /// Evaluates the model at one input point.
    fn eval(&self, x: &[f64]) -> f64;

    /// Evaluates the model at a whole chunk of points given in
    /// struct-of-arrays form: `columns[j][i]` is coordinate `j` of point
    /// `i`, and `out[i]` receives `f(point_i)` — one virtual dispatch
    /// per chunk instead of one per sample.
    ///
    /// The default gathers each point into a scratch row and calls
    /// [`Model::eval`], which is correct for every model; substrate
    /// models with elementwise closed forms override it with
    /// straight-line column loops the autovectorizer can handle.
    /// Overrides must stay bit-identical to elementwise `eval` calls —
    /// that is what keeps the chunked engine drivers deterministic.
    ///
    /// # Panics
    ///
    /// Panics when any column is shorter than `out`.
    fn eval_batch(&self, columns: &[&[f64]], out: &mut [f64]) {
        let mut x = vec![0.0; columns.len()];
        for (i, y) in out.iter_mut().enumerate() {
            for (xj, col) in x.iter_mut().zip(columns) {
                *xj = col[i];
            }
            *y = self.eval(&x);
        }
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> Model for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Transforms unit-hypercube design points to the input space via the
/// inverse-CDF of each marginal (independent inputs).
///
/// # Errors
///
/// Returns [`SamplingError::DimensionMismatch`] when point dimensions and
/// the number of inputs disagree.
pub fn to_input_space(
    points: &[Vec<f64>],
    inputs: &[&dyn Continuous],
) -> Result<Vec<Vec<f64>>> {
    points
        .iter()
        .map(|p| {
            if p.len() != inputs.len() {
                return Err(SamplingError::DimensionMismatch {
                    expected: inputs.len(),
                    actual: p.len(),
                });
            }
            Ok(p.iter().zip(inputs).map(|(&u, d)| d.quantile(u.clamp(1e-15, 1.0 - 1e-15))).collect())
        })
        .collect()
}

/// Result of a propagation run: the output sample plus streaming moments.
#[derive(Debug, Clone)]
pub struct PropagationResult {
    /// Model outputs, one per design point.
    pub outputs: Vec<f64>,
    /// Streaming statistics of the outputs.
    pub stats: RunningStats,
}

impl PropagationResult {
    fn from_outputs(outputs: Vec<f64>) -> Self {
        let mut stats = RunningStats::new();
        for &y in &outputs {
            stats.push(y);
        }
        Self { outputs, stats }
    }

    /// Estimated mean of the model output.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Estimated variance of the model output.
    pub fn variance(&self) -> f64 {
        self.stats.variance()
    }

    /// Standard error of the mean estimate.
    pub fn standard_error(&self) -> f64 {
        self.stats.standard_error()
    }

    /// Estimated probability that the output exceeds a threshold — the
    /// basic failure-probability query of safety analysis.
    /// Range: `[0, 1]` — an empirical exceedance frequency.
    pub fn exceedance_probability(&self, threshold: f64) -> f64 {
        self.outputs.iter().filter(|&&y| y > threshold).count() as f64
            / self.outputs.len().max(1) as f64
    }

    /// Empirical `p`-quantile of the output sample (linear interpolation).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidDesign`] for empty outputs or a
    /// level outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        sysunc_prob::stats::quantile(&self.outputs, p)
            .map_err(|e| SamplingError::InvalidDesign(e.to_string()))
    }
}

/// Propagates independent input distributions through a model with the
/// given design (serial).
///
/// # Errors
///
/// Propagates design-generation and dimension errors.
///
/// # Examples
///
/// ```
/// use sysunc_prob::rng::SeedableRng;
/// use sysunc_prob::dist::{Continuous, Normal, Uniform};
/// use sysunc_sampling::{propagate, LatinHypercubeDesign};
///
/// let a = Normal::new(0.0, 1.0)?;
/// let b = Uniform::new(0.0, 2.0)?;
/// let inputs: Vec<&dyn Continuous> = vec![&a, &b];
/// let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(7);
/// let res = propagate(&inputs, &LatinHypercubeDesign, &|x: &[f64]| x[0] + x[1], 2000, &mut rng)?;
/// assert!((res.mean() - 1.0).abs() < 0.1); // E = 0 + 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn propagate<M: Model>(
    inputs: &[&dyn Continuous],
    design: &dyn Design,
    model: &M,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<PropagationResult> {
    let points = design.generate(n, inputs.len(), rng)?;
    let xs = to_input_space(&points, inputs)?;
    let outputs: Vec<f64> = xs.iter().map(|x| model.eval(x)).collect();
    Ok(PropagationResult::from_outputs(outputs))
}

/// Importance-sampling estimate of `E_f[h(X)]` using a proposal
/// distribution `g`: `(1/n) Σ h(x_i) f(x_i)/g(x_i)` with `x_i ~ g`.
///
/// `target_ln_pdf` must be the log of a *normalized* density. Useful for
/// rare-event (failure-probability) estimation where crude Monte Carlo
/// wastes samples.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidDesign`] for `n == 0` or when every
/// weight degenerates (the proposal does not cover the target's support).
pub fn importance_estimate<F, H>(
    target_ln_pdf: F,
    proposal: &dyn Continuous,
    h: H,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<f64>
where
    F: Fn(f64) -> f64,
    H: Fn(f64) -> f64,
{
    if n == 0 {
        return Err(SamplingError::InvalidDesign("importance sampling needs n > 0".into()));
    }
    let mut num = 0.0;
    let mut any_weight = false;
    for _ in 0..n {
        let x = proposal.sample(rng);
        let lw = target_ln_pdf(x) - proposal.ln_pdf(x);
        let w = lw.exp();
        if w.is_finite() && w > 0.0 {
            any_weight = true;
            num += w * h(x);
        }
    }
    if !any_weight {
        return Err(SamplingError::InvalidDesign(
            "importance weights vanished; proposal does not cover the target".into(),
        ));
    }
    Ok(num / n as f64)
}

/// Convergence trace: running-mean estimates at geometrically spaced sample
/// counts, for plotting accuracy-vs-cost curves (experiment E9).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// Sample counts at which the estimate was recorded.
    pub ns: Vec<usize>,
    /// Running mean estimate at each count.
    pub estimates: Vec<f64>,
}

impl ConvergenceTrace {
    /// Builds a trace from an output sequence, recording at each power of
    /// two (and the final count).
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidDesign`] for empty outputs.
    pub fn from_outputs(outputs: &[f64]) -> Result<Self> {
        if outputs.is_empty() {
            return Err(SamplingError::InvalidDesign("empty output sequence".into()));
        }
        let mut ns = Vec::new();
        let mut estimates = Vec::new();
        let mut acc = 0.0;
        let mut next = 1usize;
        for (i, &y) in outputs.iter().enumerate() {
            acc += y;
            if i + 1 == next || i + 1 == outputs.len() {
                ns.push(i + 1);
                estimates.push(acc / (i + 1) as f64);
                next *= 2;
            }
        }
        Ok(Self { ns, estimates })
    }

    /// Absolute errors against a reference value.
    pub fn errors_against(&self, reference: f64) -> Vec<f64> {
        self.estimates.iter().map(|e| (e - reference).abs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{LatinHypercubeDesign, RandomDesign};
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;
    use sysunc_prob::dist::{Exponential, Normal, Uniform};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn propagate_linear_model_moments() {
        // Y = 2 X1 + 3 X2, X1 ~ N(1, 2), X2 ~ U(0, 1).
        let x1 = Normal::new(1.0, 2.0).unwrap();
        let x2 = Uniform::new(0.0, 1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x1, &x2];
        let model = |x: &[f64]| 2.0 * x[0] + 3.0 * x[1];
        let res = propagate(&inputs, &LatinHypercubeDesign, &model, 20_000, &mut rng()).unwrap();
        // E[Y] = 2*1 + 3*0.5 = 3.5; Var[Y] = 4*4 + 9/12 = 16.75.
        assert!((res.mean() - 3.5).abs() < 0.05, "mean {}", res.mean());
        assert!((res.variance() - 16.75).abs() < 0.5, "var {}", res.variance());
    }

    #[test]
    fn eval_batch_default_matches_elementwise_eval() {
        let model = |x: &[f64]| (x[0] * x[1]).sin() + x[0];
        let c0 = [0.1, 0.2, 0.3, 0.4, 0.5];
        let c1 = [1.0, -1.0, 2.0, -2.0, 0.0];
        let mut out = [0.0; 5];
        Model::eval_batch(&model, &[&c0, &c1], &mut out);
        for i in 0..5 {
            assert_eq!(out[i], model.eval(&[c0[i], c1[i]]), "index {i}");
        }
    }

    #[test]
    fn exceedance_probability_matches_analytic() {
        let x = Normal::new(0.0, 1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x];
        let res =
            propagate(&inputs, &RandomDesign, &|x: &[f64]| x[0], 100_000, &mut rng()).unwrap();
        // P(X > 1.645) ≈ 0.05.
        assert!((res.exceedance_probability(1.645) - 0.05).abs() < 0.005);
    }

    #[test]
    fn importance_sampling_beats_crude_mc_for_rare_events() {
        // P(X > 4) for X ~ N(0,1) = 3.167e-5.
        let target = Normal::new(0.0, 1.0).unwrap();
        let shifted = Normal::new(4.0, 1.0).unwrap();
        let truth = 3.167e-5;
        let est = importance_estimate(
            |x| target.ln_pdf(x),
            &shifted,
            |x| if x > 4.0 { 1.0 } else { 0.0 },
            50_000,
            &mut rng(),
        )
        .unwrap();
        assert!(
            (est - truth).abs() / truth < 0.2,
            "IS estimate {est} should be within 20% of {truth}"
        );
        assert!(importance_estimate(|x| target.ln_pdf(x), &shifted, |_| 1.0, 0, &mut rng())
            .is_err());
    }

    #[test]
    fn to_input_space_maps_quantiles() {
        let e = Exponential::new(1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&e];
        let xs = to_input_space(&[vec![0.5]], &inputs).unwrap();
        assert!((xs[0][0] - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(to_input_space(&[vec![0.5, 0.5]], &inputs).is_err());
    }

    #[test]
    fn convergence_trace_error_shrinks() {
        let x = Normal::new(0.0, 1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x];
        let res =
            propagate(&inputs, &RandomDesign, &|x: &[f64]| x[0], 65_536, &mut rng()).unwrap();
        let trace = ConvergenceTrace::from_outputs(&res.outputs).unwrap();
        let errs = trace.errors_against(0.0);
        // Error at the end must be far below the error near the start.
        assert!(errs.last().unwrap() < &(errs[2].max(1e-4)));
        assert!(ConvergenceTrace::from_outputs(&[]).is_err());
    }
}
