//! Property-based tests on the core invariants of the uncertainty
//! substrates, driven by the in-tree `sysunc_prob::propcheck` harness
//! (replacing the external `proptest` crate): each test states its
//! input domain as a [`propcheck`] strategy, so a failure shrinks to a
//! minimal counterexample and reports a `PROPCHECK_SEED` replay line.

use sysunc::bayesnet::BayesNet;
use sysunc::evidence::{DsStructure, Frame, FuzzyNumber, Interval, MassFunction};
use sysunc::fta::{minimal_cut_sets, FaultTree, GateKind};
use sysunc::prob::dist::{Continuous, LogNormal, Normal, Triangular, Uniform, Weibull};
use sysunc::prob::info::{entropy, js_divergence, kl_divergence};
use sysunc_prob::propcheck::{self, f64_range, prob_vec, u64_range, usize_range, vec_of};
use sysunc_prob::rng::{SeedableRng, StdRng};

// ------------------------------------------------------------------
// Distribution invariants (sysunc-prob).
// ------------------------------------------------------------------

#[test]
fn normal_cdf_monotone_and_quantile_inverse() {
    propcheck::check(
        "normal_cdf_monotone_and_quantile_inverse",
        64,
        (f64_range(-10.0, 10.0), f64_range(0.01, 10.0), f64_range(0.001, 0.999)),
        |&(mu, sigma, p)| {
            let d = Normal::new(mu, sigma).expect("valid");
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
            assert!(d.cdf(x + sigma) >= d.cdf(x));
            assert!(d.pdf(x) >= 0.0);
        },
    );
}

#[test]
fn lognormal_and_weibull_support_nonnegative() {
    propcheck::check(
        "lognormal_and_weibull_support_nonnegative",
        64,
        (f64_range(0.1, 3.0), f64_range(0.1, 3.0), f64_range(0.001, 0.999)),
        |&(a, b, p)| {
            let ln = LogNormal::new(a - 1.0, b).expect("valid");
            let wb = Weibull::new(a, b).expect("valid");
            assert!(ln.quantile(p) >= 0.0);
            assert!(wb.quantile(p) >= 0.0);
            assert!(ln.cdf(-1.0) == 0.0);
            assert!(wb.cdf(-1.0) == 0.0);
        },
    );
}

#[test]
fn triangular_quantile_round_trip() {
    propcheck::check(
        "triangular_quantile_round_trip",
        64,
        (
            f64_range(-5.0, 0.0),
            f64_range(0.01, 5.0),
            f64_range(0.01, 5.0),
            f64_range(0.001, 0.999),
        ),
        |&(a, w1, w2, p)| {
            let d = Triangular::new(a, a + w1, a + w1 + w2).expect("valid");
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
            assert!(x >= a && x <= a + w1 + w2);
        },
    );
}

// ------------------------------------------------------------------
// Information theory invariants.
// ------------------------------------------------------------------

#[test]
fn entropy_bounds_and_kl_nonnegative() {
    propcheck::check(
        "entropy_bounds_and_kl_nonnegative",
        64,
        (prob_vec(5), prob_vec(5)),
        |(p, q)| {
            let h = entropy(p);
            assert!(h >= -1e-12);
            assert!(h <= (5.0f64).ln() + 1e-12);
            let d = kl_divergence(p, q).expect("same length");
            assert!(d >= -1e-12, "KL must be non-negative, got {d}");
            let j = js_divergence(p, q).expect("same length");
            assert!(j >= -1e-12 && j <= std::f64::consts::LN_2 + 1e-9);
        },
    );
}

// ------------------------------------------------------------------
// Interval arithmetic: containment soundness.
// ------------------------------------------------------------------

#[test]
fn interval_arithmetic_contains_pointwise_results() {
    propcheck::check(
        "interval_arithmetic_contains_pointwise_results",
        64,
        (
            f64_range(-10.0, 10.0),
            f64_range(0.0, 5.0),
            f64_range(-10.0, 10.0),
            f64_range(0.0, 5.0),
            f64_range(0.0, 1.0),
            f64_range(0.0, 1.0),
        ),
        |&(a_lo, a_w, b_lo, b_w, ta, tb)| {
            let a = Interval::new(a_lo, a_lo + a_w).expect("ordered");
            let b = Interval::new(b_lo, b_lo + b_w).expect("ordered");
            let x = a_lo + ta * a_w;
            let y = b_lo + tb * b_w;
            assert!((a + b).contains(x + y));
            assert!((a - b).contains(x - y));
            // Multiplication with a small tolerance for rounding at corners.
            let m = a * b;
            assert!(x * y >= m.lo() - 1e-9 && x * y <= m.hi() + 1e-9);
        },
    );
}

// ------------------------------------------------------------------
// Dempster-Shafer invariants.
// ------------------------------------------------------------------

#[test]
fn mass_function_bel_pl_invariants() {
    propcheck::check(
        "mass_function_bel_pl_invariants",
        64,
        (prob_vec(4), f64_range(0.0, 0.9)),
        |(probs, ignorance)| {
            let frame = Frame::new(vec!["a", "b", "c", "d"]).expect("valid");
            // Mix a Bayesian core with mass on Theta.
            let mut focal: Vec<(u64, f64)> = probs
                .iter()
                .enumerate()
                .map(|(i, &p)| (1u64 << i, p * (1.0 - ignorance)))
                .collect();
            focal.push((frame.theta(), *ignorance));
            let m = MassFunction::from_focal(&frame, focal).expect("valid");
            for set in 1u64..16 {
                let bel = m.belief(set);
                let pl = m.plausibility(set);
                assert!(bel <= pl + 1e-12);
                let compl = !set & frame.theta();
                assert!((pl - (1.0 - m.belief(compl))).abs() < 1e-12);
            }
            // Pignistic is a probability distribution.
            let bet = m.pignistic();
            assert!((bet.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Dempster combination with the vacuous mass is the identity.
            let same = m.combine_dempster(&MassFunction::vacuous(&frame)).expect("no conflict");
            for set in 1u64..16 {
                assert!((same.mass(set) - m.mass(set)).abs() < 1e-12);
            }
        },
    );
}

// ------------------------------------------------------------------
// P-box invariants.
// ------------------------------------------------------------------

#[test]
fn ds_structure_cdf_envelope_is_monotone_and_ordered() {
    propcheck::check(
        "ds_structure_cdf_envelope_is_monotone_and_ordered",
        64,
        (vec_of(f64_range(-5.0, 5.0), 2..6), f64_range(0.01, 2.0)),
        |(centers, width)| {
            let n = centers.len();
            let focal: Vec<(Interval, f64)> = centers
                .iter()
                .map(|&c| {
                    (Interval::new(c - width, c + width).expect("ordered"), 1.0 / n as f64)
                })
                .collect();
            let ds = DsStructure::new(focal).expect("valid");
            let mut prev_lo = 0.0;
            let mut prev_hi = 0.0;
            for i in -20..=20 {
                let x = i as f64 * 0.5;
                let b = ds.cdf_bounds(x);
                assert!(b.lo() <= b.hi() + 1e-12);
                assert!(b.lo() >= prev_lo - 1e-12, "lower CDF must be monotone");
                assert!(b.hi() >= prev_hi - 1e-12, "upper CDF must be monotone");
                prev_lo = b.lo();
                prev_hi = b.hi();
            }
            let mean = ds.mean_bounds();
            assert!(mean.width() <= 2.0 * width + 1e-9);
        },
    );
}

// ------------------------------------------------------------------
// Fuzzy number invariants.
// ------------------------------------------------------------------

#[test]
fn fuzzy_cuts_nest_under_arithmetic() {
    propcheck::check(
        "fuzzy_cuts_nest_under_arithmetic",
        64,
        (
            f64_range(-3.0, 0.0),
            f64_range(0.0, 1.0),
            f64_range(1.0, 4.0),
            f64_range(-3.0, 0.0),
            f64_range(0.0, 1.0),
            f64_range(1.0, 4.0),
        ),
        |&(a, m, b, a2, m2, b2)| {
            let x = FuzzyNumber::triangular(a, m, b).expect("ordered");
            let y = FuzzyNumber::triangular(a2, m2, b2).expect("ordered");
            for op in [FuzzyNumber::add, FuzzyNumber::sub, FuzzyNumber::mul] {
                let z = op(&x, &y);
                let mut prev = z.alpha_cut(0.0);
                for i in 1..=10 {
                    let cut = z.alpha_cut(i as f64 / 10.0);
                    assert!(prev.lo() <= cut.lo() + 1e-9);
                    assert!(cut.hi() <= prev.hi() + 1e-9);
                    prev = cut;
                }
            }
        },
    );
}

// ------------------------------------------------------------------
// Bayesian network invariants.
// ------------------------------------------------------------------

#[test]
fn bn_marginals_normalize_and_respect_priors() {
    propcheck::check(
        "bn_marginals_normalize_and_respect_priors",
        64,
        (prob_vec(3), prob_vec(4)),
        |(prior, row_seed)| {
            let mut bn = BayesNet::new();
            let root = bn
                .add_root("root", vec!["a", "b", "c"], prior.clone())
                .expect("valid prior");
            // Derive three distinct CPT rows from the seed by rotation.
            let rows: Vec<Vec<f64>> = (0..3)
                .map(|k| {
                    let mut r = row_seed.clone();
                    r.rotate_left(k);
                    r
                })
                .collect();
            bn.add_node("leaf", vec!["w", "x", "y", "z"], vec![root], rows.clone())
                .expect("valid CPT");
            let m = bn.marginal("leaf", &[]).expect("query");
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Law of total probability by hand.
            for j in 0..4 {
                let expect: f64 = (0..3).map(|i| prior[i] * rows[i][j]).sum();
                assert!((m[j] - expect).abs() < 1e-9);
            }
            // Posterior of the root given any leaf state normalizes.
            for state in ["w", "x", "y", "z"] {
                let post = bn.marginal("root", &[("leaf", state)]).expect("query");
                assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        },
    );
}

// ------------------------------------------------------------------
// Fault tree invariants.
// ------------------------------------------------------------------

#[test]
fn cut_sets_are_minimal_and_sufficient() {
    propcheck::check(
        "cut_sets_are_minimal_and_sufficient",
        64,
        (vec_of(f64_range(0.01, 0.5), 4..5), usize_range(1..4)),
        |(p, k)| {
            let mut ft = FaultTree::new();
            let events: Vec<_> = p
                .iter()
                .enumerate()
                .map(|(i, &pi)| ft.add_basic_event(format!("e{i}"), pi).expect("valid"))
                .collect();
            let vote = ft
                .add_gate("koon", GateKind::KOfN(*k), events.clone())
                .expect("valid");
            let extra =
                ft.add_gate("and01", GateKind::And, vec![events[0], events[1]]).expect("valid");
            let top = ft.add_gate("top", GateKind::Or, vec![vote, extra]).expect("valid");
            ft.set_top(top).expect("valid");
            let cuts = minimal_cut_sets(&ft).expect("small tree");
            // Every cut set triggers the top event.
            for cut in &cuts {
                let mut failed = vec![false; 4];
                for &i in cut {
                    failed[i] = true;
                }
                assert!(ft.structure_function(&failed).expect("valid state"));
                // Minimality: removing any element deactivates the cut.
                for &i in cut {
                    failed[i] = false;
                    let still = ft.structure_function(&failed).expect("valid state");
                    failed[i] = true;
                    // The state may still fail through ANOTHER cut set, but
                    // then this cut would not be minimal only if a subset is a
                    // cut — which subsumption already removed. Check subsets
                    // directly instead:
                    let sub: std::collections::BTreeSet<usize> =
                        cut.iter().copied().filter(|&j| j != i).collect();
                    assert!(
                        !cuts.contains(&sub) || !still,
                        "subset of a minimal cut set must not be a cut set"
                    );
                }
            }
            // Probability bounds bracket the exact value.
            let exact = ft.top_probability_exact().expect("small tree");
            let rare = sysunc::fta::rare_event_approximation(&ft, &cuts);
            assert!(exact <= rare + 1e-9);
        },
    );
}

// ------------------------------------------------------------------
// Sampling invariants.
// ------------------------------------------------------------------

#[test]
fn lhs_projections_cover_all_strata() {
    propcheck::check(
        "lhs_projections_cover_all_strata",
        64,
        (usize_range(4..64), usize_range(1..5), u64_range(0..1000)),
        |&(n, dim, seed)| {
            use sysunc::sampling::{Design, LatinHypercubeDesign};
            let mut rng = StdRng::seed_from_u64(seed);
            let pts = LatinHypercubeDesign.generate(n, dim, &mut rng).expect("valid");
            for j in 0..dim {
                let mut seen = vec![false; n];
                for p in &pts {
                    seen[((p[j] * n as f64) as usize).min(n - 1)] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        },
    );
}

#[test]
fn uniform_distribution_sampling_within_support() {
    propcheck::check(
        "uniform_distribution_sampling_within_support",
        64,
        (f64_range(-10.0, 10.0), f64_range(0.1, 5.0), u64_range(0..100)),
        |&(a, w, seed)| {
            let d = Uniform::new(a, a + w).expect("valid");
            let mut rng = StdRng::seed_from_u64(seed);
            for x in d.sample_n(&mut rng, 100) {
                assert!(d.support().contains(x));
            }
        },
    );
}

// ------------------------------------------------------------------
// Ranked-node CPT invariants.
// ------------------------------------------------------------------

#[test]
fn ranked_cpt_rows_normalize_and_order() {
    propcheck::check(
        "ranked_cpt_rows_normalize_and_order",
        32,
        (vec_of(usize_range(2..5), 1..4), usize_range(2..6), f64_range(0.05, 2.0)),
        |(parents, child_states, sigma)| {
            use sysunc::bayesnet::ranked_cpt;
            let weights = vec![1.0; parents.len()];
            let cpt =
                ranked_cpt(parents, &weights, *child_states, *sigma).expect("valid spec");
            let rows: usize = parents.iter().product();
            assert_eq!(cpt.len(), rows);
            for row in &cpt {
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(row.iter().all(|&p| p >= 0.0));
            }
            // The all-low and all-high parent rows are ordered in expected rank.
            let rank = |row: &Vec<f64>| -> f64 {
                row.iter().enumerate().map(|(i, &p)| i as f64 * p).sum()
            };
            assert!(rank(&cpt[0]) <= rank(&cpt[rows - 1]) + 1e-9);
        },
    );
}

// ------------------------------------------------------------------
// Distribution fitting: round trips on generated data.
// ------------------------------------------------------------------

#[test]
fn normal_fit_round_trip() {
    propcheck::check(
        "normal_fit_round_trip",
        32,
        (f64_range(-5.0, 5.0), f64_range(0.2, 3.0), u64_range(0..50)),
        |&(mu, sigma, seed)| {
            use sysunc::prob::fit::fit_normal;
            let truth = Normal::new(mu, sigma).expect("valid");
            let mut rng = StdRng::seed_from_u64(seed);
            let xs = truth.sample_n(&mut rng, 4_000);
            let fit = fit_normal(&xs).expect("fits");
            assert!((fit.mu() - mu).abs() < 5.0 * sigma / (4000f64).sqrt() + 0.05);
            assert!((fit.sigma() - sigma).abs() < 0.2 * sigma);
        },
    );
}

// ------------------------------------------------------------------
// Murphy combination stays a valid mass function.
// ------------------------------------------------------------------

#[test]
fn murphy_combination_is_valid_mass() {
    propcheck::check(
        "murphy_combination_is_valid_mass",
        32,
        (prob_vec(3), prob_vec(3)),
        |(p, q)| {
            use sysunc::evidence::combine_murphy;
            let frame = Frame::new(vec!["a", "b", "c"]).expect("valid");
            let m1 = MassFunction::bayesian(&frame, p).expect("valid");
            let m2 = MassFunction::bayesian(&frame, q).expect("valid");
            let fused = combine_murphy(&[m1, m2]).expect("combines");
            let total: f64 = fused.focal_elements().map(|(_, m)| m).sum();
            assert!((total - 1.0).abs() < 1e-9);
            for set in 1u64..8 {
                assert!(fused.belief(set) <= fused.plausibility(set) + 1e-12);
            }
        },
    );
}

// ------------------------------------------------------------------
// Common-cause installation conserves single-member probability.
// ------------------------------------------------------------------

#[test]
fn common_cause_member_probability() {
    propcheck::check(
        "common_cause_member_probability",
        32,
        (f64_range(1e-4, 0.2), f64_range(0.0, 0.9), usize_range(2..5)),
        |&(p, beta, n)| {
            use sysunc::fta::install_common_cause_group;
            let mut ft = FaultTree::new();
            let group = install_common_cause_group(&mut ft, "g", n, p, beta).expect("valid");
            ft.set_top(group.member_events[0]).expect("valid");
            let member = ft.top_probability_exact().expect("small");
            // member = 1 - (1 - p(1-β))(1 - pβ) = p - p²β(1-β) ∈ [p - p²/4, p].
            assert!(member <= p + 1e-12);
            assert!(member >= p - p * p * 0.25 - 1e-12);
        },
    );
}

// ------------------------------------------------------------------
// MPE probability is consistent with the joint.
// ------------------------------------------------------------------

#[test]
fn mpe_probability_bounded_by_evidence_probability() {
    propcheck::check(
        "mpe_probability_bounded_by_evidence_probability",
        32,
        (prob_vec(2), prob_vec(2)),
        |(prior, row_seed)| {
            use sysunc::bayesnet::most_probable_explanation;
            let mut bn = BayesNet::new();
            let a = bn.add_root("a", vec!["0", "1"], prior.clone()).expect("valid");
            let mut r2 = row_seed.clone();
            r2.reverse();
            bn.add_node("b", vec!["0", "1"], vec![a], vec![row_seed.clone(), r2])
                .expect("valid");
            let (assignment, p) = most_probable_explanation(&bn, &[(1, 0)]).expect("tractable");
            let p_evidence = bn.evidence_probability(&[("b", "0")]).expect("query");
            assert!(p <= p_evidence + 1e-12, "MPE joint cannot exceed P(e)");
            assert_eq!(assignment[1], 0, "evidence is respected");
        },
    );
}
