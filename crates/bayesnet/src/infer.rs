//! Inference engines: exact variable elimination and approximate
//! likelihood-weighted sampling.

use crate::error::{BnError, Result};
use crate::factor::Factor;
use crate::network::BayesNet;
use sysunc_prob::rng::RngCore;

/// Exact inference by variable elimination with a min-fill/min-degree
/// style greedy ordering.
#[derive(Debug)]
pub struct VariableElimination<'a> {
    bn: &'a BayesNet,
}

impl<'a> VariableElimination<'a> {
    /// Creates an engine over a network.
    pub fn new(bn: &'a BayesNet) -> Self {
        Self { bn }
    }

    /// Posterior marginal `P(query | evidence)` as a probability vector
    /// over the query node's states.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InconsistentEvidence`] when the evidence has zero
    /// probability, plus factor-level errors on malformed networks.
    pub fn marginal(&self, query: usize, evidence: &[(usize, usize)]) -> Result<Vec<f64>> {
        if query >= self.bn.len() {
            return Err(BnError::UnknownNode(format!("id {query}")));
        }
        let factor = self.run(&[query], evidence)?;
        let factor = factor.normalized()?;
        Ok(factor.values().to_vec())
    }

    /// Joint posterior over a set of query nodes (values in row-major
    /// order of the query list).
    ///
    /// # Errors
    ///
    /// Same as [`VariableElimination::marginal`].
    pub fn joint(&self, query: &[usize], evidence: &[(usize, usize)]) -> Result<Factor> {
        self.run(query, evidence)?.normalized()
    }

    /// Probability of the evidence `P(e)`.
    ///
    /// # Errors
    ///
    /// Factor-level errors on malformed networks.
    /// Range: `[0, 1]` — a normalized probability of the evidence.
    pub fn evidence_probability(&self, evidence: &[(usize, usize)]) -> Result<f64> {
        Ok(self.run(&[], evidence)?.total())
    }

    /// Core elimination loop.
    fn run(&self, query: &[usize], evidence: &[(usize, usize)]) -> Result<Factor> {
        // Collect CPT factors with evidence applied.
        let mut factors: Vec<Factor> = Vec::with_capacity(self.bn.len());
        for id in 0..self.bn.len() {
            let mut f = self.bn.node_factor(id);
            for &(var, state) in evidence {
                f = f.reduce(var, state)?;
            }
            factors.push(f);
        }
        // Eliminate all hidden variables.
        let keep: std::collections::HashSet<usize> = query
            .iter()
            .copied()
            .chain(evidence.iter().map(|&(v, _)| v))
            .collect();
        let mut hidden: Vec<usize> =
            (0..self.bn.len()).filter(|v| !keep.contains(v)).collect();
        // Greedy: repeatedly eliminate the variable whose product factor
        // has the smallest resulting scope.
        while !hidden.is_empty() {
            let (pick_idx, _) = hidden
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let mut scope: std::collections::HashSet<usize> =
                        std::collections::HashSet::new();
                    for f in factors.iter().filter(|f| f.vars().contains(&v)) {
                        scope.extend(f.vars().iter().copied());
                    }
                    (i, scope.len())
                })
                .min_by_key(|&(_, size)| size)
                .expect("hidden not empty"); // tidy: allow(panic)
            let var = hidden.swap_remove(pick_idx);
            let (with_var, without_var): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.vars().contains(&var));
            let mut prod = Factor::unit();
            for f in with_var {
                prod = prod.product(&f)?;
            }
            factors = without_var;
            factors.push(prod.sum_out(var));
        }
        // Multiply the remaining factors.
        let mut result = Factor::unit();
        for f in factors {
            result = result.product(&f)?;
        }
        Ok(result)
    }
}

/// Approximate posterior inference by likelihood weighting — used as an
/// independent cross-check of the exact engine in the Table I experiment.
///
/// Returns the posterior marginal of `query` given evidence, from `n`
/// weighted samples.
///
/// # Errors
///
/// Returns [`BnError::UnknownNode`] for a bad query id and
/// [`BnError::InconsistentEvidence`] when every sample has zero weight.
pub fn likelihood_weighting(
    bn: &BayesNet,
    query: usize,
    evidence: &[(usize, usize)],
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<Vec<f64>> {
    use sysunc_prob::rng::Rng as _;
    if query >= bn.len() {
        return Err(BnError::UnknownNode(format!("id {query}")));
    }
    let ev: std::collections::HashMap<usize, usize> = evidence.iter().copied().collect();
    let k = bn.nodes()[query].states.len();
    let mut acc = vec![0.0; k];
    let mut total_weight = 0.0;
    let mut assignment = vec![0usize; bn.len()];
    for _ in 0..n {
        let mut weight = 1.0;
        // Nodes are stored in topological order.
        for (id, node) in bn.nodes().iter().enumerate() {
            // CPT row for the current parent assignment.
            let mut row = 0usize;
            for &p in &node.parents {
                row = row * bn.nodes()[p].states.len() + assignment[p];
            }
            let dist = &node.cpt[row];
            if let Some(&obs) = ev.get(&id) {
                assignment[id] = obs;
                weight *= dist[obs];
            } else {
                // Sample from the CPT row.
                let u: f64 = rng.random();
                let mut cum = 0.0;
                let mut chosen = dist.len() - 1;
                for (s, &p) in dist.iter().enumerate() {
                    cum += p;
                    if u < cum {
                        chosen = s;
                        break;
                    }
                }
                assignment[id] = chosen;
            }
        }
        if weight > 0.0 {
            acc[assignment[query]] += weight;
            total_weight += weight;
        }
    }
    if total_weight <= 0.0 {
        return Err(BnError::InconsistentEvidence);
    }
    Ok(acc.iter().map(|a| a / total_weight).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn sprinkler() -> BayesNet {
        let mut bn = BayesNet::new();
        let rain = bn.add_root("rain", vec!["yes", "no"], vec![0.2, 0.8]).unwrap();
        let s = bn
            .add_node(
                "sprinkler",
                vec!["on", "off"],
                vec![rain],
                vec![vec![0.01, 0.99], vec![0.4, 0.6]],
            )
            .unwrap();
        bn.add_node(
            "grass_wet",
            vec!["yes", "no"],
            vec![s, rain],
            vec![vec![0.99, 0.01], vec![0.9, 0.1], vec![0.8, 0.2], vec![0.0, 1.0]],
        )
        .unwrap();
        bn
    }

    /// A 6-node chain A→B→C→D→E→F with noisy copies.
    fn chain() -> BayesNet {
        let mut bn = BayesNet::new();
        let mut prev = bn.add_root("n0", vec!["0", "1"], vec![0.7, 0.3]).unwrap();
        for i in 1..6 {
            prev = bn
                .add_node(
                    format!("n{i}"),
                    vec!["0", "1"],
                    vec![prev],
                    vec![vec![0.9, 0.1], vec![0.2, 0.8]],
                )
                .unwrap();
        }
        bn
    }

    #[test]
    fn ve_matches_brute_force_on_sprinkler() {
        let bn = sprinkler();
        // Brute-force joint.
        let mut p_rain_given_wet = [0.0; 2];
        let mut p_wet = 0.0;
        for r in 0..2 {
            for s in 0..2 {
                for w in 0..2 {
                    let pr = bn.nodes()[0].cpt[0][r];
                    let ps = bn.nodes()[1].cpt[r][s];
                    let pw = bn.nodes()[2].cpt[s * 2 + r][w];
                    let joint = pr * ps * pw;
                    if w == 0 {
                        p_wet += joint;
                        p_rain_given_wet[r] += joint;
                    }
                }
            }
        }
        for v in &mut p_rain_given_wet {
            *v /= p_wet;
        }
        let ve = VariableElimination::new(&bn);
        let wet_id = bn.node_id("grass_wet").unwrap();
        let rain_id = bn.node_id("rain").unwrap();
        let m = ve.marginal(rain_id, &[(wet_id, 0)]).unwrap();
        assert!((m[0] - p_rain_given_wet[0]).abs() < 1e-12);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ve_chain_forward_and_backward() {
        let bn = chain();
        let ve = VariableElimination::new(&bn);
        // Forward: prior of the last node via repeated matrix application.
        let mut p = [0.7, 0.3];
        for _ in 0..5 {
            p = [0.9 * p[0] + 0.2 * p[1], 0.1 * p[0] + 0.8 * p[1]];
        }
        let m = ve.marginal(5, &[]).unwrap();
        assert!((m[0] - p[0]).abs() < 1e-12);
        // Backward: conditioning the last node shifts the first.
        let m0 = ve.marginal(0, &[(5, 1)]).unwrap();
        assert!(m0[1] > 0.3, "observing a downstream 1 raises P(n0 = 1)");
    }

    #[test]
    fn joint_query() {
        let bn = sprinkler();
        let ve = VariableElimination::new(&bn);
        let j = ve.joint(&[0, 1], &[]).unwrap();
        assert!((j.total() - 1.0).abs() < 1e-12);
        // P(rain=yes, sprinkler=on) = 0.2 * 0.01.
        let idx = if j.vars() == [0, 1] { 0 } else { 0 };
        assert!((j.values()[idx] - 0.002).abs() < 1e-12);
    }

    #[test]
    fn likelihood_weighting_approximates_exact() {
        let bn = sprinkler();
        let ve = VariableElimination::new(&bn);
        let wet = bn.node_id("grass_wet").unwrap();
        let rain = bn.node_id("rain").unwrap();
        let exact = ve.marginal(rain, &[(wet, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let approx = likelihood_weighting(&bn, rain, &[(wet, 0)], 200_000, &mut rng).unwrap();
        assert!(
            (exact[0] - approx[0]).abs() < 0.01,
            "LW {} vs exact {}",
            approx[0],
            exact[0]
        );
    }

    #[test]
    fn evidence_probability_decomposes() {
        // P(a, b) = P(a) P(b | a) for chained evidence.
        let bn = chain();
        let ve = VariableElimination::new(&bn);
        let p_ab = ve.evidence_probability(&[(0, 0), (1, 0)]).unwrap();
        assert!((p_ab - 0.7 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn bad_query_id_errors() {
        let bn = chain();
        let ve = VariableElimination::new(&bn);
        assert!(ve.marginal(99, &[]).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(likelihood_weighting(&bn, 99, &[], 10, &mut rng).is_err());
    }
}
