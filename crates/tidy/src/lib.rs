//! # sysunc-tidy — the workspace's static-analysis gate
//!
//! A dependency-free lint driver that walks the workspace and enforces
//! the coding invariants the `sysunc` crates rely on. Each invariant is
//! one [`Lint`] implementation over plain file text (line-oriented
//! heuristics, not a full parser — deliberately simple enough to audit
//! by eye, which is the point of a gate you must trust).
//!
//! In the paper's vocabulary this is an uncertainty-**prevention**
//! means applied to our own toolchain: the rules remove whole classes
//! of epistemic uncertainty about the code base (does it build offline?
//! can library code abort the process? are probability contracts
//! stated?) before they can occur, rather than detecting them later.
//!
//! ## Rules
//!
//! | rule            | invariant                                                        |
//! |-----------------|------------------------------------------------------------------|
//! | `manifest`      | every Cargo.toml dependency is a path (or workspace) dependency  |
//! | `panic`         | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `float-eq`      | no `==`/`!=` on float-typed expressions outside tests            |
//! | `prob-contract` | public probability-named fns state a range contract              |
//! | `error-impl`    | every `error.rs` enum implements `Display` and `Error`           |
//! | `doc`           | public items in each crate's `lib.rs` carry doc comments         |
//!
//! A violating line can be acknowledged explicitly with the escape
//! hatch comment `// tidy: allow(<rule>)` on the same or preceding
//! line; allowed violations are counted and reported, never silent.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod walk;

/// What kind of file a [`SourceFile`] is, which decides the lints that
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A `Cargo.toml` manifest.
    Manifest,
    /// Rust code shipped in a library (`src/`, excluding `src/bin/`).
    RustLibrary,
    /// Rust code that only runs under the test/bench/example harnesses.
    RustTest,
}

/// One file of the workspace, read into memory with its classification.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Full file contents.
    pub content: String,
    /// Classification deciding which lints apply.
    pub kind: FileKind,
}

impl SourceFile {
    /// Builds an in-memory file, mainly for fixture tests.
    pub fn new(path: impl Into<PathBuf>, content: impl Into<String>, kind: FileKind) -> Self {
        Self { path: path.into(), content: content.into(), kind }
    }

    /// The file's lines, for line-oriented lint rules.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.content.lines().enumerate().map(|(i, l)| (i + 1, l))
    }
}

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (a [`Lint::name`]).
    pub rule: &'static str,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// A single invariant checked over one file at a time.
pub trait Lint {
    /// Short rule identifier used in reports and `allow(...)` comments.
    fn name(&self) -> &'static str;

    /// Whether the rule applies to files of this kind at all.
    fn applies(&self, kind: FileKind) -> bool;

    /// Checks one file, appending any violations found.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// The outcome of a full workspace run: surviving violations plus the
/// ones acknowledged via `// tidy: allow(<rule>)`.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that stand (nonzero exit).
    pub violations: Vec<Violation>,
    /// Violations suppressed by an explicit allow comment.
    pub allowed: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes (no unacknowledged violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Returns true when `line_no` (1-based) in `file` carries an
/// `allow(<rule>)` acknowledgement on the same or the preceding line.
fn is_allowed(file: &SourceFile, line_no: usize, rule: &str) -> bool {
    let marker = format!("tidy: allow({rule})");
    let lines: Vec<&str> = file.content.lines().collect();
    let mut candidates = Vec::new();
    if line_no >= 1 && line_no <= lines.len() {
        candidates.push(lines[line_no - 1]);
    }
    if line_no >= 2 {
        candidates.push(lines[line_no - 2]);
    }
    candidates.iter().any(|l| l.contains(&marker))
}

/// Runs every lint over every file, splitting findings into standing and
/// explicitly allowed violations.
pub fn check_files(files: &[SourceFile]) -> Report {
    let lints = rules::all();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for file in files {
        let mut raw = Vec::new();
        for lint in &lints {
            if lint.applies(file.kind) {
                lint.check(file, &mut raw);
            }
        }
        for v in raw {
            if is_allowed(file, v.line, v.rule) {
                report.allowed.push(v);
            } else {
                report.violations.push(v);
            }
        }
    }
    report.violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.allowed.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Walks the workspace at `root` and runs the full lint set.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let files = walk::collect(root)?;
    Ok(check_files(&files))
}

/// Marks, per line, whether that line is inside a `#[cfg(test)]` module
/// block. Used by rules that only police shipped library code.
///
/// Brace counting is textual (strings containing unbalanced braces can
/// fool it); rules built on this are heuristics, with the `allow`
/// escape hatch as the correction path.
pub fn test_block_lines(content: &str) -> Vec<bool> {
    let mut flags = Vec::new();
    let mut in_test = false;
    let mut saw_open = false;
    let mut depth: i64 = 0;
    for line in content.lines() {
        if !in_test && line.trim_start().starts_with("#[cfg(test)]") {
            in_test = true;
            saw_open = false;
            depth = 0;
        }
        flags.push(in_test);
        if in_test {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        saw_open = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if saw_open && depth <= 0 {
                in_test = false;
            }
        }
    }
    flags
}

/// True for lines that are entirely comments (`//`, `///`, `//!`).
pub fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysFires;
    impl Lint for AlwaysFires {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn applies(&self, kind: FileKind) -> bool {
            kind == FileKind::RustLibrary
        }
        fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
            for (no, line) in file.lines() {
                if line.contains("bad(") {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: no,
                        rule: self.name(),
                        message: "fixture".into(),
                    });
                }
            }
        }
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let file = SourceFile::new(
            "src/x.rs",
            "let a = 1; // tidy: allow(panic)\n// tidy: allow(panic)\nlet b = 2;\nlet c = 3;\n",
            FileKind::RustLibrary,
        );
        assert!(is_allowed(&file, 1, "panic"));
        assert!(is_allowed(&file, 3, "panic"), "preceding-line allow applies");
        assert!(!is_allowed(&file, 4, "panic"));
        assert!(!is_allowed(&file, 1, "float-eq"), "allow is rule-specific");
    }

    #[test]
    fn report_partitions_allowed_from_standing() {
        let file = SourceFile::new(
            "src/x.rs",
            "bad(); // tidy: allow(panic)\nok();\nbad();\n",
            FileKind::RustLibrary,
        );
        let lint = AlwaysFires;
        let mut raw = Vec::new();
        lint.check(&file, &mut raw);
        let mut report = Report { files_scanned: 1, ..Report::default() };
        for v in raw {
            if is_allowed(&file, v.line, v.rule) {
                report.allowed.push(v);
            } else {
                report.violations.push(v);
            }
        }
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.violations.len(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn test_block_lines_tracks_cfg_test_modules() {
        let src = "\
pub fn shipped() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
pub fn also_shipped() {}
";
        let flags = test_block_lines(src);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn violation_display_is_file_line_rule_message() {
        let v = Violation {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            rule: "panic",
            message: "found `.unwrap()`".into(),
        };
        assert_eq!(v.to_string(), "crates/x/src/lib.rs:7: panic: found `.unwrap()`");
    }
}
