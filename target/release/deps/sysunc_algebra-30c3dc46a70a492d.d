/root/repo/target/release/deps/sysunc_algebra-30c3dc46a70a492d.d: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/release/deps/libsysunc_algebra-30c3dc46a70a492d.rlib: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/release/deps/libsysunc_algebra-30c3dc46a70a492d.rmeta: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

crates/algebra/src/lib.rs:
crates/algebra/src/decomp.rs:
crates/algebra/src/eigen.rs:
crates/algebra/src/error.rs:
crates/algebra/src/matrix.rs:
crates/algebra/src/orthopoly.rs:
