//! Model-function adapters: orbital quantities exposed as deterministic
//! models `y = f(x)` pluggable into any propagation engine that consumes
//! the [`Model`] trait (the suite's unified `Propagator` layer).
//!
//! These adapters turn the paper's running two-planet example into
//! propagation workloads: uncertain masses and separation (aleatory
//! measurement spread or epistemic parameter intervals) pushed through
//! Kepler dynamics.

use crate::system::NBodySystem;
use sysunc_sampling::Model;

/// Orbital period of the circular two-planet configuration under
/// parameter uncertainty: `x = [m1, m2, d]` (Kepler's third law, G = 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBodyPeriodModel;

impl Model for TwoBodyPeriodModel {
    fn eval(&self, x: &[f64]) -> f64 {
        NBodySystem::circular_period(x[0], x[1], x[2])
    }

    fn eval_batch(&self, columns: &[&[f64]], out: &mut [f64]) {
        assert!(columns.len() >= 3, "TwoBodyPeriodModel needs [m1, m2, d]");
        // Same closed-form expression as `eval`, applied straight to the
        // coordinate columns: no per-sample gather, and the sqrt pipeline
        // vectorizes. Bit-identical to the scalar path.
        let (m1, m2, d) = (columns[0], columns[1], columns[2]);
        for (i, y) in out.iter_mut().enumerate() {
            *y = NBodySystem::circular_period(m1[i], m2[i], d[i]);
        }
    }
}

/// Total mechanical energy of the circular two-planet configuration:
/// `x = [m1, m2, d]`. Invalid (non-positive) parameters yield NaN, which
/// the calling engine surfaces through its statistics rather than a
/// panic — intentionally, since a sampled tail can stray out of domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBodyEnergyModel;

impl Model for TwoBodyEnergyModel {
    fn eval(&self, x: &[f64]) -> f64 {
        match NBodySystem::two_planets(x[0], x[1], x[2]) {
            Ok(sys) => sys.total_energy(),
            Err(_) => f64::NAN,
        }
    }

    fn eval_batch(&self, columns: &[&[f64]], out: &mut [f64]) {
        assert!(columns.len() >= 3, "TwoBodyEnergyModel needs [m1, m2, d]");
        // System construction dominates; the win here is skipping the
        // per-sample heap gather of the default implementation.
        let (m1, m2, d) = (columns[0], columns[1], columns[2]);
        for (i, y) in out.iter_mut().enumerate() {
            *y = self.eval(&[m1[i], m2[i], d[i]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_model_matches_kepler() {
        let y = TwoBodyPeriodModel.eval(&[1.0, 1.0, 1.0]);
        let truth = 2.0 * std::f64::consts::PI / (2.0f64).sqrt();
        assert!((y - truth).abs() < 1e-12);
    }

    #[test]
    fn energy_model_is_negative_for_bound_orbits_and_nan_out_of_domain() {
        let e = TwoBodyEnergyModel.eval(&[1.0, 2.0, 1.5]);
        assert!(e < 0.0, "circular orbits are bound: {e}");
        assert!(TwoBodyEnergyModel.eval(&[1.0, 2.0, -1.0]).is_nan());
    }

    #[test]
    fn eval_batch_bit_identical_to_scalar_eval() {
        let n = 33;
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|j| (0..n).map(|i| 0.5 + 0.01 * (i * 3 + j) as f64).collect())
            .collect();
        let views: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        for model in [&TwoBodyPeriodModel as &dyn Model, &TwoBodyEnergyModel] {
            let mut out = vec![0.0; n];
            model.eval_batch(&views, &mut out);
            for i in 0..n {
                let y = model.eval(&[cols[0][i], cols[1][i], cols[2][i]]);
                assert_eq!(out[i].to_bits(), y.to_bits(), "sample {i}");
            }
        }
    }

    #[test]
    fn adapters_are_models() {
        fn takes_model<M: Model>(m: &M, x: &[f64]) -> f64 {
            m.eval(x)
        }
        assert!(takes_model(&TwoBodyPeriodModel, &[1.0, 1.0, 1.0]) > 0.0);
    }
}
