//! Triangular distribution.

use super::{Continuous, Support};
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// Triangular distribution on `[a, b]` with mode `c`.
///
/// The classic three-point expert-elicitation model: when only a minimum,
/// most-likely and maximum value can be stated about a quantity, the
/// triangular distribution encodes that epistemic judgment.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Triangular};
/// let t = Triangular::new(0.0, 1.0, 4.0)?;
/// assert!((t.mean() - 5.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    a: f64,
    c: f64,
    b: f64,
}

impl Triangular {
    /// Creates a triangular distribution with lower bound `a`, mode `c` and
    /// upper bound `b`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] unless `a <= c <= b`, `a < b`,
    /// and all are finite.
    pub fn new(a: f64, c: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() || !c.is_finite() || !(a <= c && c <= b && a < b) {
            return Err(ProbError::InvalidParameter(format!(
                "Triangular requires a <= c <= b with a < b, got ({a}, {c}, {b})"
            )));
        }
        Ok(Self { a, c, b })
    }

    /// Lower bound.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Mode.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Upper bound.
    pub fn b(&self) -> f64 {
        self.b
    }
}

impl Continuous for Triangular {
    fn pdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        if x < a || x > b {
            0.0
        } else if x < c {
            2.0 * (x - a) / ((b - a) * (c - a))
        } else if x > c {
            2.0 * (b - x) / ((b - a) * (b - c))
        } else {
            // At the mode both ramps meet at the peak density.
            2.0 / (b - a)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        if x <= a {
            0.0
        } else if x >= b {
            1.0
        } else if x <= c {
            (x - a) * (x - a) / ((b - a) * (c - a))
        } else {
            1.0 - (b - x) * (b - x) / ((b - a) * (b - c))
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Triangular::quantile: p in [0,1], got {p}");
        let (a, c, b) = (self.a, self.c, self.b);
        let fc = (c - a) / (b - a);
        if p <= fc {
            a + (p * (b - a) * (c - a)).sqrt()
        } else {
            b - ((1.0 - p) * (b - a) * (b - c)).sqrt()
        }
    }

    fn mean(&self) -> f64 {
        (self.a + self.b + self.c) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.a, self.c, self.b);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }

    fn support(&self) -> Support {
        Support::new(self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use crate::rng::Rng as _;
        self.quantile(rng.random::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Triangular::new(0.0, 2.0, 1.0).is_err());
        assert!(Triangular::new(1.0, 1.0, 1.0).is_err());
        assert!(Triangular::new(2.0, 1.0, 3.0).is_err());
    }

    #[test]
    fn degenerate_mode_at_endpoints_allowed() {
        // Right triangle with mode at the lower bound.
        let t = Triangular::new(0.0, 0.0, 2.0).unwrap();
        assert!((t.pdf(0.0) - 1.0).abs() < 1e-12);
        assert!((t.cdf(1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_round_trip() {
        let t = Triangular::new(-1.0, 0.5, 3.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&t, &[-0.5, 0.0, 0.5, 1.5, 2.8], 1e-10);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let t = Triangular::new(0.0, 1.0, 4.0).unwrap();
        testutil::check_pdf_integrates_to_cdf(&t, 0.0, 4.0, 1e-8);
    }

    #[test]
    fn sampling_moments() {
        let t = Triangular::new(2.0, 3.0, 7.0).unwrap();
        testutil::check_sample_moments(&t, 61, 200_000, 5.0);
    }
}
