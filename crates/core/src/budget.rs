//! Uncertainty budgets: quantified per-kind uncertainty levels assembled
//! into a release argument (paper Sec. IV: forecasting is "relevant to
//! make a decision about the release of a product").

use crate::error::{Result, SysuncError};
use crate::taxonomy::UncertaintyKind;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A quantified uncertainty budget for one system or component.
///
/// Each entry is a scalar in natural units of its kind:
/// - **aleatory**: the irreducible output variance share (e.g. from a
///   converged PCE or Monte Carlo estimate),
/// - **epistemic**: a credible-interval or Bel/Pl width on the key risk
///   metric,
/// - **ontological**: the estimated missing mass (Good–Turing residual
///   novelty rate).
///
/// # Examples
///
/// ```
/// use sysunc::budget::UncertaintyBudget;
/// use sysunc::taxonomy::UncertaintyKind;
///
/// let budget = UncertaintyBudget::new(0.04, 0.02, 0.001)?;
/// assert_eq!(budget.dominant(), UncertaintyKind::Aleatory);
/// # Ok::<(), sysunc::SysuncError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintyBudget {
    aleatory: f64,
    epistemic: f64,
    ontological: f64,
}

impl UncertaintyBudget {
    /// Creates a budget from the three non-negative levels.
    ///
    /// # Errors
    ///
    /// Returns [`SysuncError::InvalidInput`] for negative or non-finite
    /// levels.
    pub fn new(aleatory: f64, epistemic: f64, ontological: f64) -> Result<Self> {
        for (name, v) in
            [("aleatory", aleatory), ("epistemic", epistemic), ("ontological", ontological)]
        {
            if v < 0.0 || !v.is_finite() {
                return Err(SysuncError::InvalidInput(format!(
                    "{name} level must be finite and >= 0, got {v}"
                )));
            }
        }
        Ok(Self { aleatory, epistemic, ontological })
    }

    /// The level of one kind.
    pub fn level(&self, kind: UncertaintyKind) -> f64 {
        match kind {
            UncertaintyKind::Aleatory => self.aleatory,
            UncertaintyKind::Epistemic => self.epistemic,
            UncertaintyKind::Ontological => self.ontological,
        }
    }

    /// The kind with the largest level (ties broken in taxonomy order).
    pub fn dominant(&self) -> UncertaintyKind {
        UncertaintyKind::ALL
            .into_iter()
            .max_by(|a, b| {
                self.level(*a)
                    .partial_cmp(&self.level(*b))
                    .expect("levels are finite") // tidy: allow(panic)
            })
            .expect("three kinds") // tidy: allow(panic)
    }

    /// Checks the budget against per-kind acceptance thresholds; returns
    /// the kinds that violate them.
    pub fn violations(&self, thresholds: &UncertaintyBudget) -> Vec<UncertaintyKind> {
        UncertaintyKind::ALL
            .into_iter()
            .filter(|&k| self.level(k) > thresholds.level(k))
            .collect()
    }

    /// The paper's release gate: acceptable only when *every* kind is
    /// within its threshold — "uncertainties are properly managed and do
    /// not pose an unacceptable level of risk" (Sec. VI).
    pub fn acceptable(&self, thresholds: &UncertaintyBudget) -> bool {
        self.violations(thresholds).is_empty()
    }

    /// Combines component budgets into a system budget by worst-case
    /// (maximum) per kind — conservative roll-up.
    pub fn worst_case<'a, I: IntoIterator<Item = &'a UncertaintyBudget>>(budgets: I) -> Self {
        let mut out = Self { aleatory: 0.0, epistemic: 0.0, ontological: 0.0 };
        for b in budgets {
            out.aleatory = out.aleatory.max(b.aleatory);
            out.epistemic = out.epistemic.max(b.epistemic);
            out.ontological = out.ontological.max(b.ontological);
        }
        out
    }
}

impl fmt::Display for UncertaintyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aleatory={:.4} epistemic={:.4} ontological={:.4}",
            self.aleatory, self.epistemic, self.ontological
        )
    }
}

impl ToJson for UncertaintyBudget {
    fn to_json(&self) -> Json {
        obj([
            ("aleatory", Json::Num(self.aleatory)),
            ("epistemic", Json::Num(self.epistemic)),
            ("ontological", Json::Num(self.ontological)),
        ])
    }
}

impl FromJson for UncertaintyBudget {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        UncertaintyBudget::new(
            field(v, "aleatory")?,
            field(v, "epistemic")?,
            field(v, "ontological")?,
        )
        .map_err(|e| JsonError::decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(UncertaintyBudget::new(-0.1, 0.0, 0.0).is_err());
        assert!(UncertaintyBudget::new(0.0, f64::NAN, 0.0).is_err());
        assert!(UncertaintyBudget::new(0.0, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn dominant_and_levels() {
        let b = UncertaintyBudget::new(0.1, 0.5, 0.2).unwrap();
        assert_eq!(b.dominant(), UncertaintyKind::Epistemic);
        assert_eq!(b.level(UncertaintyKind::Ontological), 0.2);
    }

    #[test]
    fn release_gate() {
        let measured = UncertaintyBudget::new(0.05, 0.02, 0.002).unwrap();
        let limits = UncertaintyBudget::new(0.1, 0.05, 0.001).unwrap();
        assert!(!measured.acceptable(&limits));
        assert_eq!(measured.violations(&limits), vec![UncertaintyKind::Ontological]);
        let relaxed = UncertaintyBudget::new(0.1, 0.05, 0.01).unwrap();
        assert!(measured.acceptable(&relaxed));
    }

    #[test]
    fn worst_case_roll_up() {
        let a = UncertaintyBudget::new(0.1, 0.01, 0.0).unwrap();
        let b = UncertaintyBudget::new(0.05, 0.2, 0.003).unwrap();
        let sys = UncertaintyBudget::worst_case([&a, &b]);
        assert_eq!(sys.level(UncertaintyKind::Aleatory), 0.1);
        assert_eq!(sys.level(UncertaintyKind::Epistemic), 0.2);
        assert_eq!(sys.level(UncertaintyKind::Ontological), 0.003);
    }

    #[test]
    fn display_format() {
        let b = UncertaintyBudget::new(0.1, 0.2, 0.3).unwrap();
        let s = b.to_string();
        assert!(s.contains("aleatory=0.1"));
        assert!(s.contains("ontological=0.3"));
    }
}
