//! Structural queries on the DAG: d-separation (conditional independence
//! readable off the graph) via the Bayes-ball reachability algorithm.
//!
//! The paper's Sec. V-B notes that the BN "allows including dependencies
//! by common parent nodes to identify common causes" — d-separation is the
//! formal criterion for when such a dependency actually flows.

use crate::error::{BnError, Result};
use crate::network::BayesNet;
use std::collections::HashSet;

/// Whether `x` and `y` are d-separated given the conditioning set `z` in
/// the network's DAG — i.e. structurally guaranteed conditionally
/// independent.
///
/// Implemented as Bayes-ball reachability: a trail is active unless it is
/// blocked by a non-collider in `z` or a collider with no descendant
/// in `z`.
///
/// # Errors
///
/// Returns [`BnError::UnknownNode`] for out-of-range ids.
///
/// # Examples
///
/// ```
/// use sysunc_bayesnet::{d_separated, BayesNet};
/// // Common cause: rain -> wet, rain -> slippery.
/// let mut bn = BayesNet::new();
/// let rain = bn.add_root("rain", vec!["y", "n"], vec![0.3, 0.7])?;
/// let wet = bn.add_node("wet", vec!["y", "n"], vec![rain],
///     vec![vec![0.9, 0.1], vec![0.1, 0.9]])?;
/// let slippery = bn.add_node("slippery", vec!["y", "n"], vec![rain],
///     vec![vec![0.8, 0.2], vec![0.05, 0.95]])?;
/// assert!(!d_separated(&bn, wet, slippery, &[])?);       // marginally dependent
/// assert!(d_separated(&bn, wet, slippery, &[rain])?);    // blocked by the cause
/// # Ok::<(), sysunc_bayesnet::BnError>(())
/// ```
pub fn d_separated(bn: &BayesNet, x: usize, y: usize, z: &[usize]) -> Result<bool> {
    let n = bn.len();
    if x >= n || y >= n || z.iter().any(|&v| v >= n) {
        return Err(BnError::UnknownNode("d_separated: node id out of range".into()));
    }
    if x == y {
        return Ok(false);
    }
    let z_set: HashSet<usize> = z.iter().copied().collect();
    // Ancestors of the conditioning set (for collider activation).
    let mut z_ancestors = z_set.clone();
    // Nodes are topologically ordered, so a reverse sweep collects
    // ancestors transitively.
    for id in (0..n).rev() {
        if z_ancestors.contains(&id) {
            for &p in &bn.nodes()[id].parents {
                z_ancestors.insert(p);
            }
        }
    }
    // Children adjacency.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in bn.nodes().iter().enumerate() {
        for &p in &node.parents {
            children[p].push(id);
        }
    }
    // Bayes ball: states are (node, direction) with direction = arrived
    // from child (up) or from parent (down).
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Dir {
        Up,
        Down,
    }
    let mut visited: HashSet<(usize, Dir)> = HashSet::new();
    let mut stack = vec![(x, Dir::Up)];
    while let Some((node, dir)) = stack.pop() {
        if !visited.insert((node, dir)) {
            continue;
        }
        if node == y {
            return Ok(false);
        }
        match dir {
            Dir::Up => {
                // Arrived from a child. If not observed: pass to parents
                // (up) and to children (down).
                if !z_set.contains(&node) {
                    for &p in &bn.nodes()[node].parents {
                        stack.push((p, Dir::Up));
                    }
                    for &c in &children[node] {
                        stack.push((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                // Arrived from a parent. If not observed: continue down to
                // children. If observed or with an observed descendant
                // (collider activation): bounce up to parents.
                if !z_set.contains(&node) {
                    for &c in &children[node] {
                        stack.push((c, Dir::Down));
                    }
                }
                if z_ancestors.contains(&node) {
                    for &p in &bn.nodes()[node].parents {
                        stack.push((p, Dir::Up));
                    }
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// chain: a -> b -> c; fork: a -> b, a -> d; collider: b -> e <- d.
    fn test_net() -> (BayesNet, [usize; 5]) {
        let mut bn = BayesNet::new();
        let p5 = vec![0.5, 0.5];
        let rows = vec![vec![0.7, 0.3], vec![0.2, 0.8]];
        let rows2 = vec![
            vec![0.9, 0.1],
            vec![0.5, 0.5],
            vec![0.4, 0.6],
            vec![0.1, 0.9],
        ];
        let a = bn.add_root("a", vec!["0", "1"], p5).unwrap();
        let b = bn.add_node("b", vec!["0", "1"], vec![a], rows.clone()).unwrap();
        let c = bn.add_node("c", vec!["0", "1"], vec![b], rows.clone()).unwrap();
        let d = bn.add_node("d", vec!["0", "1"], vec![a], rows.clone()).unwrap();
        let e = bn.add_node("e", vec!["0", "1"], vec![b, d], rows2).unwrap();
        (bn, [a, b, c, d, e])
    }

    #[test]
    fn chain_blocking() {
        let (bn, [a, b, c, _, _]) = test_net();
        assert!(!d_separated(&bn, a, c, &[]).unwrap());
        assert!(d_separated(&bn, a, c, &[b]).unwrap());
    }

    #[test]
    fn fork_common_cause() {
        let (bn, [a, b, _, d, _]) = test_net();
        assert!(!d_separated(&bn, b, d, &[]).unwrap());
        assert!(d_separated(&bn, b, d, &[a]).unwrap());
    }

    #[test]
    fn collider_explaining_away() {
        let (bn, [a, b, _, d, e]) = test_net();
        // b and d are dependent through the fork at a; block it first.
        assert!(d_separated(&bn, b, d, &[a]).unwrap());
        // Observing the collider e re-activates the path (explaining away).
        assert!(!d_separated(&bn, b, d, &[a, e]).unwrap());
        // Also activated by conditioning on a descendant of the collider:
        // (e has no children here, so test the direct collider only).
        let _ = a;
    }

    #[test]
    fn d_separation_implies_numeric_independence() {
        // When d-separated given Z, the conditional distributions must be
        // numerically equal across the other variable's values.
        let (bn, [a, b, _, d, _]) = test_net();
        assert!(d_separated(&bn, b, d, &[a]).unwrap());
        for a_state in ["0", "1"] {
            let p_b_given_d0 =
                bn.marginal("b", &[("a", a_state), ("d", "0")]).unwrap();
            let p_b_given_d1 =
                bn.marginal("b", &[("a", a_state), ("d", "1")]).unwrap();
            for (x, y) in p_b_given_d0.iter().zip(&p_b_given_d1) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dependence_shows_numerically_when_not_separated() {
        let (bn, [_, b, _, d, e]) = test_net();
        assert!(!d_separated(&bn, b, d, &[e]).unwrap());
        let p1 = bn.marginal("b", &[("e", "0"), ("d", "0")]).unwrap();
        let p2 = bn.marginal("b", &[("e", "0"), ("d", "1")]).unwrap();
        assert!((p1[0] - p2[0]).abs() > 1e-6, "collider conditioning couples b and d");
    }

    #[test]
    fn self_and_bad_ids() {
        let (bn, [a, ..]) = test_net();
        assert!(!d_separated(&bn, a, a, &[]).unwrap());
        assert!(d_separated(&bn, 99, a, &[]).is_err());
        assert!(d_separated(&bn, a, 0, &[99]).is_err());
    }
}
