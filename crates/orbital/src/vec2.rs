//! Minimal 2-D vector type for the planar orbital mechanics substrate.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (scalar z component).
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Rotates the vector by `angle` radians.
    pub fn rotated(&self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 { x: c * self.x - s * self.y, y: s * self.x + c * self.y }
    }

    /// Distance to another point.
    pub fn distance(&self, other: Vec2) -> f64 {
        (*self - other).norm()
    }
}

impl Add for Vec2 {
    type Output = Vec2;

    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 { x: self.x + rhs.x, y: self.y + rhs.y }
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;

    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 { x: self.x - rhs.x, y: self.y - rhs.y }
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;

    fn mul(self, s: f64) -> Vec2 {
        Vec2 { x: self.x * s, y: self.y * s }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;

    fn div(self, s: f64) -> Vec2 {
        Vec2 { x: self.x / s, y: self.y / s }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;

    fn neg(self) -> Vec2 {
        Vec2 { x: -self.x, y: -self.y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn geometry() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        assert_eq!(a.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)), 1.0);
        assert_eq!(a.distance(Vec2::zero()), 5.0);
    }

    #[test]
    fn rotation_preserves_norm() {
        let a = Vec2::new(2.0, 1.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x + 1.0).abs() < 1e-12);
        assert!((r.y - 2.0).abs() < 1e-12);
        assert!((r.norm() - a.norm()).abs() < 1e-12);
    }
}
