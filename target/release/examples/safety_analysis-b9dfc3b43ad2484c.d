/root/repo/target/release/examples/safety_analysis-b9dfc3b43ad2484c.d: examples/safety_analysis.rs

/root/repo/target/release/examples/safety_analysis-b9dfc3b43ad2484c: examples/safety_analysis.rs

examples/safety_analysis.rs:
