//! Finite mixture of continuous distributions.

use super::{Categorical, Continuous, Support};
use crate::error::{ProbError, Result};
use crate::rng::RngCore;
use std::sync::Arc;

/// A finite mixture `Σ w_i F_i` of continuous components.
///
/// Mixtures are the natural model of *populations* of regimes — e.g. a
/// failure-rate that is low in the nominal regime and high in a degraded
/// one. The component weights carry aleatory regime uncertainty; not
/// knowing the weights is the epistemic layer above it.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sysunc_prob::dist::{Continuous, Mixture, Normal};
/// let m = Mixture::new(vec![
///     (0.5, Arc::new(Normal::new(-2.0, 0.5)?) as Arc<dyn Continuous>),
///     (0.5, Arc::new(Normal::new(2.0, 0.5)?)),
/// ])?;
/// assert!((m.mean()).abs() < 1e-12);
/// assert!(m.pdf(0.0) < m.pdf(2.0)); // bimodal
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Clone)]
pub struct Mixture {
    weights: Vec<f64>,
    components: Vec<Arc<dyn Continuous>>,
    picker: Categorical,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("weights", &self.weights)
            .field("components", &self.components.len())
            .finish()
    }
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidProbabilities`] for empty input or
    /// weights that are not a probability vector.
    pub fn new(parts: Vec<(f64, Arc<dyn Continuous>)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(ProbError::InvalidProbabilities("empty mixture".into()));
        }
        let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
        let picker = Categorical::new(weights.clone())?;
        let components = parts.into_iter().map(|(_, c)| c).collect();
        Ok(Self { weights, components, picker })
    }

    /// Component weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true once built).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Continuous for Mixture {
    fn pdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.pdf(x))
            .sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.cdf(x))
            .sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Mixture::quantile: p in [0,1], got {p}");
        // Bracket by the component quantiles, then bisect the CDF.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            lo = lo.min(c.quantile(p.max(1e-12)));
            hi = hi.max(c.quantile(p.min(1.0 - 1e-12)));
        }
        if lo >= hi {
            return lo;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * c.mean())
            .sum()
    }

    fn variance(&self) -> f64 {
        // Law of total variance.
        let m = self.mean();
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, c)| w * (c.variance() + (c.mean() - m).powi(2)))
            .sum()
    }

    fn support(&self) -> Support {
        let lo = self
            .components
            .iter()
            .map(|c| c.support().lower)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .components
            .iter()
            .map(|c| c.support().upper)
            .fold(f64::NEG_INFINITY, f64::max);
        Support::new(lo, hi)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let k = self.picker.sample_index(rng);
        self.components[k].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::dist::{Exponential, Normal, Uniform};

    fn bimodal() -> Mixture {
        Mixture::new(vec![
            (0.3, Arc::new(Normal::new(-3.0, 0.5).unwrap()) as Arc<dyn Continuous>),
            (0.7, Arc::new(Normal::new(2.0, 1.0).unwrap())),
        ])
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(
            0.5,
            Arc::new(Normal::standard()) as Arc<dyn Continuous>
        )])
        .is_err());
    }

    #[test]
    fn moments_by_total_laws() {
        let m = bimodal();
        let mean = 0.3 * -3.0 + 0.7 * 2.0;
        assert!((m.mean() - mean).abs() < 1e-12);
        let var = 0.3 * (0.25 + (-3.0f64 - mean).powi(2)) + 0.7 * (1.0 + (2.0f64 - mean).powi(2));
        assert!((m.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let m = bimodal();
        assert!((m.cdf(-10.0)).abs() < 1e-9);
        assert!((m.cdf(10.0) - 1.0).abs() < 1e-9);
        // Between the modes: the full left component plus the lower tail
        // of the right one: 0.3 + 0.7 * Phi(-2).
        let expect = 0.3 * Normal::new(-3.0, 0.5).unwrap().cdf(0.0)
            + 0.7 * Normal::new(2.0, 1.0).unwrap().cdf(0.0);
        assert!((m.cdf(0.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn quantile_round_trip() {
        let m = bimodal();
        for &p in &[0.05, 0.25, 0.3, 0.5, 0.9] {
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn heterogeneous_components() {
        let m = Mixture::new(vec![
            (0.5, Arc::new(Uniform::new(0.0, 1.0).unwrap()) as Arc<dyn Continuous>),
            (0.5, Arc::new(Exponential::new(1.0).unwrap())),
        ])
        .unwrap();
        assert!((m.mean() - 0.75).abs() < 1e-12);
        let s = m.support();
        assert_eq!(s.lower, 0.0);
        assert_eq!(s.upper, f64::INFINITY);
        // Simpson tolerance is loose: the uniform component's pdf jump at
        // x = 1 limits the quadrature order.
        testutil::check_pdf_integrates_to_cdf(&m, 0.01, 5.0, 1e-3);
    }

    #[test]
    fn sampling_matches_moments() {
        let m = bimodal();
        testutil::check_sample_moments(&m, 91, 300_000, 5.0);
    }
}
