//! Quickstart: the paper's taxonomy and Table I network in ten minutes.
//!
//! Run with `cargo run --example quickstart`.

use sysunc::casestudy::{paper_bayes_net, paper_evidential_network, PERCEPTION_STATES};
use sysunc::taxonomy::{method_catalog, recommend, UncertaintyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The three types of uncertainty (paper Sec. III).
    // ------------------------------------------------------------------
    println!("== Types of uncertainty ==");
    for kind in UncertaintyKind::ALL {
        println!(
            "  {kind:<12} known-unknown: {:<5} reducible by observation: {:<5} ({})",
            kind.is_known_unknown(),
            kind.reducible_by_observation(),
            kind.discriminator()
        );
    }

    // ------------------------------------------------------------------
    // 2. The Fig. 4 / Table I perception network, queried both ways.
    // ------------------------------------------------------------------
    println!("\n== Table I as a Bayesian network ==");
    let bn = paper_bayes_net()?;
    let marginal = bn.marginal("perception", &[])?;
    for (state, p) in PERCEPTION_STATES.iter().zip(&marginal) {
        println!("  P(perception = {state:<15}) = {p:.4}");
    }
    let post = bn.marginal("ground_truth", &[("perception", "none")])?;
    println!(
        "  P(ground truth | perception = none): car {:.4}, pedestrian {:.4}, unknown {:.4}",
        post[0], post[1], post[2]
    );

    println!("\n== Table I as an evidential network (Bel/Pl bounds) ==");
    let ev = paper_evidential_network()?;
    let mass = ev.network.query(ev.perception, &[])?;
    for name in ["car", "pedestrian", "none"] {
        let set = ev.perception_frame.singleton(name)?;
        println!(
            "  {name:<12} Bel = {:.4}  Pl = {:.4}  (epistemic+ontological gap {:.4})",
            mass.belief(set),
            mass.plausibility(set),
            mass.interval(set).width()
        );
    }
    println!("  mass on Θ (ontological reserve) = {:.4}", mass.mass(ev.perception_frame.theta()));

    // ------------------------------------------------------------------
    // 3. Strategy derivation from the means taxonomy (Sec. IV, Fig. 3).
    // ------------------------------------------------------------------
    println!("\n== Method catalog ({} methods) ==", method_catalog().len());
    println!("Recommended against ontological uncertainty:");
    for m in recommend(UncertaintyKind::Ontological).iter().take(4) {
        println!("  [{}] {} -> {}", m.means, m.name, m.implemented_by);
    }
    Ok(())
}
