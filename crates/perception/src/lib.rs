//! # sysunc-perception — the perception-chain case study
//!
//! The worked example of the `sysunc` toolkit (reproduction of Gansch &
//! Adee, *System Theoretic View on Uncertainties*, DATE 2020). The paper's
//! Fig. 4 analyzes "a camera with a machine learning algorithm that
//! classifies objects" against a world of cars, pedestrians and unknowns;
//! this crate builds both sides of that modeling relation as simulators:
//!
//! - [`WorldModel`] — the open-context reality: known classes (car 0.6,
//!   pedestrian 0.3) plus a Zipf long tail of novel classes (total 0.1) —
//!   the "long furry tail" of references \[30\]\[31\].
//! - [`ClassifierModel`] — a confusion-matrix perception chain whose
//!   behaviour matches Table I, with a confidence model and
//!   [`RejectingClassifier`] for uncertainty-aware operation (tolerance).
//! - [`FusionSystem`] — redundant diverse channels fused by Bayes,
//!   Dempster–Shafer, or voting: the paper's "redundant architectures with
//!   diverse uncertainties" (Sec. IV).
//! - [`FieldCampaign`] / [`ReleaseForecast`] — field observation
//!   (removal in use) and Good–Turing / Chao1 residual-ontological-risk
//!   forecasting for the release decision.
//!
//! ```
//! use sysunc_prob::rng::SeedableRng;
//! use sysunc_perception::{ClassifierModel, WorldModel};
//!
//! let world = WorldModel::paper_example()?;
//! let camera = ClassifierModel::paper_camera()?;
//! let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(3);
//! let truth = world.sample(&mut rng);
//! let output = camera.classify(truth, &mut rng);
//! assert!(output.label < camera.labels().len());
//! # Ok::<(), sysunc_perception::PerceptionError>(())
//! ```

mod classifier;
mod drift;
mod error;
mod fusion;
mod model;
mod monitor;
mod world;

pub use classifier::{ClassifierModel, Output, RejectingClassifier, Verdict};
pub use drift::DriftMonitor;
pub use error::{PerceptionError, Result};
pub use fusion::{FusedVerdict, FusionSystem};
pub use model::MissedHazardModel;
pub use monitor::{FieldCampaign, ReleaseForecast};
pub use world::{Truth, WorldModel};
