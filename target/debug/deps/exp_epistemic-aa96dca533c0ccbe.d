/root/repo/target/debug/deps/exp_epistemic-aa96dca533c0ccbe.d: crates/bench/src/bin/exp_epistemic.rs

/root/repo/target/debug/deps/exp_epistemic-aa96dca533c0ccbe: crates/bench/src/bin/exp_epistemic.rs

crates/bench/src/bin/exp_epistemic.rs:
