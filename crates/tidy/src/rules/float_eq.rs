//! Rule `float-eq`: library code must not compare float-typed
//! expressions with `==` or `!=`. Exact float equality silently encodes
//! a zero-tolerance assumption; numerical code should compare against
//! an explicit tolerance (or use `total_cmp` for ordering).
//!
//! Detection starts token-shaped — a float literal (`0.5`, `1e-3`,
//! `1f64`) or an `f64::`/`f32::` associated constant adjacent to the
//! operator — and then follows declared types through the
//! [`crate::resolve`] signature index. A comparison is flagged when
//! either operand's type **flows from an annotation**: an `f32`/`f64`
//! parameter of the enclosing function, the return type of a called
//! function anywhere in the workspace, an explicit `let x: f64`, an
//! inferred let bound to a float literal or to a call whose return type
//! is float, or a field access on a local whose struct type declares
//! that field `f32`/`f64`. All of those are declared facts, not
//! guesses, so `a == b` on two such operands is as certain a defect as
//! `a == 0.5`. A `==` inside a string literal or a comment is not a
//! comparison and cannot fire. Intentional exact comparisons (e.g.
//! checking a CDF saturates at exactly 0 or 1) take
//! `// tidy: allow(float-eq)`.
//!
//! Cross-file by nature (the called function's signature lives in
//! another file), so it runs as a [`crate::WorkspaceLint`]. A function
//! name defined with conflicting return types anywhere in the workspace
//! is dropped from the call-flow index — equally for struct fields —
//! so the propagation never guesses between candidates.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};
use crate::resolve::{self, FnInfo, TypeAnn};
use crate::symbols::Workspace;
use crate::{FileKind, SourceFile, Violation, WorkspaceLint};

/// See the module docs.
pub struct FloatEq;

/// True when the operand whose *last* significant token sits at `i`
/// (scanning left from the operator) is float-shaped.
fn left_is_float(file: &SourceFile, i: usize) -> bool {
    let sig: Vec<&Token> =
        file.tokens()[..i].iter().rev().filter(|t| !t.is_comment()).take(3).collect();
    match sig.first() {
        Some(t) if t.kind == TokenKind::Float => true,
        // `f64::CONST` / `f32::CONST`: ident preceded by `::` preceded
        // by the float type name.
        Some(t) if t.kind == TokenKind::Ident => matches!(
            (sig.get(1), sig.get(2)),
            (Some(colons), Some(ty))
                if colons.kind == TokenKind::Punct
                    && file.text(colons) == "::"
                    && ty.kind == TokenKind::Ident
                    && matches!(file.text(ty), "f64" | "f32")
        ),
        _ => false,
    }
}

/// True when the operand starting at token index `i` (scanning right
/// from the operator) is float-shaped. A leading unary `-` is skipped.
fn right_is_float(file: &SourceFile, i: usize) -> bool {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let Some(mut first) = sig.next() else { return false };
    if first.kind == TokenKind::Punct && file.text(first) == "-" {
        match sig.next() {
            Some(t) => first = t,
            None => return false,
        }
    }
    match first.kind {
        TokenKind::Float => true,
        TokenKind::Ident if matches!(file.text(first), "f64" | "f32") => sig
            .next()
            .map(|t| t.kind == TokenKind::Punct && file.text(t) == "::")
            .unwrap_or(false),
        _ => false,
    }
}

/// The bare identifier ending the left operand at `i`, if the operand
/// is exactly one identifier (not a path segment, field or call).
fn left_bare_ident<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let mut sig = file.tokens()[..i].iter().rev().filter(|t| !t.is_comment());
    let last = sig.next()?;
    if last.kind != TokenKind::Ident {
        return None;
    }
    if let Some(prev) = sig.next() {
        if prev.kind == TokenKind::Punct && matches!(file.text(prev), "." | "::") {
            return None;
        }
    }
    Some(file.text(last))
}

/// The bare identifier opening the right operand at `i`, if the
/// operand is exactly one identifier (optionally negated; not a path
/// head, receiver, call or index).
fn right_bare_ident<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let mut first = sig.next()?;
    if first.kind == TokenKind::Punct && file.text(first) == "-" {
        first = sig.next()?;
    }
    if first.kind != TokenKind::Ident {
        return None;
    }
    if let Some(next) = sig.next() {
        if next.kind == TokenKind::Punct
            && matches!(file.text(next), "." | "::" | "(" | "[")
        {
            return None;
        }
    }
    Some(file.text(first))
}

/// The called name when the left operand ending at `i` is a call:
/// `…name(args)` — the name is the identifier before the matching `(`
/// (so `x.mean()` and `stats::mean()` both yield `mean`).
fn left_call_name<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let tokens = file.tokens();
    let last = tokens[..i].iter().rposition(|t| !t.is_comment())?;
    if !(tokens[last].kind == TokenKind::Punct && file.text(&tokens[last]) == ")") {
        return None;
    }
    let mut depth = 0i64;
    let mut k = last;
    loop {
        if tokens[k].kind == TokenKind::Punct {
            match file.text(&tokens[k]) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    let callee = tokens[..k].iter().rposition(|t| !t.is_comment())?;
    (tokens[callee].kind == TokenKind::Ident).then(|| file.text(&tokens[callee]))
}

/// The called name when the right operand starting at `i` is a call
/// chain: `[-] seg(::seg|.seg)* (` — the name is the final segment.
fn right_call_name<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let tokens = file.tokens();
    let mut sig = (i..tokens.len()).filter(|&k| !tokens[k].is_comment());
    let mut k = sig.next()?;
    if tokens[k].kind == TokenKind::Punct && file.text(&tokens[k]) == "-" {
        k = sig.next()?;
    }
    if tokens[k].kind != TokenKind::Ident {
        return None;
    }
    let mut name = file.text(&tokens[k]);
    loop {
        let n = sig.next()?;
        if tokens[n].kind != TokenKind::Punct {
            return None;
        }
        match file.text(&tokens[n]) {
            "(" => return Some(name),
            "::" | "." => {
                let m = sig.next()?;
                if tokens[m].kind != TokenKind::Ident {
                    return None;
                }
                name = file.text(&tokens[m]);
            }
            _ => return None,
        }
    }
}

/// `base.field` when the left operand ending at `i` is exactly a field
/// access on a bare local.
fn left_field<'f>(file: &'f SourceFile, i: usize) -> Option<(&'f str, &'f str)> {
    let mut sig = file.tokens()[..i].iter().rev().filter(|t| !t.is_comment());
    let field = sig.next()?;
    let dot = sig.next()?;
    let base = sig.next()?;
    if field.kind != TokenKind::Ident
        || dot.kind != TokenKind::Punct
        || file.text(dot) != "."
        || base.kind != TokenKind::Ident
    {
        return None;
    }
    if let Some(prev) = sig.next() {
        if prev.kind == TokenKind::Punct
            && matches!(file.text(prev), "." | "::" | ")" | "]")
        {
            return None; // chained access; the base is not a bare local
        }
    }
    Some((file.text(base), file.text(field)))
}

/// `base.field` when the right operand starting at `i` is exactly a
/// field access on a bare local (not a method call).
fn right_field<'f>(file: &'f SourceFile, i: usize) -> Option<(&'f str, &'f str)> {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let mut base = sig.next()?;
    if base.kind == TokenKind::Punct && file.text(base) == "-" {
        base = sig.next()?;
    }
    let dot = sig.next()?;
    let field = sig.next()?;
    if base.kind != TokenKind::Ident
        || dot.kind != TokenKind::Punct
        || file.text(dot) != "."
        || field.kind != TokenKind::Ident
    {
        return None;
    }
    if let Some(next) = sig.next() {
        if next.kind == TokenKind::Punct && matches!(file.text(next), "(" | ".") {
            return None; // method call or deeper chain
        }
    }
    Some((file.text(base), file.text(field)))
}

/// How a local came to be float-typed, for the finding message.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LocalTy {
    /// `f32`/`f64` with the provenance phrase used in the message.
    Float { ty: &'static str, how: &'static str },
    /// A non-float named type (used to resolve field accesses).
    Named(String),
}

/// The typed locals visible inside one function body: parameters first,
/// then explicit `let name: T` annotations, then inferred lets (float
/// literal or known-call initializers). Later bindings shadow earlier
/// ones, matching scope order closely enough for a lint.
fn local_types(
    file: &SourceFile,
    f: &FnInfo,
    fn_returns: &HashMap<&str, TypeAnn>,
) -> HashMap<String, LocalTy> {
    let mut env: HashMap<String, LocalTy> = HashMap::new();
    for p in &f.params {
        match &p.ty {
            TypeAnn::Float(ty) => {
                env.insert(
                    p.name.clone(),
                    LocalTy::Float { ty, how: "parameter-typed" },
                );
            }
            TypeAnn::Named(n) => {
                env.insert(p.name.clone(), LocalTy::Named(n.clone()));
            }
            TypeAnn::Other => {}
        }
    }
    let Some((open, close)) = f.body else { return env };
    let tokens = file.tokens();
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        if !(t.kind == TokenKind::Ident && file.text(t) == "let") {
            i += 1;
            continue;
        }
        let mut sig = (i + 1..close).filter(|&k| !tokens[k].is_comment());
        let Some(mut n) = sig.next() else { break };
        if tokens[n].kind == TokenKind::Ident && file.text(&tokens[n]) == "mut" {
            match sig.next() {
                Some(k) => n = k,
                None => break,
            }
        }
        if tokens[n].kind != TokenKind::Ident {
            i += 1;
            continue; // destructuring pattern: out of scope
        }
        let name = file.text(&tokens[n]).to_string();
        let Some(after) = sig.next() else { break };
        if tokens[after].kind == TokenKind::Punct && file.text(&tokens[after]) == ":" {
            // Explicit annotation is a declared fact.
            let (ann, next) = resolve::type_annotation_at(file, after + 1);
            match ann {
                TypeAnn::Float(ty) => {
                    env.insert(name, LocalTy::Float { ty, how: "let-annotated" });
                }
                TypeAnn::Named(tyname) => {
                    env.insert(name, LocalTy::Named(tyname));
                }
                TypeAnn::Other => {}
            }
            i = next.max(i + 1);
            continue;
        }
        if tokens[after].kind == TokenKind::Punct && file.text(&tokens[after]) == "=" {
            // Inferred let: a float literal or a known call's result.
            let mut sig2 = (after + 1..close).filter(|&k| !tokens[k].is_comment());
            if let Some(mut e) = sig2.next() {
                if tokens[e].kind == TokenKind::Punct && file.text(&tokens[e]) == "-" {
                    e = match sig2.next() {
                        Some(k) => k,
                        None => break,
                    };
                }
                if tokens[e].kind == TokenKind::Float {
                    let ty = if file.text(&tokens[e]).ends_with("f32") { "f32" } else { "f64" };
                    env.insert(name, LocalTy::Float { ty, how: "literal-inferred" });
                } else if let Some(callee) = right_call_name(file, e) {
                    match fn_returns.get(callee) {
                        Some(TypeAnn::Float(ty)) => {
                            env.insert(
                                name,
                                LocalTy::Float { ty, how: "call-result-inferred" },
                            );
                        }
                        Some(TypeAnn::Named(tyname)) => {
                            env.insert(name, LocalTy::Named(tyname.clone()));
                        }
                        _ => {}
                    }
                }
            }
        }
        i += 1;
    }
    env
}

/// The float type of `base.field`, when `base` is a known local of a
/// struct type whose declaration types that field `f32`/`f64`.
fn field_float(
    env: &HashMap<String, LocalTy>,
    fields: &HashMap<String, HashMap<String, &'static str>>,
    base: &str,
    field: &str,
) -> Option<(&'static str, String)> {
    let LocalTy::Named(tyname) = env.get(base)? else { return None };
    let ty = fields.get(tyname)?.get(field)?;
    Some((ty, tyname.clone()))
}

impl WorkspaceLint for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn explain(&self) -> &'static str {
        "Float-typed expressions must not be compared with `==` or `!=` in \
         library code: exact float equality silently encodes a zero-tolerance \
         assumption that numerical error will violate. Compare against an \
         explicit tolerance, or use `total_cmp` for ordering. The check fires \
         when either operand is a float literal, an `f64::`/`f32::` constant, \
         or an expression whose type flows from a declared annotation: an \
         `f32`/`f64` parameter, the return type of a called function, an \
         explicit or inferred `let` binding, or a float-typed struct field \
         on a known local. Intentional exact comparisons (saturation checks, \
         IEEE special cases) take `// tidy: allow(float-eq)` with a \
         justification."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        // Workspace call-flow index: fn name -> return annotation.
        // Names with conflicting definitions are poisoned (removed), so
        // the flow never guesses between candidates.
        let mut fn_returns: HashMap<&str, TypeAnn> = HashMap::new();
        let mut poisoned: Vec<&str> = Vec::new();
        let mut struct_fields: HashMap<String, HashMap<String, &'static str>> =
            HashMap::new();
        for (&idx, facts) in &ws.facts {
            let file = &ws.files[idx];
            for f in &facts.fns {
                if file.in_test_block(f.line) {
                    continue;
                }
                let name = f.name.as_str();
                if poisoned.contains(&name) {
                    continue;
                }
                match fn_returns.get(name) {
                    None => {
                        fn_returns.insert(name, f.ret.clone());
                    }
                    Some(prev) if *prev == f.ret => {}
                    Some(_) => {
                        fn_returns.remove(name);
                        poisoned.push(name);
                    }
                }
            }
            for s in &facts.structs {
                let entry: HashMap<String, &'static str> =
                    s.float_fields.iter().cloned().collect();
                match struct_fields.get_mut(&s.name) {
                    None => {
                        struct_fields.insert(s.name.clone(), entry);
                    }
                    Some(prev) => {
                        // Same struct name declared twice: keep only the
                        // fields both declarations agree on.
                        prev.retain(|k, v| entry.get(k) == Some(v));
                    }
                }
            }
        }

        let mut indices: Vec<usize> = ws.facts.keys().copied().collect();
        indices.sort_unstable();
        for idx in indices {
            let file = &ws.files[idx];
            if file.kind != FileKind::RustLibrary {
                continue;
            }
            self.check_file(file, &ws.facts[&idx], &fn_returns, &struct_fields, out);
        }
    }
}

impl FloatEq {
    fn check_file(
        &self,
        file: &SourceFile,
        facts: &resolve::FileFacts,
        fn_returns: &HashMap<&str, TypeAnn>,
        struct_fields: &HashMap<String, HashMap<String, &'static str>>,
        out: &mut Vec<Violation>,
    ) {
        // Innermost body containing token `i` — the last in source
        // order, since nested fns are indexed after their enclosers.
        let innermost = |i: usize| {
            facts
                .fns
                .iter()
                .rev()
                .find(|f| f.body.map(|(o, c)| o < i && i < c).unwrap_or(false))
        };
        let mut env_cache: HashMap<usize, HashMap<String, LocalTy>> = HashMap::new();
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Punct || file.in_test_block(t.line) {
                continue;
            }
            let op = file.text(t);
            if op != "==" && op != "!=" {
                continue;
            }
            if left_is_float(file, i) || right_is_float(file, i + 1) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!(
                        "float compared with `{op}`; compare against a tolerance instead"
                    ),
                });
                continue;
            }
            let Some(f) = innermost(i) else { continue };
            let env = env_cache
                .entry(f.body.map(|(o, _)| o).unwrap_or(0))
                .or_insert_with(|| local_types(file, f, fn_returns));
            // Bare float-typed locals on either side. Each side is
            // filtered to *float* locals before falling through, so a
            // known non-float left operand never shadows a float right.
            let float_local = |name: &str| match env.get_key_value(name) {
                Some((n, LocalTy::Float { ty, how })) => Some((n, *ty, *how)),
                _ => None,
            };
            let local = left_bare_ident(file, i)
                .and_then(&float_local)
                .or_else(|| right_bare_ident(file, i + 1).and_then(&float_local));
            if let Some((name, ty, how)) = local {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "type-flow",
                    message: format!(
                        "`{name}` is {ty} ({how}) but compared with `{op}`; \
                         compare against a tolerance instead"
                    ),
                });
                continue;
            }
            // A call whose return type is declared float.
            let call = left_call_name(file, i)
                .or_else(|| right_call_name(file, i + 1))
                .filter(|name| matches!(fn_returns.get(name), Some(TypeAnn::Float(_))));
            if let Some(callee) = call {
                let Some(TypeAnn::Float(ty)) = fn_returns.get(callee) else { continue };
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "type-flow",
                    message: format!(
                        "`{callee}()` returns {ty} but its result is compared with \
                         `{op}`; compare against a tolerance instead"
                    ),
                });
                continue;
            }
            // A float-typed field on a known local.
            let field = left_field(file, i)
                .and_then(|(b, fld)| {
                    field_float(env, struct_fields, b, fld).map(|r| (b, fld, r))
                })
                .or_else(|| {
                    right_field(file, i + 1).and_then(|(b, fld)| {
                        field_float(env, struct_fields, b, fld).map(|r| (b, fld, r))
                    })
                });
            if let Some((base, fld, (ty, tyname))) = field {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "type-flow",
                    message: format!(
                        "`{base}.{fld}` is the {ty} field of `{tyname}` but compared \
                         with `{op}`; compare against a tolerance instead"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_files(specs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        FloatEq.check(&ws, &mut out);
        out
    }

    fn run(src: &str) -> Vec<Violation> {
        run_files(&[("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn literal_comparisons_fire() {
        assert_eq!(run("fn f(x: T) -> bool { x == 0.5 }").len(), 1);
        assert_eq!(run("fn f(x: T) -> bool { 1.0 != x }").len(), 1);
        assert_eq!(run("fn f(x: T) -> bool { x == f64::INFINITY }").len(), 1);
        assert_eq!(run("fn f(x: T) -> bool { x == 1f64 }").len(), 1);
        assert_eq!(run("fn f(x: T) -> bool { x == -0.5 }").len(), 1);
        assert_eq!(run("fn f(x: T) -> bool { x == 1e-3 }").len(), 1);
    }

    #[test]
    fn integer_and_identifier_comparisons_pass() {
        assert!(run("fn f(x: usize) -> bool { x == 5 }").is_empty());
        assert!(run("fn f(a: T, b: T) -> bool { a == b }").is_empty());
        assert!(run("fn f(s: &str) -> bool { s == \"0.5\" }").is_empty());
    }

    #[test]
    fn strings_and_doc_comments_mentioning_eq_pass() {
        // Former textual false-positive classes: `==` in prose or data.
        assert!(run("/// Checks whether `x == 0.5` holds approximately.\nfn f() {}\n")
            .is_empty());
        assert!(run("const RULE: &str = \"never write x == 0.5\";\n").is_empty());
        assert!(run("fn f() { /* x == 1.0 would be wrong */ }\n").is_empty());
    }

    #[test]
    fn tests_and_comments_are_exempt() {
        let src = "\
// exact: x == 0.5 is fine to mention
#[cfg(test)]
mod tests {
    fn t(x: f64) -> bool { x == 0.5 }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn multiline_comparisons_fire() {
        assert_eq!(run("fn f(x: T) -> bool {\n    x\n        == 0.5\n}\n").len(), 1);
    }

    #[test]
    fn float_parameters_fire_on_bare_comparison() {
        let out = run("fn close(a: f64, b: f64) -> bool { a == b }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("parameter-typed"), "{}", out[0].message);
        // Reference parameters count; non-float parameters do not.
        assert_eq!(run("fn f(a: &f32, b: T) -> bool { b != a }").len(), 1);
        assert!(run("fn f(a: &str, b: T) -> bool { a == b }").is_empty());
    }

    #[test]
    fn known_call_results_fire_on_comparison() {
        let src = "\
fn mean(v: &[f64]) -> f64 { v[0] }
fn check(v: &[f64], target: T) -> bool {
    mean(v) == target
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`mean()` returns f64"), "{}", out[0].message);
        // Method-call and path-call shapes resolve to the same name.
        let src2 = "\
impl S {
    fn mean(&self) -> f64 { 0.0 }
}
fn check(s: &S, t: T) -> bool { t != s.mean() }
";
        assert_eq!(run(src2).len(), 1);
        // A call with a non-float (or unknown) return type passes.
        assert!(run("fn len(v: &[T]) -> usize { v.len() }\nfn c(v: &[T]) -> bool { len(v) == 0 }\n")
            .iter()
            .all(|v| !v.message.contains("len")));
    }

    #[test]
    fn call_flow_crosses_file_boundaries() {
        let out = run_files(&[
            (
                "crates/x/src/lib.rs",
                "mod stats;\nfn c(v: &[f64], t: T) -> bool { stats::mean(v) == t }\n",
            ),
            ("crates/x/src/stats.rs", "pub fn mean(v: &[f64]) -> f64 { v[0] }\n"),
        ]);
        let flagged: Vec<_> =
            out.iter().filter(|v| v.message.contains("mean")).collect();
        assert_eq!(flagged.len(), 1, "{out:?}");
        assert!(flagged[0].file.ends_with("lib.rs"), "fires at the comparison site");
    }

    #[test]
    fn conflicting_return_types_poison_the_call_flow() {
        let src = "\
mod a { pub fn value() -> f64 { 0.0 } }
mod b { pub fn value() -> usize { 0 } }
fn c(t: T) -> bool { a::value() == t }
";
        assert!(run(src).is_empty(), "ambiguous names must not be guessed");
    }

    #[test]
    fn inferred_lets_fire_for_literals_and_known_calls() {
        let literal = "fn f(t: T) -> bool {\n    let a = 0.5;\n    a == t\n}\n";
        let out = run(literal);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("literal-inferred"), "{}", out[0].message);

        let call = "\
fn mean(v: &[f64]) -> f64 { v[0] }
fn f(v: &[f64], t: T) -> bool {
    let m = mean(v);
    m == t
}
";
        let out = run(call);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("call-result-inferred"), "{}", out[0].message);

        // An unannotated let bound to an unknown call stays untyped.
        assert!(run("fn f(t: T) -> bool {\n    let a = g();\n    a == t\n}\n").is_empty());
    }

    #[test]
    fn float_struct_fields_fire_on_known_locals() {
        let src = "\
pub struct Reading { pub value: f64, pub label: L }
fn f(r: Reading, t: T) -> bool {
    r.value == t
}
fn g(r: Reading, t: T) -> bool {
    t != r.label
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`r.value` is the f64 field"), "{}", out[0].message);
        // Unknown base locals never fire.
        assert!(run("fn f(t: T) -> bool { s.value == t }").is_empty());
    }

    #[test]
    fn annotated_float_locals_fire_on_bare_comparison() {
        let src = "\
fn f() -> bool {
    let a: f64 = compute();
    let b: f64 = other();
    a == b
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("let-annotated"), "{}", out[0].message);

        let negated = "fn f(x: T) -> bool {\n    let mut t: f32 = go();\n    x != -t\n}\n";
        assert_eq!(run(negated).len(), 1);
        // Uninitialized-then-assigned bindings still carry the type.
        let deferred =
            "fn f(w: T) -> bool {\n    let z: f64;\n    z = g();\n    z == w\n}\n";
        assert_eq!(run(deferred).len(), 1);
    }

    #[test]
    fn annotation_propagation_needs_a_bare_float_scalar_local() {
        // Annotated, but not a scalar float type.
        assert!(run(
            "fn f(w: T) -> bool {\n    let v: Vec<f64> = g();\n    v == w\n}\n"
        )
        .is_empty());
        // Not a bare identifier: paths, calls and indexing.
        let src = "\
fn f() -> bool {
    let a: f64 = g();
    E::a == x && a(1) == y && a[0] == z
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn annotations_do_not_leak_across_function_boundaries() {
        let src = "\
fn first() {
    let a: f64 = g();
}
fn second(a: T, b: T) -> bool {
    a == b
}
";
        assert!(run(src).is_empty(), "`a` is float only inside `first`");

        // A nested fn has its own scope; the outer binding is not
        // visible inside it (nested fns cannot capture locals).
        let nested = "\
fn outer() -> bool {
    let a: f64 = g();
    fn inner(a: T, b: T) -> bool { a == b }
    a == done()
}
";
        let out = run(nested);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4, "only the outer comparison fires");
    }

    #[test]
    fn literal_and_annotation_findings_do_not_double_report() {
        let src = "fn f() -> bool {\n    let a: f64 = g();\n    a == 0.5\n}\n";
        assert_eq!(run(src).len(), 1, "one finding per comparison");
    }
}
