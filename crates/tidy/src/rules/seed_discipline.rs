//! Rule `seed-discipline`: library code must not construct an RNG from
//! a hardcoded seed or from an ambient entropy source. Seeds flow in as
//! explicit parameters.
//!
//! Reproducibility is part of this workspace's epistemic contract: a
//! Monte Carlo estimate whose seed is baked into library code cannot be
//! varied by the caller (so convergence cannot be probed), and one
//! drawn from OS entropy cannot be replayed at all — the run stops
//! being evidence. Tests and binaries pick their own seeds freely.

use crate::lexer::TokenKind;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct SeedDiscipline;

/// RNG constructors that take a seed value as their first argument.
const SEEDED: &[&str] = &["seed_from_u64", "from_seed"];

/// RNG constructors that read ambient entropy (never reproducible).
const ENTROPY: &[&str] = &["from_entropy", "from_os_rng", "thread_rng"];

/// True when the significant token before index `i` is the `fn`
/// keyword — i.e. the identifier at `i` is being *defined*, not called.
fn is_definition(file: &SourceFile, i: usize) -> bool {
    file.tokens()[..i]
        .iter()
        .rev()
        .find(|t| !t.is_comment())
        .map(|t| t.kind == TokenKind::Ident && file.text(t) == "fn")
        .unwrap_or(false)
}

impl Lint for SeedDiscipline {
    fn name(&self) -> &'static str {
        "seed-discipline"
    }

    fn explain(&self) -> &'static str {
        "Library code must not construct an RNG from a hardcoded seed \
         (`seed_from_u64(0xDEAD_BEEF)`) or an ambient entropy source \
         (`from_entropy`, `thread_rng`). Reproducibility is part of the \
         epistemic contract: a Monte Carlo estimate whose seed is baked in \
         cannot be varied to probe convergence, and one drawn from OS entropy \
         cannot be replayed — the run stops being evidence. Take the seed as \
         an explicit parameter; tests and binaries pick seeds freely. A \
         deliberate constant (e.g. remapping a degenerate all-zero state) \
         takes `// tidy: allow(seed-discipline)` with its justification."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            let text = file.text(t);
            let seeded = SEEDED.contains(&text);
            let entropy = ENTROPY.contains(&text);
            if (!seeded && !entropy) || is_definition(file, i) {
                continue;
            }
            let mut c = file.cursor();
            c.seek(i + 1);
            if !c.eat_punct("(") {
                continue; // a mention, not a call
            }
            if entropy {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "`{text}` draws ambient entropy in library code; runs \
                         become unreplayable — take a seed parameter instead"
                    ),
                });
                continue;
            }
            // Seeded constructor: hardcoded if the first argument opens
            // with a literal (number, or a literal array like `[0; 4]`).
            c.skip_comments();
            let hardcoded = match c.peek() {
                Some(a) if matches!(a.kind, TokenKind::Int | TokenKind::Float) => true,
                Some(a) if a.kind == TokenKind::Punct && file.text(a) == "[" => true,
                _ => false,
            };
            if hardcoded {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "`{text}` called with a hardcoded seed in library code; \
                         take the seed as a parameter so callers control \
                         reproducibility"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/rng.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        SeedDiscipline.check(&file, &mut out);
        out
    }

    #[test]
    fn hardcoded_seed_fires() {
        let out = run("fn init() -> Rng { Rng::seed_from_u64(0xDEAD_BEEF) }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("hardcoded seed"));
        assert_eq!(run("fn init() -> Rng { Rng::from_seed([0u8; 32]) }\n").len(), 1);
    }

    #[test]
    fn seed_flowing_from_a_parameter_passes() {
        assert!(run("pub fn new(seed: u64) -> Rng { Rng::seed_from_u64(seed) }\n").is_empty());
        assert!(run("fn f(s: u64) -> Rng { Rng::seed_from_u64(s ^ GOLDEN) }\n").is_empty());
    }

    #[test]
    fn entropy_sources_fire_unconditionally() {
        let out = run("fn init() -> Rng { Rng::from_entropy() }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unreplayable"));
        assert_eq!(run("fn init() -> Rng { thread_rng() }\n").len(), 1);
    }

    #[test]
    fn the_constructor_definition_itself_is_exempt() {
        let src = "\
impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self { Self { s: seed } }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tests_comments_and_strings_are_exempt() {
        let src = "\
// seed_from_u64(7) is fine to discuss
const DOC: &str = \"seed_from_u64(7)\";
#[cfg(test)]
mod tests {
    fn t() { let _ = Rng::seed_from_u64(42); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_files_are_not_checked() {
        assert!(!SeedDiscipline.applies(FileKind::RustTest));
    }
}
