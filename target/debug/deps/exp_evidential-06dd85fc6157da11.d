/root/repo/target/debug/deps/exp_evidential-06dd85fc6157da11.d: crates/bench/src/bin/exp_evidential.rs

/root/repo/target/debug/deps/exp_evidential-06dd85fc6157da11: crates/bench/src/bin/exp_evidential.rs

crates/bench/src/bin/exp_evidential.rs:
