/root/repo/target/debug/deps/exp_fta-95db1b07c758ebd5.d: crates/bench/src/bin/exp_fta.rs

/root/repo/target/debug/deps/exp_fta-95db1b07c758ebd5: crates/bench/src/bin/exp_fta.rs

crates/bench/src/bin/exp_fta.rs:
