/root/repo/target/debug/examples/orbital_models-f9f1c4aedad3dabf.d: examples/orbital_models.rs

/root/repo/target/debug/examples/orbital_models-f9f1c4aedad3dabf: examples/orbital_models.rs

examples/orbital_models.rs:
