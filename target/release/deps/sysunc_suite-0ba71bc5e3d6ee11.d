/root/repo/target/release/deps/sysunc_suite-0ba71bc5e3d6ee11.d: src/lib.rs

/root/repo/target/release/deps/libsysunc_suite-0ba71bc5e3d6ee11.rlib: src/lib.rs

/root/repo/target/release/deps/libsysunc_suite-0ba71bc5e3d6ee11.rmeta: src/lib.rs

src/lib.rs:
