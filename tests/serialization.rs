//! Round-trip serialization of the model artifacts a team would persist:
//! Bayesian networks, fault trees, mass functions, budgets and the
//! uncertainty register — through the in-tree `sysunc_prob::json` module
//! (no external serialization dependency).

use sysunc::budget::UncertaintyBudget;
use sysunc::casestudy::paper_bayes_net;
use sysunc::evidence::{Frame, Interval, MassFunction};
use sysunc::fta::{FaultTree, GateKind};
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::taxonomy::{Means, UncertaintyKind};
use sysunc_prob::json;

#[test]
fn bayes_net_round_trips_through_json() {
    let bn = paper_bayes_net().expect("builds");
    let text = json::to_string(&bn);
    let back: sysunc::bayesnet::BayesNet = json::from_str(&text).expect("deserializes");
    assert_eq!(bn, back);
    // The deserialized network answers queries identically.
    let a = bn.marginal("ground_truth", &[("perception", "none")]).expect("query");
    let b = back.marginal("ground_truth", &[("perception", "none")]).expect("query");
    assert_eq!(a, b);
}

#[test]
fn fault_tree_round_trips_through_json() {
    let mut ft = FaultTree::new();
    let a = ft.add_basic_event("a", 0.01).expect("valid");
    let b = ft.add_basic_event("b", 0.02).expect("valid");
    let g = ft.add_gate("g", GateKind::KOfN(1), vec![a, b]).expect("valid");
    ft.set_top(g).expect("valid");
    let text = json::to_string_pretty(&ft);
    let back: FaultTree = json::from_str(&text).expect("deserializes");
    assert_eq!(ft, back);
    assert_eq!(
        ft.top_probability_exact().expect("small"),
        back.top_probability_exact().expect("small")
    );
}

#[test]
fn mass_function_round_trips_through_json() {
    let frame = Frame::new(vec!["car", "pedestrian", "unknown"]).expect("valid");
    let m = MassFunction::from_focal(
        &frame,
        vec![
            (frame.singleton("car").expect("in frame"), 0.6),
            (frame.subset(&["car", "pedestrian"]).expect("in frame"), 0.3),
            (frame.theta(), 0.1),
        ],
    )
    .expect("valid");
    let text = json::to_string(&m);
    let back: MassFunction = json::from_str(&text).expect("deserializes");
    // `from_focal` renormalizes, so the round trip is exact only up to
    // one floating-point normalization; compare with a tight tolerance.
    for set in 0..=frame.theta() {
        assert!((m.mass(set) - back.mass(set)).abs() < 1e-12, "mass differs on {set:b}");
    }
    let car = frame.singleton("car").expect("in frame");
    assert!((m.belief(car) - back.belief(car)).abs() < 1e-12);
    assert!((m.plausibility(car) - back.plausibility(car)).abs() < 1e-12);
}

#[test]
fn interval_budget_and_register_round_trip() {
    let iv = Interval::new(0.25, 0.75).expect("ordered");
    let iv2: Interval = json::from_str(&json::to_string(&iv)).expect("de");
    assert_eq!(iv, iv2);

    let budget = UncertaintyBudget::new(0.1, 0.02, 0.001).expect("valid");
    let b2: UncertaintyBudget = json::from_str(&json::to_string(&budget)).expect("de");
    assert_eq!(budget, b2);
    assert_eq!(b2.dominant(), UncertaintyKind::Aleatory);

    let mut reg = UncertaintyRegister::new();
    reg.add("U1", "here", "thing", UncertaintyKind::Ontological).expect("valid");
    reg.assign("U1", Means::Forecasting).expect("known");
    reg.set_status("U1", MitigationStatus::AcceptedResidual).expect("assigned");
    let r2: UncertaintyRegister = json::from_str(&json::to_string(&reg)).expect("de");
    assert_eq!(reg, r2);
    assert!(r2.release_ready());
}

#[test]
fn malformed_artifacts_are_rejected_not_trusted() {
    // A CPT that no longer normalizes must fail to load: deserialization
    // goes through the validating constructors (uncertainty *prevention*
    // applied to our own persistence layer).
    let bad_bn = r#"{"nodes": [{"name": "n", "states": ["a", "b"],
                     "parents": [], "cpt": [[0.9, 0.2]]}]}"#;
    assert!(json::from_str::<sysunc::bayesnet::BayesNet>(bad_bn).is_err());

    // An interval with lo > hi must fail to load.
    assert!(json::from_str::<Interval>(r#"{"lo": 2.0, "hi": 1.0}"#).is_err());

    // A gate referencing a missing node must fail to load.
    let bad_ft = r#"{"basic": [], "gates": [{"name": "g", "kind": "and",
                     "inputs": [{"basic": 3}]}], "top": null}"#;
    assert!(json::from_str::<FaultTree>(bad_ft).is_err());

    // Plain JSON syntax errors surface as errors, not panics.
    assert!(json::from_str::<Interval>("{\"lo\": ").is_err());
}
