//! Loopback load generator for the propagation server.
//!
//! Drives the propagate routes from N concurrent client threads over
//! keep-alive connections, collects per-request wall-clock latencies,
//! and renders a machine-readable summary (`BENCH_serve.json`) with
//! throughput and latency percentiles — the serving-layer entry in the
//! bench trajectory.
//!
//! Three [`LoadMode`]s exercise the content-addressed pipeline:
//!
//! - `cold` — every request has a distinct seed, so every answer is
//!   computed fresh (`X-Sysunc-Cache: miss`). The baseline.
//! - `cache-hot` — requests cycle through a small set of seeds, so
//!   after warm-up nearly every answer comes from the response cache.
//! - `batch` — each HTTP call carries many jobs through
//!   `POST /v1/propagate/batch`, amortising round-trips.
//!
//! The seed spaces of the three modes are disjoint, so runs sharing a
//! server never contaminate each other's cache behaviour.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use sysunc::prob::json::writer::JsonWriter;
use sysunc::prob::json::JsonError;
use sysunc::{UncertainInput, WireRequest};
use sysunc_serve::{HttpClient, ServeError};

/// Which traffic shape a run drives at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Distinct seed per request — every answer computed fresh.
    Cold,
    /// A small cycling seed set — answers come from the response cache.
    CacheHot,
    /// Many jobs per HTTP call through the batch route.
    Batch,
}

impl LoadMode {
    /// Every mode, in the order the suite runs them (cold first, so a
    /// shared server starts with an empty cache for the baseline).
    pub const ALL: [LoadMode; 3] = [LoadMode::Cold, LoadMode::CacheHot, LoadMode::Batch];

    /// The stable wire/CLI name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            LoadMode::Cold => "cold",
            LoadMode::CacheHot => "cache-hot",
            LoadMode::Batch => "batch",
        }
    }

    /// Parses a CLI spelling; `None` for unknown names.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "cold" => Some(LoadMode::Cold),
            "cache-hot" => Some(LoadMode::CacheHot),
            "batch" => Some(LoadMode::Batch),
            _ => None,
        }
    }
}

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client threads, each with its own connection.
    pub clients: usize,
    /// HTTP calls each client issues sequentially.
    pub requests_per_client: usize,
    /// Engine name sent in every request.
    pub engine: String,
    /// Registered model name sent in every request.
    pub model: String,
    /// Evaluation budget per request.
    pub budget: usize,
    /// Traffic shape to drive.
    pub mode: LoadMode,
    /// Jobs per HTTP call in [`LoadMode::Batch`].
    pub batch_size: usize,
    /// Distinct seeds cycled through in [`LoadMode::CacheHot`].
    pub hot_seeds: u64,
    /// Shard count when the target is a `sysunc-fleet` front
    /// (`0` = plain single-process serving). Only labeling: the
    /// traffic is identical, but results are keyed `fleet-<mode>` so
    /// fleet rows sit next to single-process rows in one suite.
    pub fleet_shards: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            requests_per_client: 25,
            engine: "monte-carlo".into(),
            model: "sum".into(),
            budget: 2048,
            mode: LoadMode::Cold,
            batch_size: 16,
            hot_seeds: 4,
            fleet_shards: 0,
        }
    }
}

impl LoadgenConfig {
    /// A copy of this config retargeted at another mode — used by the
    /// suite driver to run every mode under one parameter set.
    pub fn with_mode(&self, mode: LoadMode) -> Self {
        Self { mode, ..self.clone() }
    }

    /// The key this run's summary is filed under in suite documents:
    /// the mode name, prefixed `fleet-` when the target is a sharded
    /// front — so `cache-hot` and `fleet-cache-hot` coexist in one
    /// suite and the trend gate can compare them.
    pub fn mode_key(&self) -> String {
        if self.fleet_shards > 0 {
            format!("fleet-{}", self.mode.name())
        } else {
            self.mode.name().to_string()
        }
    }

    /// The problem every request shares; only seeds vary.
    fn base_request(&self) -> WireRequest {
        let mut wire = WireRequest::new(
            self.engine.clone(),
            self.model.clone(),
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
                UncertainInput::Uniform { a: 0.0, b: 2.0 },
            ],
        );
        wire.budget = self.budget;
        wire
    }

    /// The wire request client `c` sends as its `i`-th call. Cold
    /// seeds are distinct per call so the server does real, varied
    /// work; cache-hot seeds cycle through `hot_seeds` values in a
    /// disjoint range so repeats hit the response cache. The cycle is
    /// staggered by client: clients running in lockstep would otherwise
    /// all request the same not-yet-cached key at once and every one of
    /// them would miss (the cache does not coalesce in-flight
    /// requests), which can leave a short hot run with zero hits.
    pub fn request(&self, client: usize, call: usize) -> WireRequest {
        let mut wire = self.base_request();
        wire.seed = match self.mode {
            LoadMode::CacheHot => {
                9_000_000 + (client as u64 + call as u64) % self.hot_seeds.max(1)
            }
            LoadMode::Cold | LoadMode::Batch => {
                (client as u64) * 1_000_003 + call as u64 + 1
            }
        };
        wire
    }

    /// The jobs client `c` sends as its `i`-th batch call. Seeds live
    /// in their own range (disjoint from cold and cache-hot) and are
    /// distinct per job, so each batch is honest fresh work.
    pub fn batch_jobs(&self, client: usize, call: usize) -> Vec<WireRequest> {
        let size = self.batch_size.max(1);
        (0..size)
            .map(|job| {
                let mut wire = self.base_request();
                wire.seed = 100_000_000
                    + (client as u64) * 1_000_003
                    + (call * size + job) as u64;
                wire
            })
            .collect()
    }

    /// Propagation jobs one HTTP call carries in this mode.
    pub fn jobs_per_call(&self) -> usize {
        match self.mode {
            LoadMode::Batch => self.batch_size.max(1),
            LoadMode::Cold | LoadMode::CacheHot => 1,
        }
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenResult {
    /// Propagation jobs attempted (HTTP calls × jobs per call).
    pub requests: u64,
    /// Jobs answered `200` with a decodable report.
    pub ok: u64,
    /// Everything else (transport errors, non-200 statuses).
    pub failed: u64,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
    /// Per-HTTP-call latencies in microseconds, sorted ascending.
    pub latencies_micros: Vec<u64>,
}

impl LoadgenResult {
    /// Completed propagation jobs per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ok as f64 / secs
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of the recorded latencies; `0` when no
    /// request completed. `p` is in `[0, 100]`.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.latencies_micros.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_micros.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.latencies_micros.len()) - 1;
        self.latencies_micros[idx]
    }

    /// Renders the `sysunc-bench-serve/1` JSON summary document for
    /// one mode's run.
    ///
    /// # Errors
    ///
    /// Propagates [`JsonError`] from the strict writer (unreachable
    /// for finite inputs, but surfaced rather than hidden).
    pub fn to_json(&self, config: &LoadgenConfig) -> Result<String, JsonError> {
        let mean = if self.latencies_micros.is_empty() {
            0.0
        } else {
            let sum: u64 = self.latencies_micros.iter().sum();
            sum as f64 / self.latencies_micros.len() as f64
        };
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string("sysunc-bench-serve/1");
        w.key("mode").string(&config.mode_key());
        w.key("engine").string(&config.engine);
        w.key("model").string(&config.model);
        w.key("budget").u64(config.budget as u64);
        w.key("clients").u64(config.clients as u64);
        w.key("fleet_shards").u64(config.fleet_shards as u64);
        // The host's core budget, recorded so trend gates can judge
        // fleet speedups against the hardware they actually ran on.
        w.key("cores").u64(available_cores() as u64);
        w.key("batch_size").u64(config.jobs_per_call() as u64);
        w.key("requests").u64(self.requests);
        w.key("ok").u64(self.ok);
        w.key("failed").u64(self.failed);
        w.key("elapsed_micros")
            .u64(self.elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        w.key("throughput_rps").f64(self.throughput_rps());
        w.key("latency_micros").begin_object();
        w.key("min").u64(self.latencies_micros.first().copied().unwrap_or(0));
        w.key("p50").u64(self.percentile_micros(50.0));
        w.key("p90").u64(self.percentile_micros(90.0));
        w.key("p99").u64(self.percentile_micros(99.0));
        w.key("max").u64(self.latencies_micros.last().copied().unwrap_or(0));
        w.key("mean").f64(mean);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Renders the `sysunc-bench-serve/2` suite document: the per-mode
/// `/1` summaries keyed by mode name under `"modes"`.
///
/// # Errors
///
/// Propagates [`JsonError`] from rendering any per-mode summary.
pub fn suite_to_json(
    entries: &[(LoadgenConfig, LoadgenResult)],
) -> Result<String, JsonError> {
    // Mode names are fixed identifiers, so the envelope is assembled
    // directly around the already-rendered per-mode documents.
    let mut out = String::from("{\"schema\":\"sysunc-bench-serve/2\",\"modes\":{");
    for (i, (config, result)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&config.mode_key());
        out.push_str("\":");
        out.push_str(&result.to_json(config)?);
    }
    out.push_str("}}");
    Ok(out)
}

/// The host's usable core count (`1` when undeterminable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs the load against a server at `addr` in the configured mode.
///
/// # Errors
///
/// Returns [`ServeError`] when no client could even connect; partial
/// per-request failures are counted in the result instead.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> Result<LoadgenResult, ServeError> {
    let (tx, rx) = mpsc::channel::<(u64, u64, Vec<u64>)>();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients.max(1) {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut latencies = Vec::with_capacity(config.requests_per_client);
                let mut conn = HttpClient::connect(addr);
                for call in 0..config.requests_per_client {
                    let Ok(c) = conn.as_mut() else {
                        failed += config.jobs_per_call() as u64;
                        continue;
                    };
                    let t0 = Instant::now();
                    let answered = match config.mode {
                        LoadMode::Batch => {
                            let jobs = config.batch_jobs(client, call);
                            c.propagate_batch(&jobs).map(|o| o.reports.len() as u64)
                        }
                        LoadMode::Cold | LoadMode::CacheHot => {
                            let wire = config.request(client, call);
                            c.propagate(&wire).map(|_| 1)
                        }
                    };
                    match answered {
                        Ok(n) => {
                            ok += n;
                            latencies.push(
                                t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                            );
                        }
                        Err(_) => {
                            failed += config.jobs_per_call() as u64;
                            // The connection may be poisoned; reconnect.
                            conn = HttpClient::connect(addr);
                        }
                    }
                }
                let _ = tx.send((ok, failed, latencies));
            });
        }
    });
    drop(tx);
    let mut result = LoadgenResult {
        requests: (config.clients.max(1)
            * config.requests_per_client
            * config.jobs_per_call()) as u64,
        ok: 0,
        failed: 0,
        elapsed: Duration::ZERO,
        latencies_micros: Vec::new(),
    };
    for (ok, failed, latencies) in rx {
        result.ok += ok;
        result.failed += failed;
        result.latencies_micros.extend(latencies);
    }
    result.elapsed = started.elapsed();
    result.latencies_micros.sort_unstable();
    if result.ok == 0 {
        return Err(ServeError::Io("no request succeeded".into()));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_data() {
        let r = LoadgenResult {
            requests: 4,
            ok: 4,
            failed: 0,
            elapsed: Duration::from_secs(2),
            latencies_micros: vec![10, 20, 30, 40],
        };
        assert_eq!(r.percentile_micros(50.0), 20);
        assert_eq!(r.percentile_micros(99.0), 40);
        assert_eq!(r.percentile_micros(0.0), 10);
        assert!((r.throughput_rps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_do_not_divide_by_zero() {
        let r = LoadgenResult {
            requests: 0,
            ok: 0,
            failed: 0,
            elapsed: Duration::ZERO,
            latencies_micros: vec![],
        };
        assert_eq!(r.percentile_micros(50.0), 0);
        assert_eq!(r.throughput_rps(), 0.0);
        let text = r.to_json(&LoadgenConfig::default()).expect("renders");
        assert!(text.contains("\"schema\":\"sysunc-bench-serve/1\""));
        assert!(text.contains("\"mode\":\"cold\""));
    }

    #[test]
    fn summary_json_is_parseable_and_complete() {
        let r = LoadgenResult {
            requests: 3,
            ok: 2,
            failed: 1,
            elapsed: Duration::from_millis(10),
            latencies_micros: vec![100, 300],
        };
        let text = r.to_json(&LoadgenConfig::default()).expect("renders");
        let v = sysunc::prob::json::parse(&text).expect("parses");
        assert_eq!(v.get("ok").and_then(|j| j.as_u64()), Some(2));
        assert_eq!(
            v.get("mode").and_then(|j| j.as_str().map(str::to_string)),
            Some("cold".into())
        );
        let lat = v.get("latency_micros").expect("nested");
        assert_eq!(lat.get("p50").and_then(|j| j.as_u64()), Some(100));
        assert_eq!(lat.get("p99").and_then(|j| j.as_u64()), Some(300));
        assert!(v.get("throughput_rps").and_then(|j| j.as_f64()).is_some());
    }

    #[test]
    fn config_requests_vary_by_seed_but_share_the_problem() {
        let c = LoadgenConfig::default();
        let a = c.request(0, 0);
        let b = c.request(1, 0);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.engine, b.engine);
    }

    #[test]
    fn mode_names_round_trip_through_parse() {
        for mode in LoadMode::ALL {
            assert_eq!(LoadMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(LoadMode::parse("warm"), None);
    }

    #[test]
    fn cache_hot_seeds_cycle_within_a_small_disjoint_range() {
        let c = LoadgenConfig {
            mode: LoadMode::CacheHot,
            hot_seeds: 4,
            ..LoadgenConfig::default()
        };
        // The cycle length is hot_seeds, staggered by client so that
        // concurrent lockstep clients request different keys.
        assert_eq!(c.request(0, 0).seed, c.request(4, 0).seed);
        assert_eq!(c.request(0, 1).seed, c.request(0, 5).seed);
        assert_eq!(c.request(1, 0).seed, c.request(0, 1).seed);
        assert_ne!(c.request(0, 0).seed, c.request(0, 1).seed);
        assert_ne!(c.request(0, 0).seed, c.request(1, 0).seed);
        // Disjoint from the cold range for the default client counts.
        let cold = LoadgenConfig::default();
        for client in 0..8 {
            for call in 0..25 {
                assert!(cold.request(client, call).seed < 9_000_000);
            }
        }
        assert!(c.request(0, 0).seed >= 9_000_000);
    }

    #[test]
    fn batch_jobs_are_distinct_within_and_across_calls() {
        let c = LoadgenConfig {
            mode: LoadMode::Batch,
            batch_size: 4,
            ..LoadgenConfig::default()
        };
        assert_eq!(c.jobs_per_call(), 4);
        let first = c.batch_jobs(0, 0);
        let second = c.batch_jobs(0, 1);
        let mut seeds: Vec<u64> = first.iter().chain(&second).map(|w| w.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "every job seed is distinct");
        assert!(seeds.iter().all(|&s| s >= 100_000_000), "disjoint seed range");
    }

    #[test]
    fn fleet_runs_are_keyed_and_labeled_distinctly() {
        let single = LoadgenConfig::default();
        assert_eq!(single.mode_key(), "cold");
        let fleet = LoadgenConfig {
            fleet_shards: 2,
            mode: LoadMode::CacheHot,
            ..LoadgenConfig::default()
        };
        assert_eq!(fleet.mode_key(), "fleet-cache-hot");
        let r = LoadgenResult {
            requests: 1,
            ok: 1,
            failed: 0,
            elapsed: Duration::from_millis(1),
            latencies_micros: vec![5],
        };
        let text = r.to_json(&fleet).expect("renders");
        let v = sysunc::prob::json::parse(&text).expect("parses");
        assert_eq!(
            v.get("mode").and_then(|j| j.as_str().map(str::to_string)),
            Some("fleet-cache-hot".into())
        );
        assert_eq!(v.get("fleet_shards").and_then(|j| j.as_u64()), Some(2));
        assert!(v.get("cores").and_then(|j| j.as_u64()).unwrap_or(0) >= 1);
        let suite =
            suite_to_json(&[(fleet.clone(), r.clone())]).expect("suite renders");
        let sv = sysunc::prob::json::parse(&suite).expect("parses");
        assert!(
            sv.get("modes").and_then(|m| m.get("fleet-cache-hot")).is_some(),
            "fleet rows are keyed with the fleet- prefix"
        );
    }

    #[test]
    fn suite_document_nests_one_summary_per_mode() {
        let result = LoadgenResult {
            requests: 1,
            ok: 1,
            failed: 0,
            elapsed: Duration::from_millis(5),
            latencies_micros: vec![42],
        };
        let base = LoadgenConfig::default();
        let entries: Vec<_> = LoadMode::ALL
            .iter()
            .map(|&mode| (base.with_mode(mode), result.clone()))
            .collect();
        let text = suite_to_json(&entries).expect("renders");
        let v = sysunc::prob::json::parse(&text).expect("parses");
        assert_eq!(
            v.get("schema").and_then(|j| j.as_str().map(str::to_string)),
            Some("sysunc-bench-serve/2".into())
        );
        let modes = v.get("modes").expect("modes map");
        for mode in LoadMode::ALL {
            let doc = modes.get(mode.name()).expect("per-mode doc");
            assert_eq!(doc.get("ok").and_then(|j| j.as_u64()), Some(1));
        }
    }
}
