//! Field observation and residual-uncertainty forecasting.
//!
//! Uncertainty *removal during use* ("field observation to monitor
//! ontological events") and uncertainty *forecasting* ("estimation of the
//! present level and future occurrence of uncertainties ... to make a
//! decision about the release of a product") — paper Sec. IV. The
//! quantitative engine is species-richness statistics: Good–Turing
//! missing mass and the Chao1 richness estimator over the stream of novel
//! encounters.

use crate::error::{PerceptionError, Result};
use crate::world::{Truth, WorldModel};
use sysunc_prob::rng::RngCore;
use std::collections::HashMap;

/// A running field-observation campaign: counts every encountered class
/// and tracks the discovery curve of novel classes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FieldCampaign {
    known_counts: Vec<u64>,
    novel_counts: HashMap<usize, u64>,
    encounters: u64,
    /// `(encounter index, distinct novel classes seen)` at each discovery.
    discovery_curve: Vec<(u64, usize)>,
}

impl FieldCampaign {
    /// Creates a campaign for a world with `known` known classes.
    pub fn new(known: usize) -> Self {
        Self {
            known_counts: vec![0; known],
            novel_counts: HashMap::new(),
            encounters: 0,
            discovery_curve: Vec::new(),
        }
    }

    /// Records one encounter.
    pub fn record(&mut self, truth: Truth) {
        self.encounters += 1;
        match truth {
            Truth::Known(i) => {
                if let Some(c) = self.known_counts.get_mut(i) {
                    *c += 1;
                }
            }
            Truth::Novel(k) => {
                let entry = self.novel_counts.entry(k).or_insert(0);
                *entry += 1;
                if *entry == 1 {
                    self.discovery_curve.push((self.encounters, self.novel_counts.len()));
                }
            }
        }
    }

    /// Runs the campaign over `n` fresh world encounters.
    pub fn observe_world(&mut self, world: &WorldModel, n: usize, rng: &mut dyn RngCore) {
        for truth in world.sample_n(n, rng) {
            self.record(truth);
        }
    }

    /// Total encounters so far.
    pub fn encounters(&self) -> u64 {
        self.encounters
    }

    /// Number of distinct novel classes discovered so far.
    pub fn distinct_novel(&self) -> usize {
        self.novel_counts.len()
    }

    /// The discovery curve: `(encounter index, cumulative distinct novel
    /// classes)`.
    pub fn discovery_curve(&self) -> &[(u64, usize)] {
        &self.discovery_curve
    }

    /// Number of novel classes seen exactly `r` times.
    fn novel_seen_exactly(&self, r: u64) -> usize {
        self.novel_counts.values().filter(|&&c| c == r).count()
    }

    /// Good–Turing estimate of the *missing mass*: the probability that
    /// the next encounter is a never-before-seen class, estimated as
    /// `f1 / N` (singleton count over sample size).
    ///
    /// This is the paper's "residual ontological uncertainty" made
    /// quantitative: the forecast of how much of the world remains outside
    /// everything observed so far.
    /// Range: `[0, 1]` — a probability mass estimate.
    pub fn good_turing_missing_mass(&self) -> f64 {
        if self.encounters == 0 {
            return 1.0;
        }
        self.novel_seen_exactly(1) as f64 / self.encounters as f64
    }

    /// Chao1 lower-bound estimate of the total number of novel classes
    /// (seen + unseen): `S + f1² / (2 f2)`.
    pub fn chao1_richness(&self) -> f64 {
        let s = self.novel_counts.len() as f64;
        let f1 = self.novel_seen_exactly(1) as f64;
        let f2 = self.novel_seen_exactly(2) as f64;
        if f2 > 0.0 {
            s + f1 * f1 / (2.0 * f2)
        } else {
            s + f1 * (f1 - 1.0) / 2.0
        }
    }

    /// Posterior (Laplace-smoothed) estimate of the probability of a
    /// *known* class, from field counts — epistemic refinement of the
    /// world priors.
    /// Range: `[0, 1]` — a smoothed class probability.
    pub fn known_probability_estimate(&self, class: usize) -> f64 {
        let total = self.encounters as f64 + self.known_counts.len() as f64 + 1.0;
        (self.known_counts.get(class).copied().unwrap_or(0) as f64 + 1.0) / total
    }
}

/// A release-decision forecast built from a campaign snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseForecast {
    /// Estimated probability that the next encounter is an unseen class.
    pub residual_novelty_rate: f64,
    /// Exposure (encounters) accumulated so far.
    pub exposure: u64,
}

impl ReleaseForecast {
    /// Builds a forecast from a campaign.
    pub fn from_campaign(campaign: &FieldCampaign) -> Self {
        Self {
            residual_novelty_rate: campaign.good_turing_missing_mass(),
            exposure: campaign.encounters(),
        }
    }

    /// Whether the residual ontological uncertainty is below the release
    /// target.
    pub fn ready_for_release(&self, target_rate: f64) -> bool {
        self.residual_novelty_rate <= target_rate
    }

    /// Crude extrapolation of how many further encounters are needed to
    /// reach the target rate, assuming the `~1/N` decay of the
    /// Good–Turing singleton fraction for long-tailed worlds.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidForecast`] for a non-positive
    /// target.
    pub fn encounters_to_target(&self, target_rate: f64) -> Result<u64> {
        if target_rate <= 0.0 {
            return Err(PerceptionError::InvalidForecast(format!(
                "target rate must be > 0, got {target_rate}"
            )));
        }
        if self.ready_for_release(target_rate) {
            return Ok(0);
        }
        let factor = self.residual_novelty_rate / target_rate;
        Ok((self.exposure as f64 * (factor - 1.0)).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    #[test]
    fn campaign_counting() {
        let mut c = FieldCampaign::new(2);
        c.record(Truth::Known(0));
        c.record(Truth::Known(0));
        c.record(Truth::Novel(5));
        c.record(Truth::Novel(5));
        c.record(Truth::Novel(9));
        assert_eq!(c.encounters(), 5);
        assert_eq!(c.distinct_novel(), 2);
        assert_eq!(c.discovery_curve(), &[(3, 1), (5, 2)]);
        // One singleton (class 9) out of 5 encounters.
        assert!((c.good_turing_missing_mass() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn good_turing_tracks_true_unseen_mass() {
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut c = FieldCampaign::new(2);
        c.observe_world(&world, 50_000, &mut r);
        // True unseen mass: total probability of novel classes never seen.
        let seen: std::collections::HashSet<usize> =
            c.novel_counts.keys().copied().collect();
        let true_unseen: f64 = (0..1_000)
            .filter(|k| !seen.contains(k))
            .map(|k| world.novel_class_probability(k))
            .sum();
        let gt = c.good_turing_missing_mass();
        assert!(
            (gt - true_unseen).abs() < 0.5 * true_unseen.max(2e-4),
            "GT {gt} vs true unseen {true_unseen}"
        );
    }

    #[test]
    fn missing_mass_decreases_with_exposure() {
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut c = FieldCampaign::new(2);
        c.observe_world(&world, 1_000, &mut r);
        let early = c.good_turing_missing_mass();
        c.observe_world(&world, 99_000, &mut r);
        let late = c.good_turing_missing_mass();
        assert!(late < early, "residual uncertainty must fall: {early} -> {late}");
    }

    #[test]
    fn discovery_curve_is_concave() {
        // Discoveries come fast early and slow down (the long-tail
        // validation challenge).
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut c = FieldCampaign::new(2);
        c.observe_world(&world, 100_000, &mut r);
        let curve = c.discovery_curve();
        assert!(curve.len() > 50);
        let mid = curve[curve.len() / 2];
        let end = curve[curve.len() - 1];
        // Second half of discoveries takes much more exposure than the
        // first half.
        assert!(end.0 - mid.0 > mid.0, "{:?} vs {:?}", mid, end);
    }

    #[test]
    fn chao1_lower_bounds_latent_richness() {
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut c = FieldCampaign::new(2);
        c.observe_world(&world, 30_000, &mut r);
        let chao = c.chao1_richness();
        assert!(chao >= c.distinct_novel() as f64);
        assert!(chao < 5_000.0, "sane upper range, got {chao}");
    }

    #[test]
    fn release_forecast_logic() {
        let mut c = FieldCampaign::new(2);
        for i in 0..100 {
            c.record(if i % 10 == 0 { Truth::Novel(i) } else { Truth::Known(0) });
        }
        let f = ReleaseForecast::from_campaign(&c);
        assert!((f.residual_novelty_rate - 0.1).abs() < 1e-12);
        assert!(!f.ready_for_release(0.01));
        assert!(f.ready_for_release(0.2));
        assert_eq!(f.encounters_to_target(0.2).unwrap(), 0);
        let need = f.encounters_to_target(0.01).unwrap();
        assert_eq!(need, 900);
        assert!(f.encounters_to_target(0.0).is_err());
    }

    #[test]
    fn known_probability_estimates_converge() {
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut c = FieldCampaign::new(2);
        c.observe_world(&world, 100_000, &mut r);
        assert!((c.known_probability_estimate(0) - 0.6).abs() < 0.01);
        assert!((c.known_probability_estimate(1) - 0.3).abs() < 0.01);
    }
}
