//! Rule `lock-hygiene`: mutex/rwlock guards must be acquired with an
//! explicit poisoning policy and must not stay live across blocking
//! calls.
//!
//! Two findings, both about the same hazard class — a lock held in a
//! state the author did not think about:
//!
//! 1. **Unwrapped acquisition.** `.lock().unwrap()` (and
//!    `.read()`/`.write()` on an `RwLock`) turns a poisoned lock into a
//!    library panic: one worker's panic cascades through every other
//!    thread that touches the mutex. Library code must either recover
//!    (`.unwrap_or_else(|e| e.into_inner())`, the workspace's `lock()`
//!    helper idiom) or acknowledge the poisoning policy explicitly with
//!    `// tidy: allow(lock-hygiene)`.
//! 2. **Guard live across a blocking call.** A `let`-bound guard that
//!    is still in scope when the function sleeps, joins a thread, does
//!    socket I/O or blocks on a channel `recv` serializes every other
//!    thread behind an operation of unbounded latency — the deadlock
//!    shape the serve worker pool is designed around. Guards should be
//!    dropped (scope end or `drop(guard)`) before blocking.
//!
//! `Condvar::wait` is deliberately **not** a blocking call here: it
//! atomically releases the guard it consumes — holding a guard at a
//! `wait` call is the correct condition-variable idiom, not a hazard.
//!
//! Detection is token-shaped over the lexed stream: acquisition is an
//! empty-argument `.lock()`/`.read()`/`.write()` method call or a call
//! whose final path segment is exactly `lock` (the free-helper idiom);
//! buffer-taking `read(&mut buf)`/`write(&buf)` I/O calls do not match.
//! Liveness runs from the binding statement to the end of its enclosing
//! block, ended early by `drop(guard)`.

use crate::lexer::TokenKind;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct LockHygiene;

/// Callables of unbounded latency a guard must not be held across.
/// `wait`/`wait_timeout` are excluded on purpose: `Condvar::wait`
/// releases the guard it consumes.
const BLOCKING: &[&str] = &[
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
];

/// Guard-returning method names (empty-argument calls only, so
/// buffer-taking `Read::read`/`Write::write` never match).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// True when the ident at `i` is a guard-acquiring call: an
/// empty-argument `.lock()`/`.read()`/`.write()` method, or any call
/// whose final path segment is exactly `lock` (e.g. the workspace's
/// poison-recovering `lock(&mutex)` helper, or `Mutex::lock(&m)`).
fn is_guard_acquisition(file: &SourceFile, i: usize) -> bool {
    let tokens = file.tokens();
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let name = file.text(t);
    let mut after = (i + 1..tokens.len()).filter(|&k| !tokens[k].is_comment());
    let Some(open) = after.next() else { return false };
    if !(tokens[open].kind == TokenKind::Punct && file.text(&tokens[open]) == "(") {
        return false;
    }
    let method = tokens[..i]
        .iter()
        .rev()
        .find(|u| !u.is_comment())
        .map(|u| u.kind == TokenKind::Punct && file.text(u) == ".")
        .unwrap_or(false);
    if method {
        // `.lock()` / `.read()` / `.write()` with no arguments.
        GUARD_METHODS.contains(&name)
            && after
                .next()
                .map(|c| tokens[c].kind == TokenKind::Punct && file.text(&tokens[c]) == ")")
                .unwrap_or(false)
    } else {
        // Free or path call: only the exact name `lock` qualifies.
        name == "lock"
    }
}

/// If the tokens right after `i` are `. unwrap (`, returns the index of
/// the `unwrap` ident.
fn unwrap_after(file: &SourceFile, i: usize) -> Option<usize> {
    let tokens = file.tokens();
    let mut sig = (i..tokens.len()).filter(|&k| !tokens[k].is_comment());
    let dot = sig.next()?;
    if !(tokens[dot].kind == TokenKind::Punct && file.text(&tokens[dot]) == ".") {
        return None;
    }
    let unwrap = sig.next()?;
    if !(tokens[unwrap].kind == TokenKind::Ident && file.text(&tokens[unwrap]) == "unwrap") {
        return None;
    }
    let open = sig.next()?;
    (tokens[open].kind == TokenKind::Punct && file.text(&tokens[open]) == "(")
        .then_some(unwrap)
}

/// The index one past the matching `)` of the `(` at `open`.
fn close_paren(file: &SourceFile, open: usize) -> usize {
    let tokens = file.tokens();
    let mut depth = 0i64;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

impl Lint for LockHygiene {
    fn name(&self) -> &'static str {
        "lock-hygiene"
    }

    fn explain(&self) -> &'static str {
        "Mutex/RwLock guards need an explicit poisoning policy and bounded \
         hold times. `.lock().unwrap()` (or `.read()`/`.write()` unwrapped) \
         turns one thread's panic into a process-wide cascade through the \
         poisoned lock — recover with `.unwrap_or_else(|e| e.into_inner())` \
         (the workspace `lock()` helper) or acknowledge the policy with \
         `// tidy: allow(lock-hygiene)`. A let-bound guard still live at a \
         call to `sleep`, `join`, `recv`, or socket I/O serializes all other \
         threads behind unbounded latency; drop the guard (scope end or \
         `drop(guard)`) before blocking. `Condvar::wait` is exempt — it \
         releases the guard it consumes, so holding one there is the \
         correct idiom."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            // (1) Unwrapped acquisition: `.lock().unwrap()` and friends.
            if is_guard_acquisition(file, i) {
                let open = (i + 1..tokens.len())
                    .find(|&k| !tokens[k].is_comment())
                    .unwrap_or(i + 1);
                let after_call = close_paren(file, open);
                if unwrap_after(file, after_call).is_some() {
                    let name = file.text(t);
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: self.name(),
                        resolution: "token",
                        message: format!(
                            "`.{name}().unwrap()` panics on a poisoned lock, cascading \
                             one thread's panic through every other; recover with \
                             `.unwrap_or_else(|e| e.into_inner())` or acknowledge the \
                             poisoning policy"
                        ),
                    });
                }
            }
            // (2) Guard bindings live across blocking calls.
            if file.text(t) == "let" {
                self.check_guard_liveness(file, i, out);
            }
        }
    }
}

impl LockHygiene {
    /// For a `let` at token `i`: if it binds a guard (its initializer
    /// acquires a lock), scan from the end of the statement to the end
    /// of the enclosing block (or `drop(name)`) for blocking calls.
    fn check_guard_liveness(&self, file: &SourceFile, i: usize, out: &mut Vec<Violation>) {
        let tokens = file.tokens();
        let mut sig = (i + 1..tokens.len()).filter(|&k| !tokens[k].is_comment());
        let Some(mut n) = sig.next() else { return };
        if tokens[n].kind == TokenKind::Ident && file.text(&tokens[n]) == "mut" {
            match sig.next() {
                Some(k) => n = k,
                None => return,
            }
        }
        if tokens[n].kind != TokenKind::Ident {
            return; // destructuring patterns are out of scope
        }
        let name = file.text(&tokens[n]);
        // Statement extent: to the `;` at relative depth 0.
        let mut stmt_end = None;
        let mut acquires = None;
        let mut depth = 0i64;
        let mut j = n + 1;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.kind == TokenKind::Punct {
                match file.text(u) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break; // malformed; bail out
                        }
                    }
                    ";" if depth == 0 => {
                        stmt_end = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            if u.kind == TokenKind::Ident && is_guard_acquisition(file, j) {
                acquires = Some(j);
            }
            j += 1;
        }
        let (Some(stmt_end), Some(acq)) = (stmt_end, acquires) else { return };
        // The binding holds the guard only when the acquisition — plus
        // result adapters that still yield it (`unwrap`,
        // `unwrap_or_else`, `expect`) — is the *whole* initializer. A
        // further method call (`lock(m).drain(..).collect()`) consumes
        // the guard inside the statement; it dies at the semicolon.
        let open = (acq + 1..tokens.len())
            .find(|&k| !tokens[k].is_comment())
            .unwrap_or(acq + 1);
        let mut e = close_paren(file, open);
        loop {
            let mut sig = (e..tokens.len()).filter(|&k| !tokens[k].is_comment());
            let (Some(dot), Some(method), Some(paren)) = (sig.next(), sig.next(), sig.next())
            else {
                break;
            };
            if tokens[dot].kind == TokenKind::Punct
                && file.text(&tokens[dot]) == "."
                && tokens[method].kind == TokenKind::Ident
                && matches!(file.text(&tokens[method]), "unwrap" | "unwrap_or_else" | "expect")
                && tokens[paren].kind == TokenKind::Punct
                && file.text(&tokens[paren]) == "("
            {
                e = close_paren(file, paren);
            } else {
                break;
            }
        }
        if (e..stmt_end).any(|k| !tokens[k].is_comment()) {
            return; // the guard is consumed inside its own statement
        }
        // Liveness: from the statement end to the enclosing block's
        // close, ended early by `drop(name)`.
        let mut depth = 0i64;
        let mut j = stmt_end + 1;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.kind == TokenKind::Punct {
                match file.text(u) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return; // scope end drops the guard
                        }
                    }
                    _ => {}
                }
            }
            if u.kind == TokenKind::Ident && !file.in_test_block(u.line) {
                let text = file.text(u);
                if text == "drop" {
                    // `drop(name)` releases early.
                    let mut sig = (j + 1..tokens.len()).filter(|&k| !tokens[k].is_comment());
                    if let (Some(open), Some(arg)) = (sig.next(), sig.next()) {
                        if tokens[open].kind == TokenKind::Punct
                            && file.text(&tokens[open]) == "("
                            && tokens[arg].kind == TokenKind::Ident
                            && file.text(&tokens[arg]) == name
                        {
                            return;
                        }
                    }
                }
                if BLOCKING.contains(&text) {
                    // Must be a call, not a mention.
                    let is_call = tokens[j + 1..]
                        .iter()
                        .find(|v| !v.is_comment())
                        .map(|v| v.kind == TokenKind::Punct && file.text(v) == "(")
                        .unwrap_or(false);
                    if is_call {
                        out.push(Violation {
                            file: file.path.clone(),
                            line: u.line,
                            rule: self.name(),
                            resolution: "token",
                            message: format!(
                                "guard `{name}` (acquired on line {}) is still live \
                                 across this `{text}` call; other threads serialize \
                                 behind unbounded latency — drop the guard first",
                                tokens[i].line
                            ),
                        });
                        return; // one finding per guard
                    }
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        LockHygiene.check(&file, &mut out);
        out
    }

    #[test]
    fn unwrapped_lock_acquisition_fires() {
        let out = run("fn f(m: &Mutex<T>) { let g = m.lock().unwrap(); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("poisoned lock"));
        assert_eq!(run("fn f(l: &RwLock<T>) { let g = l.read().unwrap(); }\n").len(), 1);
        assert_eq!(run("fn f(l: &RwLock<T>) { let g = l.write().unwrap(); }\n").len(), 1);
    }

    #[test]
    fn poison_recovering_acquisition_passes() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   \x20   m.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        assert!(run(src).is_empty(), "unwrap_or_else is the sanctioned idiom");
    }

    #[test]
    fn io_read_write_calls_are_not_lock_acquisitions() {
        // Buffer-taking `read`/`write` are socket/file I/O, not RwLock.
        let src = "\
fn f(s: &mut TcpStream, buf: &mut [u8]) {
    let n = s.read(buf).unwrap_or(0);
    s.write_all(buf).ok();
    s.flush().ok();
}
";
        assert!(run(src).is_empty(), "got: {:?}", run(src));
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(m: &Mutex<T>) { let g = m.lock().unwrap(); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_live_across_sleep_fires() {
        let src = "\
fn f(m: &Mutex<T>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::sleep(Duration::from_millis(5));
    g.push(1);
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`g`"));
        assert!(out[0].message.contains("sleep"));
        assert_eq!(out[0].line, 3, "reported at the blocking call");
    }

    #[test]
    fn free_lock_helper_counts_as_acquisition() {
        let src = "\
fn f(m: &Mutex<T>, rx: &Receiver<T>) {
    let g = lock(m);
    let item = rx.recv().unwrap_or_default();
    g.push(item);
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("recv"));
    }

    #[test]
    fn guard_dropped_before_blocking_passes() {
        // Scope end releases the guard.
        let scoped = "\
fn f(m: &Mutex<T>) {
    {
        let g = lock(m);
        g.push(1);
    }
    std::thread::sleep(D);
}
";
        assert!(run(scoped).is_empty(), "got: {:?}", run(scoped));
        // Explicit drop releases it too.
        let dropped = "\
fn f(m: &Mutex<T>, h: JoinHandle<()>) {
    let g = lock(m);
    g.push(1);
    drop(g);
    h.join().ok();
}
";
        assert!(run(dropped).is_empty(), "got: {:?}", run(dropped));
    }

    #[test]
    fn condvar_wait_with_a_held_guard_is_the_correct_idiom() {
        let src = "\
fn worker(m: &Mutex<State>, cv: &Condvar) {
    let mut g = lock(m);
    while g.queue.is_empty() {
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}
";
        assert!(run(src).is_empty(), "got: {:?}", run(src));
    }

    #[test]
    fn statement_temporary_guards_do_not_bind_liveness() {
        // The guard is a temporary inside one statement, dropped at the
        // semicolon — the later join is safe.
        let src = "\
fn shutdown(m: &Mutex<Vec<JoinHandle<()>>>) {
    let handles: Vec<JoinHandle<()>> = lock(m).drain(..).collect();
    for h in handles {
        h.join().ok();
    }
}
";
        let out = run(src);
        assert!(out.is_empty(), "got: {out:?}");
    }
}
