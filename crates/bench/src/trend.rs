//! Lint-suppression trend records from `sysunc-tidy --json`.
//!
//! Every `// tidy: allow(rule)` comment and every baseline budget is
//! acknowledged epistemic debt. This module folds a `sysunc-tidy/1`
//! findings document into a compact per-rule trend record
//! (`sysunc-bench-trend/1`) that the bench trajectory appends over
//! time, making suppression creep visible: the counts should only
//! ratchet down, and a rising line is a review flag.

use std::collections::BTreeMap;
use sysunc::prob::json::writer::JsonWriter;
use sysunc::prob::json::{Json, JsonError};

/// Counts the entries of one findings list (`allowed`, `baselined`, …)
/// per rule, sorted by rule name.
///
/// # Errors
///
/// Returns [`JsonError`] when `key` is missing or not an array of
/// finding objects.
pub fn count_by_rule(report: &Json, key: &str) -> Result<Vec<(String, u64)>, JsonError> {
    let list = report
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::decode(format!("report lacks a '{key}' array")))?;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for item in list {
        let rule = item
            .get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::decode(format!("'{key}' entry lacks a rule")))?;
        *counts.entry(rule.to_string()).or_insert(0) += 1;
    }
    Ok(counts.into_iter().collect())
}

/// Renders one `sysunc-bench-trend/1` record (a single JSON line) from
/// a parsed `sysunc-tidy/1` findings document.
///
/// # Errors
///
/// Returns [`JsonError`] when the document does not have the
/// `sysunc-tidy/1` shape.
pub fn trend_record(report: &Json) -> Result<String, JsonError> {
    let schema = report.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "sysunc-tidy/1" {
        return Err(JsonError::decode(format!(
            "expected a sysunc-tidy/1 document, got schema '{schema}'"
        )));
    }
    let files_scanned = report
        .get("files_scanned")
        .and_then(Json::as_u64)
        .ok_or_else(|| JsonError::decode("report lacks files_scanned"))?;
    let clean = report
        .get("clean")
        .and_then(Json::as_bool)
        .ok_or_else(|| JsonError::decode("report lacks clean"))?;
    let allowed = count_by_rule(report, "allowed")?;
    let baselined = count_by_rule(report, "baselined")?;
    let violations = report
        .get("violations")
        .and_then(Json::as_arr)
        .map(|a| a.len() as u64)
        .ok_or_else(|| JsonError::decode("report lacks violations"))?;

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sysunc-bench-trend/1");
    w.key("files_scanned").u64(files_scanned);
    w.key("clean").bool(clean);
    w.key("violations").u64(violations);
    let total = |counts: &[(String, u64)]| counts.iter().map(|(_, n)| n).sum::<u64>();
    w.key("allowed_total").u64(total(&allowed));
    w.key("allowed_by_rule").begin_object();
    for (rule, n) in &allowed {
        w.key(rule).u64(*n);
    }
    w.end_object();
    w.key("baselined_total").u64(total(&baselined));
    w.key("baselined_by_rule").begin_object();
    for (rule, n) in &baselined {
        w.key(rule).u64(*n);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc::prob::json::parse;

    const SAMPLE: &str = r#"{
        "schema": "sysunc-tidy/1",
        "files_scanned": 12,
        "clean": true,
        "violations": [],
        "allowed": [
            {"file": "a.rs", "line": 1, "rule": "panic", "message": "m"},
            {"file": "b.rs", "line": 2, "rule": "panic", "message": "m"},
            {"file": "c.rs", "line": 3, "rule": "seed-discipline", "message": "m"}
        ],
        "baselined": [
            {"file": "d.rs", "line": 4, "rule": "doc", "message": "m"}
        ]
    }"#;

    #[test]
    fn counts_group_and_sort_by_rule() {
        let report = parse(SAMPLE).expect("parses");
        let counts = count_by_rule(&report, "allowed").expect("counts");
        assert_eq!(
            counts,
            vec![("panic".to_string(), 2), ("seed-discipline".to_string(), 1)]
        );
    }

    #[test]
    fn trend_record_summarizes_the_findings_document() {
        let report = parse(SAMPLE).expect("parses");
        let record = trend_record(&report).expect("renders");
        let v = parse(&record).expect("record parses back");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("sysunc-bench-trend/1")
        );
        assert_eq!(v.get("allowed_total").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("baselined_total").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("allowed_by_rule").and_then(|j| j.get("panic")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(v.get("violations").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn foreign_documents_are_rejected() {
        let report = parse(r#"{"schema":"other/9"}"#).expect("parses");
        assert!(trend_record(&report).is_err());
        let report = parse(r#"{"schema":"sysunc-tidy/1"}"#).expect("parses");
        assert!(trend_record(&report).is_err(), "missing members must error");
    }
}
