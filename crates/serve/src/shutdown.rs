//! The graceful-shutdown signal.
//!
//! `std` offers no portable signal handling, so the server uses a
//! software signal: a shared atomic flag every blocking loop polls.
//! Connection reads poll it through their short `read_timeout`; the
//! blocking `accept` is woken by a loopback self-connect — the
//! zero-dependency stand-in for the classic self-pipe trick.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cloneable one-way shutdown latch.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal {
    triggered: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// A signal in the not-triggered state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the signal. Irreversible.
    pub fn trigger(&self) {
        self.triggered.store(true, Ordering::SeqCst);
    }

    /// Whether the signal has been triggered.
    pub fn is_triggered(&self) -> bool {
        self.triggered.load(Ordering::SeqCst)
    }

    /// Triggers the signal and wakes a listener blocked in `accept`
    /// on `addr` by connecting to it and immediately hanging up.
    pub fn trigger_and_wake(&self, addr: SocketAddr) {
        self.trigger();
        if let Ok(stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            drop(stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_latch() {
        let a = ShutdownSignal::new();
        let b = a.clone();
        assert!(!b.is_triggered());
        a.trigger();
        assert!(b.is_triggered());
    }

    #[test]
    fn waking_a_listener_unblocks_accept() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let signal = ShutdownSignal::new();
        let signal2 = signal.clone();
        let acceptor = std::thread::spawn(move || {
            // Blocks until the wake connection arrives.
            let _ = listener.accept();
            signal2.is_triggered()
        });
        signal.trigger_and_wake(addr);
        assert!(acceptor.join().expect("joins"), "accept woke after trigger");
    }
}
