//! A dependency-free lexer for Rust source text.
//!
//! This is the foundation that lifts `sysunc-tidy` from line-regex
//! heuristics to token-level analysis: once comments and string
//! literals are real tokens, a `.unwrap()` quoted inside a string can
//! no longer masquerade as library code, and brace counting becomes
//! exact. The lexer is intentionally a *lexer only* — no parse tree —
//! because every rule the gate enforces is expressible over the token
//! stream plus shallow brace-depth tracking, and a lexer is small
//! enough to audit by eye (the same trust argument the original
//! line-oriented gate made, now without its false-positive classes).
//!
//! Coverage: line comments, nested block comments, string / raw-string
//! / byte-string / raw-byte-string literals, char and byte-char
//! literals, lifetimes, numeric literals with type suffixes
//! (`1f64`, `0xDEAD_BEEF`, `1e-3`, `1.`), identifiers (including raw
//! `r#ident`), and punctuation with maximal-munch compound operators
//! (`==`, `!=`, `::`, `..=`, …). Every token carries its byte span and
//! 1-based line/column position.
//!
//! Malformed input (unterminated strings or comments) never panics:
//! the offending token is extended to end-of-file, which is the most
//! useful behavior for a lint that must keep walking the rest of the
//! workspace.

/// The classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` including doc forms `///` and `//!` (text distinguishes).
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// `"…"` or `b"…"`.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any number of hashes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// An integer literal, possibly with a non-float suffix (`1`, `0xFFu32`).
    Int,
    /// A float literal: has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix (`0.5`, `1e-3`, `1f64`, `1.`).
    Float,
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Punctuation; compound operators are single tokens (see
    /// [`COMPOUND_OPS`]).
    Punct,
}

/// One token with its byte span and position.
///
/// `line` and `col` are 1-based; `col` counts bytes from the start of
/// the line (exact for ASCII source, which is all this workspace
/// contains — multi-byte characters would shift columns, never lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, into the lexed source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based byte column of the token's first byte.
    pub col: usize,
    /// 1-based line of the token's last byte — equal to `line` except
    /// for multi-line tokens (block comments, raw strings), whose full
    /// extent the resolution layer needs for exact item spans.
    pub end_line: usize,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for comment tokens of either style.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators lexed as single [`TokenKind::Punct`]
/// tokens, longest first (maximal munch).
pub const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into a token vector (whitespace dropped, comments kept).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), text: src, pos: 0, line: 1, line_start: 0 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_whitespace() {
                self.advance(1);
                continue;
            }
            let start = self.pos;
            let (line, col) = (self.line, self.pos - self.line_start + 1);
            let kind = self.token_kind(b);
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token { kind, start, end: self.pos, line, col, end_line: self.line });
        }
        out
    }

    /// Consumes one token starting at the current position and returns
    /// its kind; `self.pos` ends one past the token.
    fn token_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' => self.prefixed(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(self.cur_char()) => self.ident(),
            _ => self.punct(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// The (possibly multi-byte) character at the current position.
    fn cur_char(&self) -> char {
        self.text[self.pos..].chars().next().unwrap_or('\0')
    }

    /// Advances `n` bytes, maintaining line/column bookkeeping.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.src.len() {
                break;
            }
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.line_start = self.pos + 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1; // no newline inside, bookkeeping unaffected
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.advance(2); // `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        TokenKind::BlockComment
    }

    /// A plain (escaped) string body, opening quote at `self.pos`.
    fn string(&mut self) -> TokenKind {
        self.advance(1); // opening `"`
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.advance(2),
                b'"' => {
                    self.advance(1);
                    return TokenKind::Str;
                }
                _ => self.advance(1),
            }
        }
        TokenKind::Str // unterminated: runs to EOF
    }

    /// Raw string body: `self.pos` is at the leading `r` (the `b` of a
    /// `br` form has been consumed by the caller).
    fn raw_string(&mut self) -> TokenKind {
        self.advance(1); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.advance(1);
        }
        self.advance(1); // opening `"`
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for i in 1..=hashes {
                    if self.peek(i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.advance(1 + hashes);
                    return TokenKind::RawStr;
                }
            }
            self.advance(1);
        }
        TokenKind::RawStr // unterminated
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char).
    fn char_or_lifetime(&mut self) -> TokenKind {
        // A lifetime is `'` + ident run *not* followed by a closing `'`.
        if let Some(n) = self.peek(1) {
            if n != b'\\' && is_ident_start(char::from(n)) {
                let mut i = 2;
                while self.peek(i).map(|c| is_ident_continue(char::from(c))).unwrap_or(false) {
                    i += 1;
                }
                if self.peek(i) != Some(b'\'') {
                    self.advance(i);
                    return TokenKind::Lifetime;
                }
            }
        }
        self.advance(1); // opening `'`
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.advance(2),
                b'\'' => {
                    self.advance(1);
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Char, // malformed; don't eat the line
                _ => self.advance(1),
            }
        }
        TokenKind::Char
    }

    /// Tokens starting `r` or `b`: raw strings, byte strings, byte
    /// chars, raw identifiers — or a plain identifier.
    fn prefixed(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        match (b, self.peek(1), self.peek(2)) {
            // r"…" | r#"…"# | r#ident
            (b'r', Some(b'"'), _) => self.raw_string(),
            (b'r', Some(b'#'), Some(c)) if c == b'"' || c == b'#' => self.raw_string(),
            (b'r', Some(b'#'), Some(c)) if is_ident_start(char::from(c)) => {
                self.advance(2); // `r#`
                self.ident()
            }
            // b"…" | b'…' | br"…" | br#"…"#
            (b'b', Some(b'"'), _) => {
                self.advance(1);
                self.string()
            }
            (b'b', Some(b'\''), _) => {
                self.advance(1);
                self.char_or_lifetime()
            }
            (b'b', Some(b'r'), Some(c)) if c == b'"' || c == b'#' => {
                self.advance(1);
                self.raw_string()
            }
            _ => self.ident(),
        }
    }

    fn ident(&mut self) -> TokenKind {
        self.advance(1);
        while self.pos < self.src.len() && is_ident_continue(self.cur_char()) {
            let ch = self.cur_char();
            self.advance(ch.len_utf8());
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        let first = self.src[self.pos];
        if first == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: digits, underscores and any suffix letters
            // form one alphanumeric run (`0xDEAD_BEEFu64`).
            self.advance(2);
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                .unwrap_or(false)
            {
                self.advance(1);
            }
            return TokenKind::Int;
        }
        let mut float = false;
        self.digits();
        // Fractional part: `.` followed by a digit, or a trailing `.`
        // not followed by an identifier or a second `.` (so `1.max()`
        // and `0..n` keep their meaning).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.advance(1);
                    self.digits();
                    float = true;
                }
                Some(c) if is_ident_start(char::from(c)) || c == b'.' => {}
                _ => {
                    self.advance(1);
                    float = true;
                }
            }
        }
        // Exponent: `e`/`E`, optional sign, at least one digit.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = match self.peek(1) {
                Some(b'+' | b'-') => (1, self.peek(2)),
                other => (0, other),
            };
            if digit.map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.advance(1 + sign);
                self.digits();
                float = true;
            }
        }
        // Type suffix: `f64`, `u32`, `usize`, …
        if self.peek(0).map(|c| is_ident_start(char::from(c))).unwrap_or(false) {
            let suffix_start = self.pos;
            while self
                .peek(0)
                .map(|c| is_ident_continue(char::from(c)))
                .unwrap_or(false)
            {
                self.advance(1);
            }
            let suffix = &self.text[suffix_start..self.pos];
            if suffix == "f32" || suffix == "f64" {
                float = true;
            }
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn digits(&mut self) {
        while self
            .peek(0)
            .map(|c| c.is_ascii_digit() || c == b'_')
            .unwrap_or(false)
        {
            self.advance(1);
        }
    }

    fn punct(&mut self) -> TokenKind {
        let rest = &self.text[self.pos..];
        for op in COMPOUND_OPS {
            if rest.starts_with(op) {
                self.advance(op.len());
                return TokenKind::Punct;
            }
        }
        let ch = self.cur_char();
        self.advance(ch.len_utf8());
        TokenKind::Punct
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        use TokenKind::*;
        assert_eq!(
            kinds("pub fn f(x: u32) -> bool { x == 1 }"),
            vec![
                (Ident, "pub"),
                (Ident, "fn"),
                (Ident, "f"),
                (Punct, "("),
                (Ident, "x"),
                (Punct, ":"),
                (Ident, "u32"),
                (Punct, ")"),
                (Punct, "->"),
                (Ident, "bool"),
                (Punct, "{"),
                (Ident, "x"),
                (Punct, "=="),
                (Int, "1"),
                (Punct, "}"),
            ]
        );
    }

    #[test]
    fn string_literals_swallow_code_like_text() {
        let src = r#"let s = "x.unwrap() == 0.5";"#;
        let toks = kinds(src);
        assert_eq!(toks[3], (TokenKind::Str, "\"x.unwrap() == 0.5\""));
        assert_eq!(toks.len(), 5); // let s = <str> ;
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let src = r#"let s = "he said \"hi\""; done"#;
        let toks = kinds(src);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[4], (TokenKind::Punct, ";"));
        assert_eq!(toks[5], (TokenKind::Ident, "done"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside"#; x"##;
        let toks = kinds(src);
        assert_eq!(toks[3], (TokenKind::RawStr, r##"r#"quote " inside"#"##));
        assert_eq!(toks[5], (TokenKind::Ident, "x"));
        // Zero-hash raw string and raw byte string.
        assert_eq!(kinds(r#"r"\n""#)[0].0, TokenKind::RawStr);
        assert_eq!(kinds(r###"br##"x"##"###)[0].0, TokenKind::RawStr);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
    }

    #[test]
    fn raw_idents() {
        let toks = kinds("r#match + other");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match"));
        assert_eq!(toks[2], (TokenKind::Ident, "other"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a"));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let src = "/// doc\n//! inner\n// plain\ncode";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::LineComment, "/// doc"));
        assert_eq!(toks[1], (TokenKind::LineComment, "//! inner"));
        assert_eq!(toks[2], (TokenKind::LineComment, "// plain"));
        assert_eq!(toks[3], (TokenKind::Ident, "code"));
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars, vec![&(TokenKind::Char, "'x'"), &(TokenKind::Char, "'\\n'")]);
        assert_eq!(kinds("'static")[0], (TokenKind::Lifetime, "'static"));
    }

    #[test]
    fn numeric_literal_zoo() {
        use TokenKind::*;
        assert_eq!(kinds("17")[0], (Int, "17"));
        assert_eq!(kinds("0xDEAD_BEEF")[0], (Int, "0xDEAD_BEEF"));
        assert_eq!(kinds("0b1010u8")[0], (Int, "0b1010u8"));
        assert_eq!(kinds("1_000_000usize")[0], (Int, "1_000_000usize"));
        assert_eq!(kinds("0.5")[0], (Float, "0.5"));
        assert_eq!(kinds("1e-3")[0], (Float, "1e-3"));
        assert_eq!(kinds("2.5E+10")[0], (Float, "2.5E+10"));
        assert_eq!(kinds("1f64")[0], (Float, "1f64"));
        assert_eq!(kinds("2f64.powi(53)")[0], (Float, "2f64"));
        // `1.` is a float; `1.max(2)` keeps the int and the method call.
        assert_eq!(kinds("1. + x")[0], (Float, "1."));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (Int, "1"));
        assert_eq!(toks[1], (Punct, "."));
        assert_eq!(toks[2], (Ident, "max"));
        // Range expressions keep both ints.
        let toks = kinds("0..n");
        assert_eq!(toks[0], (Int, "0"));
        assert_eq!(toks[1], (Punct, ".."));
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let texts: Vec<&str> =
            lex("a == b != c >= d ..= e :: f -> g => h").iter().map(|t| t.text("a == b != c >= d ..= e :: f -> g => h")).collect();
        assert!(texts.contains(&"=="));
        assert!(texts.contains(&"!="));
        assert!(texts.contains(&">="));
        assert!(texts.contains(&"..="));
        assert!(texts.contains(&"::"));
        assert!(texts.contains(&"->"));
        assert!(texts.contains(&"=>"));
    }

    #[test]
    fn line_and_column_spans() {
        let src = "fn a() {}\n  let x = \"s\";\n}";
        let toks = lex(src);
        let at = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap();
        assert_eq!((at("fn").line, at("fn").col), (1, 1));
        assert_eq!((at("let").line, at("let").col), (2, 3));
        assert_eq!(at("\"s\"").line, 2);
        // Multi-line tokens advance the line counter for successors.
        let src2 = "a /* x\ny */ b";
        let toks2 = lex(src2);
        assert_eq!(toks2[2].text(src2), "b");
        assert_eq!(toks2[2].line, 2);
    }

    #[test]
    fn raw_strings_with_many_hashes_lex_as_single_tokens() {
        // Multi-`#` raw strings, including an inner quote followed by
        // *fewer* hashes than the delimiter, stay one token.
        let src = r####"let s = r###"a "# b "## c"###; tail"####;
        let toks = kinds(src);
        assert_eq!(toks[3], (TokenKind::RawStr, r####"r###"a "# b "## c"###"####));
        assert_eq!(toks[5], (TokenKind::Ident, "tail"));
        // Raw *byte* strings with multiple hashes likewise.
        let src2 = r###"br##"x "# y"## z"###;
        let toks2 = kinds(src2);
        assert_eq!(toks2[0], (TokenKind::RawStr, r###"br##"x "# y"##"###));
        assert_eq!(toks2[1], (TokenKind::Ident, "z"));
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_with_exact_spans() {
        let src = r#"let a = b"by\"tes"; let b = br"raw"; end"#;
        let toks = lex(src);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::RawStr))
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text(src), r#"b"by\"tes""#);
        assert_eq!(strs[1].text(src), r#"br"raw""#);
        assert_eq!(toks.last().map(|t| t.text(src)), Some("end"));
    }

    #[test]
    fn nested_block_comments_inside_macro_bodies() {
        let src = "m! { /* a /* b */ still */ x }";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "m"),
                (TokenKind::Punct, "!"),
                (TokenKind::Punct, "{"),
                (TokenKind::BlockComment, "/* a /* b */ still */"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn float_literals_with_suffixed_exponents() {
        assert_eq!(kinds("1e3f64")[0], (TokenKind::Float, "1e3f64"));
        assert_eq!(kinds("2E5f32")[0], (TokenKind::Float, "2E5f32"));
        assert_eq!(kinds("1.5e-3f64")[0], (TokenKind::Float, "1.5e-3f64"));
        assert_eq!(kinds("7e2f32.ln()")[0], (TokenKind::Float, "7e2f32"));
        // The suffix stays inside the literal: exactly one token plus
        // whatever follows.
        let toks = kinds("1e3f64 + x");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn end_line_tracks_multiline_tokens() {
        let src = "a /* x\ny */ b r#\"p\nq\nr\"# c";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].end_line), (1, 1), "single-line ident");
        assert_eq!((toks[1].line, toks[1].end_line), (1, 2), "two-line block comment");
        assert_eq!((toks[2].line, toks[2].end_line), (2, 2));
        assert_eq!((toks[3].line, toks[3].end_line), (2, 4), "three-line raw string");
        assert_eq!((toks[4].line, toks[4].end_line), (4, 4));
    }

    #[test]
    fn unterminated_tokens_run_to_eof_without_panicking() {
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
        assert_eq!(lex("'x").len(), 1); // degrades to a lifetime token
    }

    #[test]
    fn lexer_is_lossless_over_nontrivial_source() {
        // Every byte of input is either whitespace or inside exactly one
        // token span, in order.
        let src = "fn f() -> f64 { let s = \"//\"; /* '\"' */ 0.5e1 }";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert!(t.start >= pos, "overlapping tokens");
            assert!(src[pos..t.start].chars().all(char::is_whitespace));
            pos = t.end;
        }
        assert!(src[pos..].chars().all(char::is_whitespace));
    }
}
