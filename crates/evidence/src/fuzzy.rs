//! Fuzzy numbers with α-cut arithmetic — the representation behind fuzzy
//! fault tree analysis (Tanaka et al., the paper's reference \[34\]).
//!
//! A fuzzy number is a possibility distribution; its α-cut at level
//! `α ∈ (0, 1]` is the interval of values with membership at least `α`.
//! Arithmetic is performed cut-wise with interval arithmetic, which is
//! exact for continuous monotone operations.

use crate::error::{EvidenceError, Result};
use crate::interval::Interval;

/// A fuzzy number represented by its α-cuts on a fixed ladder of levels.
///
/// Invariant: cuts are nested (`cut(α₁) ⊇ cut(α₂)` for `α₁ < α₂`).
///
/// # Examples
///
/// ```
/// use sysunc_evidence::FuzzyNumber;
/// let a = FuzzyNumber::triangular(1.0, 2.0, 3.0)?;
/// let core = a.alpha_cut(1.0);
/// assert_eq!(core.lo(), 2.0);
/// let support = a.alpha_cut(0.0);
/// assert_eq!((support.lo(), support.hi()), (1.0, 3.0));
/// # Ok::<(), sysunc_evidence::EvidenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyNumber {
    /// α levels, ascending, always starting at 0 and ending at 1.
    levels: Vec<f64>,
    /// Cut intervals aligned with `levels` (nested inward).
    cuts: Vec<Interval>,
}

/// Number of α levels used for discretized arithmetic.
const DEFAULT_LEVELS: usize = 21;

impl FuzzyNumber {
    /// Triangular fuzzy number `(a, m, b)`: support `[a, b]`, core `{m}`.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidInterval`] unless `a <= m <= b`.
    pub fn triangular(a: f64, m: f64, b: f64) -> Result<Self> {
        if !(a <= m && m <= b) || a.is_nan() || b.is_nan() {
            return Err(EvidenceError::InvalidInterval(format!("triangular ({a}, {m}, {b})")));
        }
        Self::from_cut_fn(|alpha| {
            let lo = a + alpha * (m - a);
            let hi = b - alpha * (b - m);
            // Guard against last-ulp inversion at alpha = 1.
            Interval::new(lo.min(hi), hi.max(lo)).expect("ordered endpoints") // tidy: allow(panic)
        })
    }

    /// Trapezoidal fuzzy number `(a, m1, m2, b)`: support `[a, b]`, core
    /// `[m1, m2]`.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidInterval`] unless
    /// `a <= m1 <= m2 <= b`.
    pub fn trapezoidal(a: f64, m1: f64, m2: f64, b: f64) -> Result<Self> {
        if !(a <= m1 && m1 <= m2 && m2 <= b) || a.is_nan() || b.is_nan() {
            return Err(EvidenceError::InvalidInterval(format!(
                "trapezoidal ({a}, {m1}, {m2}, {b})"
            )));
        }
        Self::from_cut_fn(|alpha| {
            let lo = a + alpha * (m1 - a);
            let hi = b - alpha * (b - m2);
            Interval::new(lo.min(hi), hi.max(lo)).expect("ordered endpoints") // tidy: allow(panic)
        })
    }

    /// A crisp number as a degenerate fuzzy number.
    pub fn crisp(x: f64) -> Self {
        Self::from_cut_fn(|_| Interval::degenerate(x)).expect("degenerate cuts are valid") // tidy: allow(panic)
    }

    /// Builds from an α-cut function evaluated on the default level ladder.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidInterval`] if the produced cuts are
    /// not nested.
    pub fn from_cut_fn<F: Fn(f64) -> Interval>(cut: F) -> Result<Self> {
        let levels: Vec<f64> =
            (0..DEFAULT_LEVELS).map(|i| i as f64 / (DEFAULT_LEVELS - 1) as f64).collect();
        let mut cuts: Vec<Interval> = levels.iter().map(|&a| cut(a)).collect();
        for i in 1..cuts.len() {
            if !cuts[i - 1].encloses(&cuts[i]) {
                // Repair last-ulp violations; reject real ones.
                let scale = 1.0 + cuts[i - 1].lo().abs() + cuts[i - 1].hi().abs();
                let lo_gap = cuts[i - 1].lo() - cuts[i].lo();
                let hi_gap = cuts[i].hi() - cuts[i - 1].hi();
                if lo_gap > 1e-12 * scale || hi_gap > 1e-12 * scale {
                    return Err(EvidenceError::InvalidInterval(
                        "alpha cuts are not nested".into(),
                    ));
                }
                cuts[i] = cuts[i]
                    .intersect(&cuts[i - 1])
                    .expect("cuts overlap within tolerance"); // tidy: allow(panic)
            }
        }
        Ok(Self { levels, cuts })
    }

    /// The α-cut at the given level (nearest level at or below `alpha`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn alpha_cut(&self, alpha: f64) -> Interval {
        assert!((0.0..=1.0).contains(&alpha), "alpha_cut: alpha in [0,1], got {alpha}");
        let idx = self
            .levels
            .partition_point(|&l| l <= alpha + 1e-12)
            .saturating_sub(1);
        self.cuts[idx]
    }

    /// The support (α-cut at 0).
    pub fn support(&self) -> Interval {
        self.cuts[0]
    }

    /// The core (α-cut at 1).
    pub fn core(&self) -> Interval {
        *self.cuts.last().expect("non-empty ladder") // tidy: allow(panic)
    }

    /// Membership degree of `x` (piecewise from the cut ladder).
    pub fn membership(&self, x: f64) -> f64 {
        let mut mu = 0.0;
        for (&l, cut) in self.levels.iter().zip(&self.cuts) {
            if cut.contains(x) {
                mu = l;
            }
        }
        mu
    }

    /// Cut-wise binary operation with interval arithmetic.
    fn zip_with<F: Fn(Interval, Interval) -> Interval>(&self, other: &Self, op: F) -> Self {
        let cuts: Vec<Interval> =
            self.cuts.iter().zip(&other.cuts).map(|(&a, &b)| op(a, b)).collect();
        Self { levels: self.levels.clone(), cuts }
    }

    /// Fuzzy addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Fuzzy subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a - b)
    }

    /// Fuzzy multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// `1 - self`, for fuzzy probabilities.
    /// Range: every alpha-cut of the result lies in `[0, 1]`.
    pub fn complement_probability(&self) -> Self {
        Self {
            levels: self.levels.clone(),
            cuts: self.cuts.iter().map(|c| c.complement_probability()).collect(),
        }
    }

    /// Centroid defuzzification (center of gravity of the membership
    /// function, computed from the cut ladder).
    pub fn defuzzify_centroid(&self) -> f64 {
        // ∫ x μ(x) dx / ∫ μ(x) dx by the slab (Cavalieri) decomposition:
        // each α-slab contributes width(cut) · midpoint(cut); trapezoid
        // rule across consecutive levels keeps the error second order.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 1..self.levels.len() {
            let dl = self.levels[i] - self.levels[i - 1];
            let (a, b) = (self.cuts[i - 1], self.cuts[i]);
            num += dl * 0.5 * (a.width() * a.midpoint() + b.width() * b.midpoint());
            den += dl * 0.5 * (a.width() + b.width());
        }
        if den <= 1e-299 {
            // Crisp number.
            self.core().midpoint()
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_cut_structure() {
        let t = FuzzyNumber::triangular(0.0, 1.0, 4.0).unwrap();
        let half = t.alpha_cut(0.5);
        assert!((half.lo() - 0.5).abs() < 1e-12);
        assert!((half.hi() - 2.5).abs() < 1e-12);
        assert_eq!(t.core().midpoint(), 1.0);
        assert!(FuzzyNumber::triangular(2.0, 1.0, 3.0).is_err());
    }

    #[test]
    fn trapezoidal_core_is_interval() {
        let t = FuzzyNumber::trapezoidal(0.0, 1.0, 2.0, 3.0).unwrap();
        let core = t.core();
        assert_eq!((core.lo(), core.hi()), (1.0, 2.0));
        assert!(FuzzyNumber::trapezoidal(0.0, 2.0, 1.0, 3.0).is_err());
    }

    #[test]
    fn membership_function_shape() {
        let t = FuzzyNumber::triangular(0.0, 2.0, 4.0).unwrap();
        assert_eq!(t.membership(-1.0), 0.0);
        assert!((t.membership(2.0) - 1.0).abs() < 1e-12);
        let half = t.membership(1.0);
        assert!((half - 0.5).abs() < 0.06, "≈0.5 on the 21-level ladder, got {half}");
        assert!(t.membership(3.0) > t.membership(3.9));
    }

    #[test]
    fn addition_of_triangulars_is_triangular() {
        // (a1,m1,b1) + (a2,m2,b2) = (a1+a2, m1+m2, b1+b2).
        let x = FuzzyNumber::triangular(1.0, 2.0, 3.0).unwrap();
        let y = FuzzyNumber::triangular(0.5, 1.0, 2.0).unwrap();
        let s = x.add(&y);
        assert_eq!((s.support().lo(), s.support().hi()), (1.5, 5.0));
        assert_eq!(s.core().midpoint(), 3.0);
        let mid = s.alpha_cut(0.5);
        assert!((mid.lo() - 2.25).abs() < 1e-12);
        assert!((mid.hi() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn multiplication_preserves_nesting() {
        let x = FuzzyNumber::triangular(-1.0, 0.5, 2.0).unwrap();
        let y = FuzzyNumber::triangular(0.5, 1.0, 1.5).unwrap();
        let p = x.mul(&y);
        let mut prev = p.alpha_cut(0.0);
        for i in 1..=10 {
            let cut = p.alpha_cut(i as f64 / 10.0);
            assert!(prev.encloses(&cut), "cuts must nest inward");
            prev = cut;
        }
    }

    #[test]
    fn complement_probability_flips() {
        let p = FuzzyNumber::triangular(0.1, 0.2, 0.4).unwrap();
        let q = p.complement_probability();
        assert!((q.core().midpoint() - 0.8).abs() < 1e-12);
        assert!((q.support().lo() - 0.6).abs() < 1e-12);
        assert!((q.support().hi() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn defuzzification() {
        // Symmetric triangle: centroid = peak.
        let sym = FuzzyNumber::triangular(1.0, 2.0, 3.0).unwrap();
        assert!((sym.defuzzify_centroid() - 2.0).abs() < 1e-9);
        // Skewed triangle (0, 0, 3): centroid of μ(x) = 1 - x/3 is at 1.
        let skew = FuzzyNumber::triangular(0.0, 0.0, 3.0).unwrap();
        assert!((skew.defuzzify_centroid() - 1.0).abs() < 0.02);
        // Crisp numbers defuzzify to themselves.
        assert_eq!(FuzzyNumber::crisp(5.0).defuzzify_centroid(), 5.0);
    }
}
