//! `sysunc-fleet`: multi-process sharded serving for the sysunc
//! engine layer — a supervisor, a consistent-hash router, and
//! fleet-wide health and metrics, all `std`.
//!
//! Gansch & Adee's operational uncertainty coping loop — *detect,
//! tolerate, remove* — applied at process granularity: the supervisor
//! spawns N `sysunc-serve` shards (detection via liveness `try_wait` +
//! `/healthz` probing), the router rides requests over restarts and
//! ring-walks to fallback shards (tolerance), and crashed or wedged
//! children are respawned under exponential backoff (removal). The
//! front places every request on a shard by its
//! [`sysunc::CanonicalRequest`] FNV-1a/64 content hash, so each
//! shard's LRU response cache keeps its locality and repeated
//! requests stay bit-identical, `X-Sysunc-Cache: hit` included.
//!
//! ```no_run
//! use sysunc_fleet::{Fleet, FleetConfig};
//! use sysunc_serve::HttpClient;
//!
//! let fleet = Fleet::start(FleetConfig { shards: 2, ..FleetConfig::default() })?;
//! let mut client = HttpClient::connect(fleet.addr())?;
//! let health = client.get("/healthz")?;
//! assert_eq!(health.status, 200);
//! fleet.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` §9 for the sharding and restart/backoff contract.

pub mod child;
pub mod error;
pub mod metrics;
pub mod router;
pub mod shard;
pub mod supervisor;

pub use child::{locate_serve_bin, ShardChild};
pub use error::{FleetError, Result};
pub use metrics::{merge_expositions, FleetMetrics};
pub use shard::{ShardTable, SlotView};
pub use supervisor::{Fleet, FleetConfig, FleetHandle};
