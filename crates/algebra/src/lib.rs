//! # sysunc-algebra — linear algebra and orthogonal polynomials
//!
//! Numerical substrate for the `sysunc` uncertainty toolkit (reproduction of
//! Gansch & Adee, *System Theoretic View on Uncertainties*, DATE 2020):
//!
//! - [`Matrix`] — dense row-major matrices sized for UQ workloads.
//! - [`Cholesky`] / [`Lu`] / [`lstsq`] — the decompositions needed for
//!   correlated-input sampling, linear solves and polynomial-chaos
//!   regression.
//! - [`eigen`] — a symmetric tridiagonal eigensolver (implicit QL), the
//!   engine of Golub–Welsch quadrature.
//! - [`PolyFamily`] — Wiener–Askey orthogonal polynomial families with
//!   Gauss rules ([`PolyFamily::gauss_rule`]) and nested Clenshaw–Curtis
//!   rules ([`clenshaw_curtis`]) for sparse grids.
//!
//! ```
//! use sysunc_algebra::{Matrix, Cholesky, PolyFamily};
//!
//! // Solve an SPD system (e.g. normal equations of a small regression):
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = Cholesky::new(&a)?.solve(&[1.0, 2.0])?;
//! assert!((a.mul_vec(&x)?[0] - 1.0).abs() < 1e-12);
//!
//! // 5-point Gauss–Hermite rule reproduces normal moments:
//! let rule = PolyFamily::Hermite.gauss_rule(5)?;
//! assert!((rule.integrate(|x| x * x) - 1.0).abs() < 1e-12);
//! # Ok::<(), sysunc_algebra::AlgebraError>(())
//! ```

mod decomp;
pub mod eigen;
mod error;
mod matrix;
mod orthopoly;

pub use decomp::{lstsq, Cholesky, Lu};
pub use error::{AlgebraError, Result};
pub use matrix::Matrix;
pub use orthopoly::{clenshaw_curtis, GaussRule, PolyFamily};
