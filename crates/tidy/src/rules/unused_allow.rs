//! Rule `unused-allow`: every `// tidy: allow(<rule>)` comment must
//! suppress a live finding, and must name a rule the gate knows.
//!
//! Allow comments are deliberate, visible debt: "this violation is
//! understood and accepted". When the underlying code improves (or a
//! rule gets smarter) and the finding disappears, the comment turns
//! into *suppression rot* — a standing claim that a violation exists
//! where none does, and a landmine that silently swallows the next real
//! finding introduced nearby. This rule runs after all others, over the
//! markers the partitioning pass recorded as used, and flags the rest.
//!
//! One level of meta-acknowledgement is supported: a marker can itself
//! be kept alive with `// tidy: allow(unused-allow)` (e.g. for fixture
//! data), and `allow(unused-allow)` markers are never flagged.

use crate::{rules, SourceFile, Violation};

/// Rule name, used by the driver and `--explain`.
pub const UNUSED_ALLOW_NAME: &str = "unused-allow";

/// `--explain` text.
pub const UNUSED_ALLOW_EXPLAIN: &str =
    "Every `// tidy: allow(<rule>)` comment must suppress a live finding and \
     name a rule the gate knows. An allow whose finding has disappeared is \
     suppression rot: a standing claim that a violation exists where none \
     does, and a landmine that silently swallows the next real finding \
     introduced nearby. Remove stale allows; if a marker must stay (fixture \
     data), acknowledge it with `// tidy: allow(unused-allow)`.";

/// The suppression-rot pass. `used[file_idx][marker_idx]` says whether
/// the partitioning pass saw that marker suppress at least one finding.
pub fn unused_allow_pass(files: &[SourceFile], used: &[Vec<bool>]) -> Vec<Violation> {
    let known = rules::rule_names();
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (mi, marker) in file.allows().iter().enumerate() {
            if marker.rule == UNUSED_ALLOW_NAME {
                continue; // the meta-acknowledgement itself is never rot
            }
            if !known.contains(&marker.rule.as_str()) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: marker.line,
                    rule: UNUSED_ALLOW_NAME,
                    resolution: "token",
                    message: format!(
                        "allow names unknown rule `{}`; known rules: {}",
                        marker.rule,
                        known.join(", ")
                    ),
                });
            } else if !used[fi][mi] {
                out.push(Violation {
                    file: file.path.clone(),
                    line: marker.line,
                    rule: UNUSED_ALLOW_NAME,
                    resolution: "token",
                    message: format!(
                        "`tidy: allow({})` suppresses nothing; remove the stale \
                         marker (suppression rot)",
                        marker.rule
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_files, FileKind};

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/m.rs", src, FileKind::RustLibrary)
    }

    #[test]
    fn a_live_allow_is_not_flagged() {
        // `.unwrap()` fires `panic`; the marker suppresses it, so the
        // marker is used and no unused-allow finding appears.
        let files = vec![file("fn f() { x.unwrap(); } // tidy: allow(panic)\n")];
        let report = check_files(&files);
        assert!(report.violations.is_empty(), "got: {:?}", report.violations);
        assert_eq!(report.allowed.len(), 1);
    }

    #[test]
    fn a_stale_allow_is_flagged() {
        let files = vec![file("fn f() {} // tidy: allow(panic)\n")];
        let report = check_files(&files);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unused-allow");
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn an_unknown_rule_name_is_flagged() {
        let files = vec![file("fn f() {} // tidy: allow(no-such-rule)\n")];
        let report = check_files(&files);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn the_meta_acknowledgement_suppresses_one_level() {
        let files =
            vec![file("fn f() {} // tidy: allow(panic) // tidy: allow(unused-allow)\n")];
        let report = check_files(&files);
        assert!(report.violations.is_empty(), "got: {:?}", report.violations);
        assert_eq!(report.allowed.len(), 1, "the rot finding moves to allowed");
    }
}
