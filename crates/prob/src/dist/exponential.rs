//! Exponential distribution.

use super::{uniform_open01, Continuous, Support};
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// The canonical failure-time model for constant-hazard components; used by
/// the fault-tree crate for basic-event lifetimes.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Exponential};
/// let e = Exponential::new(2.0)?;
/// assert!((e.mean() - 0.5).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `rate <= 0` or non-finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Exponential requires rate > 0, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Exponential::quantile: p in [0,1], got {p}");
        -(-p).ln_1p() / self.rate
    }

    fn quantile_fill(&self, ps: &[f64], out: &mut [f64]) {
        assert_eq!(ps.len(), out.len(), "quantile_fill: slice lengths differ");
        assert!(
            ps.iter().all(|p| (0.0..=1.0).contains(p)),
            "Exponential::quantile_fill: p in [0,1]"
        );
        // Range check hoisted out of the loop; same expression as
        // `quantile`, so results are bit-identical.
        let rate = self.rate;
        for (y, &p) in out.iter_mut().zip(ps) {
            *y = -(-p).ln_1p() / rate;
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -uniform_open01(rng).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn memoryless_property() {
        let e = Exponential::new(0.7).unwrap();
        // P(X > s + t | X > s) = P(X > t)
        let s = 1.3;
        let t = 2.1;
        let lhs = (1.0 - e.cdf(s + t)) / (1.0 - e.cdf(s));
        let rhs = 1.0 - e.cdf(t);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_exact_inverse() {
        let e = Exponential::new(3.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&e, &[0.01, 0.1, 0.5, 2.0], 1e-12);
        // Median = ln 2 / rate.
        assert!((e.quantile(0.5) - std::f64::consts::LN_2 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let e = Exponential::new(1.5).unwrap();
        testutil::check_pdf_integrates_to_cdf(&e, 0.0, 3.0, 1e-10);
    }

    #[test]
    fn sampling_moments() {
        let e = Exponential::new(4.0).unwrap();
        testutil::check_sample_moments(&e, 13, 200_000, 4.0);
    }

    #[test]
    fn chunked_fills_match_scalar_calls() {
        testutil::check_fills_match_scalar(&Exponential::new(0.7).unwrap(), 33);
    }
}
