/root/repo/target/release/deps/sysunc_pce-15ca05ef510d756c.d: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/release/deps/libsysunc_pce-15ca05ef510d756c.rlib: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/release/deps/libsysunc_pce-15ca05ef510d756c.rmeta: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

crates/pce/src/lib.rs:
crates/pce/src/error.rs:
crates/pce/src/expansion.rs:
crates/pce/src/input.rs:
crates/pce/src/multiindex.rs:
crates/pce/src/quadrature.rs:
