//! Observation channel and frequentist occupancy model — the paper's
//! Fig. 2 model B ("build a probabilistic model by repeated observation of
//! the positions") plus the surprise monitor of Sec. III-C.

use crate::error::{OrbitalError, Result};
use crate::vec2::Vec2;
use sysunc_prob::rng::RngCore;
use sysunc_prob::dist::{Continuous, Normal};

/// A noisy position sensor: isotropic Gaussian noise on true positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationChannel {
    noise: Normal,
}

impl ObservationChannel {
    /// Creates a channel with the given per-axis noise standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidObservation`] for non-positive sigma.
    pub fn new(sigma: f64) -> Result<Self> {
        let noise = Normal::new(0.0, sigma)
            .map_err(|e| OrbitalError::InvalidObservation(e.to_string()))?;
        Ok(Self { noise })
    }

    /// Noise standard deviation.
    pub fn sigma(&self) -> f64 {
        self.noise.sigma()
    }

    /// Observes a true position through the channel.
    pub fn observe(&self, truth: Vec2, rng: &mut dyn RngCore) -> Vec2 {
        Vec2::new(truth.x + self.noise.sample(rng), truth.y + self.noise.sample(rng))
    }

    /// Log-likelihood of an observation given a predicted position — the
    /// per-observation model fit; its negation is the surprisal.
    pub fn log_likelihood(&self, predicted: Vec2, observed: Vec2) -> f64 {
        self.noise.ln_pdf(observed.x - predicted.x) + self.noise.ln_pdf(observed.y - predicted.y)
    }
}

/// A 2-D occupancy grid: the frequentist spatial distribution model of
/// Fig. 2 model B. Cell probabilities estimate "the probabilities to find
/// either of the two bodies within a spatial frame".
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyGrid {
    min: Vec2,
    max: Vec2,
    nx: usize,
    ny: usize,
    counts: Vec<u64>,
    total: u64,
    out_of_range: u64,
}

impl OccupancyGrid {
    /// Creates an empty grid over `[min, max]` with `nx × ny` cells.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidObservation`] for degenerate bounds
    /// or zero cells.
    pub fn new(min: Vec2, max: Vec2, nx: usize, ny: usize) -> Result<Self> {
        if !(min.x < max.x && min.y < max.y) || nx == 0 || ny == 0 {
            return Err(OrbitalError::InvalidObservation(
                "grid needs min < max and nx, ny > 0".into(),
            ));
        }
        Ok(Self { min, max, nx, ny, counts: vec![0; nx * ny], total: 0, out_of_range: 0 })
    }

    /// Cell index of a position, if inside the grid.
    fn cell(&self, p: Vec2) -> Option<usize> {
        if p.x < self.min.x || p.x >= self.max.x || p.y < self.min.y || p.y >= self.max.y {
            return None;
        }
        let ix = ((p.x - self.min.x) / (self.max.x - self.min.x) * self.nx as f64) as usize;
        let iy = ((p.y - self.min.y) / (self.max.y - self.min.y) * self.ny as f64) as usize;
        Some(iy.min(self.ny - 1) * self.nx + ix.min(self.nx - 1))
    }

    /// Records an observation.
    pub fn add(&mut self, p: Vec2) {
        match self.cell(p) {
            Some(c) => {
                self.counts[c] += 1;
                self.total += 1;
            }
            None => self.out_of_range += 1,
        }
    }

    /// Number of in-grid observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations that fell outside the grid — out-of-model
    /// events (the grid's own ontological bucket).
    pub fn out_of_range_count(&self) -> u64 {
        self.out_of_range
    }

    /// Estimated probability of finding the observed body in a cell.
    /// Range: each entry lies in `[0, 1]` and the entries sum to one.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Estimated probability of the cell containing `p` (zero outside).
    /// Range: `[0, 1]` — a cell of the normalized occupancy distribution.
    pub fn probability_at(&self, p: Vec2) -> f64 {
        match self.cell(p) {
            Some(c) if self.total > 0 => self.counts[c] as f64 / self.total as f64,
            _ => 0.0,
        }
    }

    /// Total-variation distance to another grid of identical shape — the
    /// scalar *epistemic* distance between two frequentist models (e.g.
    /// a small-sample model vs a converged reference).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidObservation`] for shape mismatches.
    pub fn total_variation(&self, other: &OccupancyGrid) -> Result<f64> {
        if self.nx != other.nx || self.ny != other.ny {
            return Err(OrbitalError::InvalidObservation("grid shapes differ".into()));
        }
        let p = self.probabilities();
        let q = other.probabilities();
        Ok(0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>())
    }

    /// Shannon entropy (nats) of the occupancy distribution.
    pub fn entropy(&self) -> f64 {
        sysunc_prob::info::entropy(&self.probabilities())
    }
}

/// One-step-ahead prediction monitor: compares model predictions with
/// observations and tracks the surprisal trace. A sustained spike that
/// model refinement cannot remove is the quantitative signature of an
/// **ontological** event (paper Sec. III-C).
#[derive(Debug, Clone)]
pub struct SurpriseMonitor {
    channel: ObservationChannel,
    /// Per-step surprisal (negative log-likelihood).
    surprisals: Vec<f64>,
    window: usize,
}

impl SurpriseMonitor {
    /// Creates a monitor with the given smoothing window.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidObservation`] for a zero window.
    pub fn new(channel: ObservationChannel, window: usize) -> Result<Self> {
        if window == 0 {
            return Err(OrbitalError::InvalidObservation("window must be > 0".into()));
        }
        Ok(Self { channel, surprisals: Vec::new(), window })
    }

    /// Scores one prediction/observation pair; returns the surprisal.
    pub fn record(&mut self, predicted: Vec2, observed: Vec2) -> f64 {
        let s = -self.channel.log_likelihood(predicted, observed);
        self.surprisals.push(s);
        s
    }

    /// The full surprisal trace.
    pub fn trace(&self) -> &[f64] {
        &self.surprisals
    }

    /// Moving average of the most recent window.
    pub fn recent_mean(&self) -> f64 {
        let n = self.surprisals.len().min(self.window);
        if n == 0 {
            return 0.0;
        }
        self.surprisals[self.surprisals.len() - n..].iter().sum::<f64>() / n as f64
    }

    /// Expected surprisal when the model is correct: the (differential)
    /// entropy of the 2-D observation noise.
    pub fn baseline(&self) -> f64 {
        // Entropy of an isotropic 2-D Gaussian: 1 + ln(2π σ²).
        1.0 + (2.0 * std::f64::consts::PI * self.channel.sigma().powi(2)).ln()
    }

    /// Whether the recent surprisal exceeds the baseline by `threshold`
    /// nats — the ontological-event alarm.
    pub fn alarm(&self, threshold: f64) -> bool {
        self.surprisals.len() >= self.window && self.recent_mean() > self.baseline() + threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn channel_noise_statistics() {
        let ch = ObservationChannel::new(0.1).unwrap();
        let mut r = rng();
        let truth = Vec2::new(1.0, -2.0);
        let n = 20_000;
        let mut mean = Vec2::zero();
        for _ in 0..n {
            mean += ch.observe(truth, &mut r);
        }
        mean = mean / n as f64;
        assert!((mean - truth).norm() < 0.01);
        assert!(ObservationChannel::new(0.0).is_err());
    }

    #[test]
    fn grid_counting_and_probabilities() {
        let mut g =
            OccupancyGrid::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 2.0), 2, 2).unwrap();
        g.add(Vec2::new(0.5, 0.5)); // cell (0,0)
        g.add(Vec2::new(1.5, 0.5)); // cell (1,0)
        g.add(Vec2::new(1.5, 1.5)); // cell (1,1)
        g.add(Vec2::new(5.0, 5.0)); // out of range
        assert_eq!(g.count(), 3);
        assert_eq!(g.out_of_range_count(), 1);
        let p = g.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((g.probability_at(Vec2::new(0.5, 0.5)) - 1.0 / 3.0).abs() < 1e-12);
        assert!(OccupancyGrid::new(Vec2::zero(), Vec2::zero(), 2, 2).is_err());
    }

    #[test]
    fn total_variation_between_grids() {
        let mk = |pts: &[(f64, f64)]| {
            let mut g =
                OccupancyGrid::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0), 2, 1).unwrap();
            for &(x, y) in pts {
                g.add(Vec2::new(x, y));
            }
            g
        };
        let a = mk(&[(0.25, 0.5), (0.25, 0.5), (0.75, 0.5), (0.75, 0.5)]);
        let b = mk(&[(0.25, 0.5), (0.75, 0.5), (0.75, 0.5), (0.75, 0.5)]);
        assert!((a.total_variation(&b).unwrap() - 0.25).abs() < 1e-12);
        let c = OccupancyGrid::new(Vec2::zero(), Vec2::new(1.0, 1.0), 3, 1).unwrap();
        assert!(a.total_variation(&c).is_err());
    }

    #[test]
    fn surprise_monitor_baseline_and_alarm() {
        let ch = ObservationChannel::new(0.05).unwrap();
        let mut mon = SurpriseMonitor::new(ch, 50).unwrap();
        let mut r = rng();
        // Phase 1: correct model — observations match predictions.
        let truth = Vec2::new(0.0, 0.0);
        for _ in 0..200 {
            let obs = ch.observe(truth, &mut r);
            mon.record(truth, obs);
        }
        assert!(!mon.alarm(1.0), "no alarm when the model is right");
        assert!((mon.recent_mean() - mon.baseline()).abs() < 0.5);
        // Phase 2: ontological shift — reality moves, model doesn't.
        let shifted = Vec2::new(0.5, 0.0); // 10 sigma away
        for _ in 0..100 {
            let obs = ch.observe(shifted, &mut r);
            mon.record(truth, obs);
        }
        assert!(mon.alarm(1.0), "alarm must fire after the shift");
        assert!(SurpriseMonitor::new(ch, 0).is_err());
    }

    #[test]
    fn grid_entropy_increases_with_spread() {
        let mut tight =
            OccupancyGrid::new(Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0), 4, 4).unwrap();
        let mut spread = tight.clone();
        for i in 0..16 {
            tight.add(Vec2::new(0.5, 0.5));
            spread.add(Vec2::new(0.5 + (i % 4) as f64, 0.5 + (i / 4) as f64));
        }
        assert!(spread.entropy() > tight.entropy());
    }
}
