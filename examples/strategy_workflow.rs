//! The paper's end goal (Secs. I, VI): derive and track an *overall
//! strategy* — identify uncertainty sources, classify them, assign means
//! from the Fig. 3 catalog, quantify an uncertainty budget, and gate the
//! release decision.
//!
//! Run with `cargo run --example strategy_workflow`.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::budget::UncertaintyBudget;
use sysunc::perception::{FieldCampaign, ReleaseForecast, WorldModel};
use sysunc::prob::dist::{Beta, Continuous as _};
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::taxonomy::{Means, UncertaintyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Identify and classify uncertainty sources.
    // ------------------------------------------------------------------
    let mut register = UncertaintyRegister::new();
    register.add(
        "U1",
        "perception/classifier",
        "true confusion rates of the deployed classifier",
        UncertaintyKind::Epistemic,
    )?;
    register.add(
        "U2",
        "environment",
        "object mix encountered per drive (world priors)",
        UncertaintyKind::Aleatory,
    )?;
    register.add(
        "U3",
        "environment",
        "object classes absent from the perception model",
        UncertaintyKind::Ontological,
    )?;
    register.add(
        "U4",
        "perception/sensors",
        "common-cause degradation (weather) across camera and radar",
        UncertaintyKind::Epistemic,
    )?;

    println!("== Open register with catalog recommendations ==");
    for (id, recs) in register.recommendations() {
        println!("  {id}: {}", recs.join(" | "));
    }

    // ------------------------------------------------------------------
    // 2. Assign means per the taxonomy and execute them (simulated).
    // ------------------------------------------------------------------
    register.assign("U1", Means::Removal)?; // design-time testing
    register.assign("U2", Means::Tolerance)?; // diverse fusion
    register.assign("U3", Means::Forecasting)?; // residual estimation + gate
    register.assign("U4", Means::Prevention)?; // diverse technologies, no shared mode

    let mut rng = StdRng::seed_from_u64(1);
    let world = WorldModel::paper_example()?;

    // U1: removal by observation — Beta posterior on the hazard rate.
    let posterior = Beta::new(1.0, 1.0)?.updated(9_641, 359); // 10k labeled frames
    let epistemic_width = posterior.credible_width(0.95);
    register.set_status("U1", MitigationStatus::Verified)?;

    // U2: aleatory spread of the per-drive hazard count (binomial CV as a
    // scalar); tolerated by architecture, accepted as is.
    let aleatory_level = (posterior.mean() * (1.0 - posterior.mean())).sqrt();
    register.set_status("U2", MitigationStatus::Verified)?;

    // U3: forecasting via a field campaign.
    let mut campaign = FieldCampaign::new(2);
    campaign.observe_world(&world, 200_000, &mut rng);
    let forecast = ReleaseForecast::from_campaign(&campaign);
    register.set_status("U3", MitigationStatus::AcceptedResidual)?;

    // U4: prevention by diversity — verified by the common-cause FTA
    // (see exp_fta / E8); marked verified here.
    register.set_status("U4", MitigationStatus::Verified)?;

    // ------------------------------------------------------------------
    // 3. Assemble the budget and gate the release.
    // ------------------------------------------------------------------
    let measured = UncertaintyBudget::new(
        aleatory_level,
        epistemic_width,
        forecast.residual_novelty_rate,
    )?;
    let limits = UncertaintyBudget::new(0.2, 0.02, 0.005)?;
    println!("\n== Uncertainty budget ==");
    println!("  measured: {measured}");
    println!("  limits:   {limits}");
    println!("  dominant kind: {}", measured.dominant());
    println!("  violations: {:?}", measured.violations(&limits));

    println!("\n== Register ==");
    println!("{}", register.to_markdown());
    println!(
        "release ready: register {} / budget {}",
        register.release_ready(),
        measured.acceptable(&limits)
    );
    if !measured.acceptable(&limits) {
        println!(
            "  -> forecast: ~{} further encounters to reach the ontological limit",
            forecast.encounters_to_target(limits.level(UncertaintyKind::Ontological))?
        );
    }
    Ok(())
}
