//! The modeling relation (paper Sec. II-A, after Rosen): formal models of
//! physical systems, their adequacy, and the conditional-entropy surprise
//! factor that separates epistemic from ontological inadequacy.

use crate::error::{SysuncError, Result};
use crate::taxonomy::UncertaintyKind;
use sysunc_prob::info::JointTable;

/// Whether a model infers singular outcomes or probabilistic statements
/// (paper Sec. II-A: "it is the choice of the modeler").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// "From the former a singular outcome can be inferred for a given
    /// input" — e.g. Newton's equations (Fig. 2 model A).
    Deterministic,
    /// "For the latter only statements about probabilistic outcomes can be
    /// inferred" — e.g. the frequentist occupancy model (Fig. 2 model B).
    Probabilistic,
}

/// A quantitative adequacy report of a model against observations of the
/// system it encodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdequacyReport {
    /// Conditional entropy `H(system | model)` in nats — the paper's
    /// formal "surprise factor" (Sec. III-C).
    pub surprise_factor: f64,
    /// Mutual information `I(system; model)` in nats — how much the model
    /// actually captures.
    pub captured_information: f64,
    /// Fraction of observed probability mass on system states the model
    /// declared impossible — the ontological share.
    pub impossible_mass: f64,
}

impl AdequacyReport {
    /// Classifies the *dominant* inadequacy per the paper's rule of thumb:
    /// impossible observations → ontological (model correctness); residual
    /// conditional entropy → epistemic (model accuracy); otherwise the
    /// remaining spread is aleatory.
    pub fn dominant_kind(&self, epistemic_threshold_nats: f64) -> UncertaintyKind {
        if self.impossible_mass > 0.0 {
            UncertaintyKind::Ontological
        } else if self.surprise_factor > epistemic_threshold_nats {
            UncertaintyKind::Epistemic
        } else {
            UncertaintyKind::Aleatory
        }
    }
}

/// Assesses a model against paired discrete observations.
///
/// `system_states` and `model_predictions` are paired samples (same
/// length): the actual system state index and the model's predicted state
/// index for each observation, over `n_states` possible states.
///
/// # Errors
///
/// Returns [`SysuncError::InvalidInput`] for empty or mismatched inputs or
/// out-of-range state indices.
pub fn assess_adequacy(
    system_states: &[usize],
    model_predictions: &[usize],
    n_states: usize,
) -> Result<AdequacyReport> {
    if system_states.is_empty() || system_states.len() != model_predictions.len() {
        return Err(SysuncError::InvalidInput(
            "need non-empty, equal-length state/prediction sequences".into(),
        ));
    }
    if n_states == 0 {
        return Err(SysuncError::InvalidInput("n_states must be > 0".into()));
    }
    let mut joint = vec![0.0; n_states * n_states];
    let n = system_states.len() as f64;
    for (&s, &m) in system_states.iter().zip(model_predictions) {
        if s >= n_states || m >= n_states {
            return Err(SysuncError::InvalidInput(format!(
                "state index out of range: ({s}, {m}) with n_states = {n_states}"
            )));
        }
        joint[s * n_states + m] += 1.0 / n;
    }
    let table = JointTable::new(n_states, n_states, joint)
        .map_err(|e| SysuncError::InvalidInput(e.to_string()))?;
    // Impossible mass: system states observed where the model never
    // predicts that state at all (zero column AND the prediction marginal
    // assigns zero): here we use the simpler operational reading — system
    // states the model assigned zero predicted probability overall.
    let model_marginal = table.marginal_y();
    let impossible_mass: f64 = table
        .marginal_x()
        .iter()
        .enumerate()
        .filter(|&(i, _)| model_marginal[i] == 0.0) // tidy: allow(float-eq)
        .map(|(_, &p)| p)
        .sum();
    Ok(AdequacyReport {
        surprise_factor: table.conditional_entropy_x_given_y(),
        captured_information: table.mutual_information(),
        impossible_mass,
    })
}

/// The modeling relation of Fig. 2: a named pair of system and model with
/// commentary-producing accessors. Holds the adequacy machinery together
/// for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelingRelation {
    /// Name of the physical system being modeled.
    pub system_name: String,
    /// Name of the formal model.
    pub model_name: String,
    /// Deterministic or probabilistic representation.
    pub kind: ModelKind,
}

impl ModelingRelation {
    /// Creates a modeling relation descriptor.
    pub fn new<S: Into<String>, M: Into<String>>(system: S, model: M, kind: ModelKind) -> Self {
        Self { system_name: system.into(), model_name: model.into(), kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_has_zero_surprise() {
        let states = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let report = assess_adequacy(&states, &states, 3).unwrap();
        assert!(report.surprise_factor < 1e-12);
        assert_eq!(report.impossible_mass, 0.0);
        assert!(report.captured_information > 0.9);
        assert_eq!(report.dominant_kind(0.1), UncertaintyKind::Aleatory);
    }

    #[test]
    fn noisy_model_is_epistemic() {
        // Predictions correlate with the system but imperfectly.
        let system: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        let predictions: Vec<usize> =
            system.iter().enumerate().map(|(i, &s)| if i % 5 == 0 { 1 - s } else { s }).collect();
        let report = assess_adequacy(&system, &predictions, 2).unwrap();
        assert!(report.surprise_factor > 0.1);
        assert_eq!(report.impossible_mass, 0.0);
        assert_eq!(report.dominant_kind(0.1), UncertaintyKind::Epistemic);
    }

    #[test]
    fn impossible_states_are_ontological() {
        // The system visits state 2, which the model never predicts.
        let system = vec![0, 1, 2, 0, 1, 2, 2, 0];
        let predictions = vec![0, 1, 0, 0, 1, 1, 0, 0];
        let report = assess_adequacy(&system, &predictions, 3).unwrap();
        assert!((report.impossible_mass - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(report.dominant_kind(0.1), UncertaintyKind::Ontological);
    }

    #[test]
    fn validation() {
        assert!(assess_adequacy(&[], &[], 2).is_err());
        assert!(assess_adequacy(&[0], &[0, 1], 2).is_err());
        assert!(assess_adequacy(&[0, 5], &[0, 1], 2).is_err());
        assert!(assess_adequacy(&[0], &[0], 0).is_err());
    }

    #[test]
    fn relation_descriptor() {
        let rel = ModelingRelation::new("two planets", "Newton", ModelKind::Deterministic);
        assert_eq!(rel.kind, ModelKind::Deterministic);
        assert_eq!(rel.system_name, "two planets");
    }
}
