//! Route classification and response construction for the propagation
//! API, plus the deadline/cancellation machinery a worker uses to
//! abort oversized sample budgets.
//!
//! The route table is fixed:
//!
//! | method | path | handler |
//! |---|---|---|
//! | `POST` | `/v1/propagate` | run a [`WireRequest`] on the worker pool |
//! | `POST` | `/v1/propagate/batch` | run many jobs through `run_batch`, deduplicated |
//! | `GET` | `/v1/engines` | engine catalog |
//! | `GET` | `/v1/models` | registered model names |
//! | `GET` | `/metrics` | text exposition of [`ServerMetrics`] |
//! | `GET` | `/healthz` | liveness probe (answered inline, no pool slot) |
//!
//! Both propagate routes decode into the **canonical request**
//! ([`CanonicalRequest`]): the content-addressed identity the response
//! cache and intra-batch dedup are keyed on.
//!
//! Cancellation is cooperative: [`CancelModel`] wraps the registered
//! model and checks its [`CancelToken`] on every evaluation (every
//! chunk on the batched path), returning `NaN` once cancelled or past
//! the deadline. Engines then finish almost immediately (their quantile
//! reduction rejects the NaN sample), the worker observes the expired
//! token, and the request is answered with `408` instead of burning the
//! rest of its budget.

use crate::error::ServeError;
use crate::http::Response;
use crate::metrics::ServerMetrics;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use sysunc::prob::json::{self, writer::JsonWriter, FromJson, Json};
use sysunc::{
    run_batch, BatchJob, CanonicalRequest, Error as SysuncError, Model, ModelRegistry,
    PropagationReport, Propagator, WireRequest, ENGINE_NAMES,
};

/// Where a request landed in the route table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/propagate`.
    Propagate,
    /// `POST /v1/propagate/batch`.
    PropagateBatch,
    /// `GET /v1/engines`.
    Engines,
    /// `GET /v1/models`.
    Models,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// A known path with the wrong method.
    MethodNotAllowed,
    /// An unknown path.
    NotFound,
}

/// The request-handling roots of this crate, by function name. This is
/// the authoritative list `sysunc-tidy`'s `panic-path` rule walks the
/// call graph from: every function reachable from one of these handles
/// live traffic and must map failures to HTTP statuses, never panic.
/// Keep it in sync with [`route`] dispatch — a new served route whose
/// handling starts outside these roots silently escapes the lint.
pub const REQUEST_ENTRY_POINTS: &[&str] =
    &["start", "acceptor_loop", "handle_connection", "handle_request", "reject_connection"];

/// Classifies a request line against the route table. Query strings
/// are ignored for matching.
pub fn route(method: &str, target: &str) -> Route {
    let path = target.split('?').next().unwrap_or(target);
    match (method, path) {
        ("POST", "/v1/propagate") => Route::Propagate,
        ("POST", "/v1/propagate/batch") => Route::PropagateBatch,
        ("GET", "/v1/engines") => Route::Engines,
        ("GET", "/v1/models") => Route::Models,
        ("GET", "/metrics") => Route::Metrics,
        ("GET", "/healthz") => Route::Healthz,
        (
            _,
            "/v1/propagate" | "/v1/propagate/batch" | "/v1/engines" | "/v1/models" | "/metrics"
            | "/healthz",
        ) => Route::MethodNotAllowed,
        _ => Route::NotFound,
    }
}

/// A shared cancel flag plus a hard deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Instant,
}

impl CancelToken {
    /// A token that expires at `deadline` (or earlier, when cancelled).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { cancelled: Arc::new(AtomicBool::new(false)), deadline }
    }

    /// Cancels the token from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token was cancelled or its deadline passed.
    pub fn expired(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst) || Instant::now() >= self.deadline
    }
}

/// A [`Model`] adapter that aborts evaluation once its token expires,
/// returning `NaN` so engine statistics fail fast instead of running
/// out the remaining budget.
pub struct CancelModel<'m> {
    inner: &'m dyn Model,
    token: CancelToken,
}

impl<'m> CancelModel<'m> {
    /// Wraps `inner` under the given token.
    pub fn new(inner: &'m dyn Model, token: CancelToken) -> Self {
        Self { inner, token }
    }
}

impl Model for CancelModel<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        if self.token.expired() {
            f64::NAN
        } else {
            self.inner.eval(x)
        }
    }

    fn eval_batch(&self, columns: &[&[f64]], out: &mut [f64]) {
        // One token check per chunk instead of per sample: cancellation
        // stays cooperative at chunk granularity, and an uncancelled
        // run forwards wholesale — keeping served outputs bit-identical
        // to the unwrapped model's.
        if self.token.expired() {
            out.fill(f64::NAN);
        } else {
            self.inner.eval_batch(columns, out);
        }
    }
}

/// Builds the JSON error body `{"error": …, "status": …}`.
pub fn error_response(status: u16, message: &str) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error").string(message);
    w.key("status").u64(u64::from(status));
    w.end_object();
    let body = w.finish().unwrap_or_else(|_| String::from("{}"));
    Response::new(status).with_json(body)
}

/// `GET /v1/engines`: the fixed engine catalog.
pub fn engines_response() -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("engines").begin_array();
    for name in ENGINE_NAMES {
        w.string(name);
    }
    w.end_array();
    w.end_object();
    Response::new(200).with_json(w.finish().unwrap_or_else(|_| String::from("{}")))
}

/// `GET /v1/models`: the names registered in the model registry.
pub fn models_response(registry: &ModelRegistry) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("models").begin_array();
    for name in registry.names() {
        w.string(name);
    }
    w.end_array();
    w.end_object();
    Response::new(200).with_json(w.finish().unwrap_or_else(|_| String::from("{}")))
}

/// `GET /metrics`: the Prometheus-style text exposition.
pub fn metrics_response(metrics: &ServerMetrics) -> Response {
    Response::new(200).with_text(metrics.render_text())
}

/// `GET /healthz`: a liveness snapshot answered on the connection
/// thread without taking a pool slot, so a supervisor probe succeeds
/// even when every worker is busy and the queue is full. Reports the
/// propagate queue depth, worker count, worker panics so far, and the
/// server's uptime.
pub fn healthz_response(
    queue_depth: usize,
    workers: usize,
    worker_panics: u64,
    uptime: std::time::Duration,
) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status").string("ok");
    w.key("queue_depth").u64(queue_depth as u64);
    w.key("workers").u64(workers as u64);
    w.key("worker_panics").u64(worker_panics);
    w.key("uptime_micros").u64(uptime.as_micros().min(u128::from(u64::MAX)) as u64);
    w.end_object();
    Response::new(200).with_json(w.finish().unwrap_or_else(|_| String::from("{}")))
}

/// Validates engine and model names of a decoded wire request and
/// derives its canonical identity; `context` prefixes error messages
/// (e.g. `"job 3: "`) so batch failures name the offending job.
fn canonicalize_wire(
    registry: &ModelRegistry,
    wire: &WireRequest,
    context: &str,
) -> std::result::Result<CanonicalRequest, Box<Response>> {
    if registry.get(&wire.model).is_none() {
        return Err(Box::new(error_response(
            400,
            &format!(
                "{context}unknown model '{}'; known models: {}",
                wire.model,
                registry.names().join(", ")
            ),
        )));
    }
    // Canonicalization also validates the engine name (interning it
    // against the catalog) and rejects non-finite float members.
    CanonicalRequest::from_wire(wire)
        .map_err(|e| Box::new(error_response(400, &format!("{context}{e}"))))
}

/// Decodes and pre-validates a propagate body on the connection
/// thread, so malformed requests are refused without occupying a
/// worker slot. Returns the wire request together with its canonical
/// identity (the response-cache key).
///
/// # Errors
///
/// Returns the ready-to-send error response (status 400) when the
/// body is not a valid [`WireRequest`] or names an unknown engine or
/// model.
pub fn decode_propagate_body(
    registry: &ModelRegistry,
    body: &[u8],
) -> std::result::Result<(WireRequest, CanonicalRequest), Box<Response>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Box::new(error_response(400, "request body is not UTF-8")))?;
    let wire: WireRequest = json::from_str(text)
        .map_err(|e| Box::new(error_response(400, &format!("invalid request: {e}"))))?;
    let canonical = canonicalize_wire(registry, &wire, "")?;
    Ok((wire, canonical))
}

/// Decodes and pre-validates a batch-propagate body
/// (`{"jobs": [<wire request>, …]}`) on the connection thread. Every
/// job is validated before any runs: one bad job refuses the whole
/// batch, named by index.
///
/// # Errors
///
/// Returns the ready-to-send error response (status 400) for
/// non-UTF-8 / non-JSON bodies, a missing or empty `jobs` array, or
/// any individually invalid job.
pub fn decode_batch_body(
    registry: &ModelRegistry,
    body: &[u8],
) -> std::result::Result<Vec<(WireRequest, CanonicalRequest)>, Box<Response>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Box::new(error_response(400, "request body is not UTF-8")))?;
    let doc = json::parse(text)
        .map_err(|e| Box::new(error_response(400, &format!("invalid request: {e}"))))?;
    let jobs = doc
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| Box::new(error_response(400, "body must carry a 'jobs' array")))?;
    if jobs.is_empty() {
        return Err(Box::new(error_response(400, "'jobs' must not be empty")));
    }
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            let context = format!("job {i}: ");
            let wire = WireRequest::from_json(job).map_err(|e| {
                Box::new(error_response(400, &format!("{context}invalid request: {e}")))
            })?;
            let canonical = canonicalize_wire(registry, &wire, &context)?;
            Ok((wire, canonical))
        })
        .collect()
}

/// Runs one pre-validated propagation (the worker-side job body) and
/// renders the response: `200` with the report, `408` when the token
/// expired mid-run, `400` for invalid problem setups, `500` for
/// internal engine failures.
pub fn propagate_response(
    registry: &ModelRegistry,
    wire: &WireRequest,
    token: &CancelToken,
    metrics: &ServerMetrics,
) -> Response {
    if token.expired() {
        return error_response(408, "request deadline exceeded before execution");
    }
    let Some(model) = registry.get(&wire.model) else {
        return error_response(400, &format!("unknown model '{}'", wire.model));
    };
    let engine = match wire.resolve_engine() {
        Ok(engine) => engine,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let guarded = CancelModel::new(model, token.clone());
    let request = match wire.to_request(&guarded) {
        Ok(request) => request,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let started = Instant::now();
    let outcome = engine.propagate(&request);
    if token.expired() {
        return error_response(408, "request deadline exceeded during execution");
    }
    match outcome {
        Ok(report) => {
            metrics.record_engine(report.engine, started.elapsed());
            Response::new(200).with_json(json::to_string(&report))
        }
        Err(SysuncError::InvalidInput(msg)) => {
            error_response(400, &format!("invalid input: {msg}"))
        }
        Err(SysuncError::Unsupported(msg)) => {
            error_response(400, &format!("unsupported propagation request: {msg}"))
        }
        Err(e) => error_response(500, &format!("propagation failed: {e}")),
    }
}

/// A [`Propagator`] wrapper that feeds per-run engine metrics, so
/// batch execution accounts runs exactly like single-request serving.
struct RecordedEngine<'a> {
    inner: Box<dyn Propagator + Send + Sync>,
    metrics: &'a ServerMetrics,
}

impl Propagator for RecordedEngine<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn means(&self) -> sysunc::taxonomy::Means {
        self.inner.means()
    }

    fn propagate(
        &self,
        request: &sysunc::PropagationRequest<'_>,
    ) -> sysunc::Result<PropagationReport> {
        let started = Instant::now();
        let outcome = self.inner.propagate(request);
        if let Ok(report) = &outcome {
            self.metrics.record_engine(report.engine, started.elapsed());
        }
        outcome
    }
}

/// Runs pre-validated wire jobs through [`run_batch`] under one cancel
/// token, preserving order. Each model evaluation goes through a
/// [`CancelModel`] guard, and each successful run is recorded in the
/// engine metrics with its own latency — exactly like the
/// single-request path, so the produced reports (and their JSON
/// encodings) are bit-identical to per-request serving.
///
/// # Errors
///
/// Returns `(job_index, error)` when a job fails to *bind* (unknown
/// engine/model, invalid quantiles) — the whole batch is refused
/// before anything runs. Per-job *runtime* failures come back in the
/// inner results.
pub fn run_batch_jobs(
    registry: &ModelRegistry,
    wires: &[WireRequest],
    token: &CancelToken,
    metrics: &ServerMetrics,
    threads: usize,
) -> std::result::Result<
    Vec<std::result::Result<PropagationReport, SysuncError>>,
    (usize, SysuncError),
> {
    let mut engines: Vec<RecordedEngine<'_>> = Vec::with_capacity(wires.len());
    let mut guards: Vec<CancelModel<'_>> = Vec::with_capacity(wires.len());
    for (i, wire) in wires.iter().enumerate() {
        engines.push(RecordedEngine {
            inner: wire.resolve_engine().map_err(|e| (i, e))?,
            metrics,
        });
        let model = registry.get(&wire.model).ok_or_else(|| {
            (i, SysuncError::InvalidInput(format!("unknown model '{}'", wire.model)))
        })?;
        guards.push(CancelModel::new(model, token.clone()));
    }
    let mut requests = Vec::with_capacity(wires.len());
    for (i, (wire, guard)) in wires.iter().zip(&guards).enumerate() {
        requests.push(wire.to_request(guard).map_err(|e| (i, e))?);
    }
    let jobs: Vec<BatchJob<'_, '_>> = engines
        .iter()
        .map(|e| e as &dyn Propagator)
        .zip(requests.iter())
        .collect();
    Ok(run_batch(&jobs, threads))
}

/// Maps a fatal read-side error onto the response that should be
/// attempted before closing the connection (`None` when the peer is
/// already gone and writing is pointless).
pub fn read_error_response(e: &ServeError) -> Option<Response> {
    match e {
        ServeError::Protocol(msg) => Some(error_response(400, msg)),
        ServeError::TooLarge { part, limit } => Some(error_response(
            413,
            &format!("message {part} exceeds the {limit}-byte limit"),
        )),
        ServeError::Io(_) | ServeError::Closed | ServeError::Timeout => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use sysunc::UncertainInput;

    fn wire(engine: &str, model: &str) -> WireRequest {
        WireRequest::new(
            engine,
            model,
            vec![UncertainInput::Uniform { a: 0.0, b: 1.0 }],
        )
    }

    fn far_future() -> Instant {
        Instant::now() + Duration::from_secs(3600)
    }

    #[test]
    fn route_table_matches_methods_and_paths() {
        assert_eq!(route("POST", "/v1/propagate"), Route::Propagate);
        assert_eq!(route("POST", "/v1/propagate/batch"), Route::PropagateBatch);
        assert_eq!(route("GET", "/v1/propagate/batch"), Route::MethodNotAllowed);
        assert_eq!(route("GET", "/v1/engines"), Route::Engines);
        assert_eq!(route("GET", "/v1/models"), Route::Models);
        assert_eq!(route("GET", "/metrics?verbose=1"), Route::Metrics);
        assert_eq!(route("GET", "/healthz"), Route::Healthz);
        assert_eq!(route("POST", "/healthz"), Route::MethodNotAllowed);
        assert_eq!(route("GET", "/v1/propagate"), Route::MethodNotAllowed);
        assert_eq!(route("DELETE", "/metrics"), Route::MethodNotAllowed);
        assert_eq!(route("GET", "/nope"), Route::NotFound);
    }

    #[test]
    fn healthz_response_reports_the_snapshot_without_a_pool_slot() {
        let resp = healthz_response(3, 4, 1, Duration::from_millis(1500));
        assert_eq!(resp.status, 200);
        let v = json::parse(&resp.body_text()).expect("json");
        assert_eq!(
            v.get("status").and_then(|j| j.as_str().map(str::to_string)),
            Some("ok".into())
        );
        assert_eq!(v.get("queue_depth").and_then(|j| j.as_u64()), Some(3));
        assert_eq!(v.get("workers").and_then(|j| j.as_u64()), Some(4));
        assert_eq!(v.get("worker_panics").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(v.get("uptime_micros").and_then(|j| j.as_u64()), Some(1_500_000));
    }

    #[test]
    fn discovery_responses_list_the_catalogs() {
        let registry = ModelRegistry::standard().expect("builds");
        let engines = engines_response();
        assert_eq!(engines.status, 200);
        let v = json::parse(&engines.body_text()).expect("json");
        let listed = v.get("engines").and_then(|j| j.as_arr()).expect("array");
        assert_eq!(listed.len(), ENGINE_NAMES.len());
        let models = models_response(&registry);
        assert!(models.body_text().contains("\"orbital-period\""));
    }

    #[test]
    fn decode_rejects_bad_bodies_with_400_and_accepts_good_ones() {
        let registry = ModelRegistry::standard().expect("builds");
        for bad in [
            &b"\xff\xfe"[..],
            b"not json",
            b"{\"engine\":\"monte-carlo\"}",
            br#"{"engine":"warp","model":"sum","inputs":[{"dist":"uniform","a":0.0,"b":1.0}]}"#,
            br#"{"engine":"monte-carlo","model":"warp","inputs":[{"dist":"uniform","a":0.0,"b":1.0}]}"#,
        ] {
            let resp = *decode_propagate_body(&registry, bad).expect_err("must refuse");
            assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(bad));
        }
        let good = json::to_string(&wire("monte-carlo", "sum"));
        let (decoded, canonical) =
            decode_propagate_body(&registry, good.as_bytes()).expect("valid body");
        assert_eq!(decoded.model, "sum");
        assert_eq!(canonical.engine(), "monte-carlo");
    }

    #[test]
    fn batch_decode_validates_every_job_and_names_the_bad_one() {
        let registry = ModelRegistry::standard().expect("builds");
        for (bad, needle) in [
            (String::from("not json"), "invalid request"),
            (String::from("{\"jobs\":[]}"), "must not be empty"),
            (String::from("{\"reports\":[]}"), "'jobs' array"),
            (
                format!(
                    "{{\"jobs\":[{},{}]}}",
                    json::to_string(&wire("monte-carlo", "sum")),
                    json::to_string(&wire("warp", "sum")),
                ),
                "job 1",
            ),
        ] {
            let resp =
                *decode_batch_body(&registry, bad.as_bytes()).expect_err("must refuse");
            assert_eq!(resp.status, 400, "{bad}");
            assert!(
                resp.body_text().contains(needle),
                "expected '{needle}' in: {}",
                resp.body_text()
            );
        }
        let good = format!(
            "{{\"jobs\":[{},{}]}}",
            json::to_string(&wire("monte-carlo", "sum")),
            json::to_string(&wire("sobol-qmc", "product")),
        );
        let jobs = decode_batch_body(&registry, good.as_bytes()).expect("valid batch");
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].1.engine(), "sobol-qmc");
    }

    #[test]
    fn batch_runs_are_bit_identical_to_single_request_serving() {
        let registry = ModelRegistry::standard().expect("builds");
        let metrics = ServerMetrics::new();
        let wires = vec![wire("monte-carlo", "sum"), wire("latin-hypercube", "product")];
        let token = CancelToken::with_deadline(far_future());
        let results = run_batch_jobs(&registry, &wires, &token, &metrics, 2)
            .expect("batch binds");
        assert_eq!(results.len(), 2);
        for (w, outcome) in wires.iter().zip(&results) {
            let report = outcome.as_ref().expect("job runs");
            let single = propagate_response(&registry, w, &token, &metrics);
            assert_eq!(single.status, 200);
            assert_eq!(
                json::to_string(report),
                single.body_text(),
                "batch body must match the single-request bytes"
            );
        }
        // Both paths recorded engine runs identically (1 batch + 1
        // single run per engine).
        assert_eq!(metrics.engine_count("monte-carlo"), 2);
        assert_eq!(metrics.engine_count("latin-hypercube"), 2);
    }

    #[test]
    fn batch_bind_failures_name_the_offending_job() {
        let registry = ModelRegistry::standard().expect("builds");
        let metrics = ServerMetrics::new();
        let mut bad = wire("monte-carlo", "sum");
        bad.quantile_levels = vec![1.5];
        let wires = vec![wire("monte-carlo", "sum"), bad];
        let token = CancelToken::with_deadline(far_future());
        let err = run_batch_jobs(&registry, &wires, &token, &metrics, 2)
            .expect_err("bad quantiles refuse the batch");
        assert_eq!(err.0, 1, "second job is the offender");
        assert_eq!(metrics.engine_count("monte-carlo"), 0, "nothing ran");
    }

    #[test]
    fn propagate_matches_the_in_process_engine_bit_for_bit() {
        let registry = ModelRegistry::standard().expect("builds");
        let metrics = ServerMetrics::new();
        let wire = wire("latin-hypercube", "sum");
        let token = CancelToken::with_deadline(far_future());
        let resp = propagate_response(&registry, &wire, &token, &metrics);
        assert_eq!(resp.status, 200);
        let served: sysunc::PropagationReport =
            json::from_str(&resp.body_text()).expect("report json");
        let model = registry.get("sum").expect("registered");
        let direct = wire
            .resolve_engine()
            .expect("known")
            .propagate(&wire.to_request(model).expect("valid"))
            .expect("runs");
        assert_eq!(served, direct);
        assert_eq!(metrics.engine_count("latin-hypercube"), 1);
    }

    #[test]
    fn an_expired_token_yields_408_not_a_report() {
        let registry = ModelRegistry::standard().expect("builds");
        let metrics = ServerMetrics::new();
        let mut w = wire("monte-carlo", "sum");
        w.budget = 200_000;
        let token = CancelToken::with_deadline(far_future());
        token.cancel();
        let resp = propagate_response(&registry, &w, &token, &metrics);
        assert_eq!(resp.status, 408);
        assert_eq!(metrics.engine_count("monte-carlo"), 0);
    }

    #[test]
    fn cancel_model_turns_evaluations_into_nan() {
        let inner = |x: &[f64]| x[0] * 2.0;
        let token = CancelToken::with_deadline(far_future());
        let guarded = CancelModel::new(&inner, token.clone());
        assert_eq!(guarded.eval(&[3.0]), 6.0);
        token.cancel();
        assert!(guarded.eval(&[3.0]).is_nan());
    }

    #[test]
    fn read_errors_map_to_write_attempts_only_when_useful() {
        assert_eq!(
            read_error_response(&ServeError::Protocol("x".into())).map(|r| r.status),
            Some(400)
        );
        assert_eq!(
            read_error_response(&ServeError::TooLarge { part: "body", limit: 9 })
                .map(|r| r.status),
            Some(413)
        );
        assert!(read_error_response(&ServeError::Closed).is_none());
        assert!(read_error_response(&ServeError::Timeout).is_none());
    }

    #[test]
    fn invalid_problem_setups_are_400_not_500() {
        let registry = ModelRegistry::standard().expect("builds");
        let metrics = ServerMetrics::new();
        let mut w = wire("monte-carlo", "sum");
        w.quantile_levels = vec![1.5];
        let token = CancelToken::with_deadline(far_future());
        let resp = propagate_response(&registry, &w, &token, &metrics);
        assert_eq!(resp.status, 400);
    }
}
