//! Serving smoke test: boot the propagation server on an ephemeral
//! port, drive every route through the in-tree HTTP client, and shut
//! down gracefully. This is the end-to-end path CI exercises (see
//! `ci.sh`), with no external tooling — client and server are both
//! in-tree.
//!
//! Run with `cargo run --example serve_smoke`.

use sysunc::prob::json::{self, Json};
use sysunc::{ModelRegistry, UncertainInput, WireRequest};
use sysunc_serve::{HttpClient, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Boot: standard model catalog, ephemeral loopback port.
    // ------------------------------------------------------------------
    let server = Server::start(ServerConfig::default(), ModelRegistry::standard()?)?;
    let addr = server.addr();
    println!("== serving on {addr} ==");

    // ------------------------------------------------------------------
    // 2. Discovery: what can this server run?
    // ------------------------------------------------------------------
    let mut client = HttpClient::connect(addr)?;
    let engines = client.get("/v1/engines")?;
    let models = client.get("/v1/models")?;
    println!("engines: {}", engines.body_text());
    println!("models:  {}", models.body_text());

    // ------------------------------------------------------------------
    // 3. Propagate: one request per engine, same model and seed.
    // ------------------------------------------------------------------
    let engine_doc = json::parse(&engines.body_text())?;
    let names: Vec<String> = engine_doc
        .get("engines")
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(|e| e.as_str().map(String::from)).collect())
        .unwrap_or_default();
    println!("\n== POST /v1/propagate (model linear-2x3y, seed 2020) ==");
    for name in &names {
        let mut wire = WireRequest::new(
            name.clone(),
            "linear-2x3y",
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
                UncertainInput::Uniform { a: 0.0, b: 2.0 },
            ],
        );
        wire.budget = 2048;
        let report = client.propagate(&wire)?;
        println!(
            "  {name:<16} mean=[{:.4}, {:.4}]  evals={}",
            report.mean.lo(),
            report.mean.hi(),
            report.evaluations
        );
    }

    // ------------------------------------------------------------------
    // 4. Cache: repeating a request verbatim is answered from the
    //    content-addressed response cache, bit-identically.
    // ------------------------------------------------------------------
    println!("\n== response cache ==");
    let mut repeat = WireRequest::new(
        names.first().cloned().unwrap_or_else(|| "monte-carlo".into()),
        "linear-2x3y",
        vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
        ],
    );
    repeat.budget = 2048;
    let (first_report, first_verdict) = client.propagate_traced(&repeat)?;
    let (second_report, second_verdict) = client.propagate_traced(&repeat)?;
    println!(
        "  first: {}  repeat: {}",
        first_verdict.as_deref().unwrap_or("?"),
        second_verdict.as_deref().unwrap_or("?")
    );
    if second_verdict.as_deref() != Some("hit") {
        return Err("repeated request did not hit the response cache".into());
    }
    if first_report != second_report {
        return Err("cache hit differs from the computed report".into());
    }

    // ------------------------------------------------------------------
    // 5. Batch: many jobs per round-trip, deduped by canonical form.
    // ------------------------------------------------------------------
    let batch_jobs = vec![repeat.clone(), repeat.clone(), repeat.clone()];
    let outcome = client.propagate_batch(&batch_jobs)?;
    println!(
        "== POST /v1/propagate/batch == {} jobs -> {} reports \
         (cache: {} hit, {} miss)",
        batch_jobs.len(),
        outcome.reports.len(),
        outcome.cache_hits,
        outcome.cache_misses
    );
    if outcome.reports.len() != batch_jobs.len() {
        return Err("batch must answer every submitted job".into());
    }
    if outcome.reports.iter().any(|r| *r != first_report) {
        return Err("batch reports differ from single-request serving".into());
    }

    // ------------------------------------------------------------------
    // 6. Observe: the metrics scrape reflects the traffic just served.
    // ------------------------------------------------------------------
    let metrics = client.scrape_metrics()?;
    println!("\n== GET /metrics (excerpt) ==");
    for line in metrics.lines().filter(|l| {
        l.starts_with("sysunc_http_requests_total")
            || l.starts_with("sysunc_engine_runs_total")
            || l.starts_with("sysunc_cache_")
            || l.starts_with("sysunc_batch_jobs_total")
            || l.starts_with("sysunc_connections_rejected_total")
    }) {
        println!("  {line}");
    }
    let gauge = |name: &str| -> u64 {
        metrics
            .lines()
            .filter(|l| !l.starts_with('#'))
            .find_map(|l| {
                let mut parts = l.split_whitespace();
                (parts.next() == Some(name)).then(|| parts.next())?
            })
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    };
    // Per-engine sweep + the cache demo pair ride /v1/propagate.
    let served: u64 = names.len() as u64 + 2;
    let ok_propagates = metrics
        .lines()
        .find(|l| l.contains("route=\"/v1/propagate\",status=\"200\""))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    if ok_propagates != served {
        return Err(format!(
            "metrics disagree with traffic: served {served}, counted {ok_propagates}"
        )
        .into());
    }
    // One single-request hit, plus the batch's one unique job (a hit).
    if gauge("sysunc_cache_hits_total") < 2 {
        return Err("cache hits missing from the exposition".into());
    }
    if gauge("sysunc_batch_jobs_total") != batch_jobs.len() as u64 {
        return Err("batch job counter disagrees with traffic".into());
    }
    if gauge("sysunc_connections_rejected_total") != 0 {
        return Err("no connection was ever rejected in this smoke".into());
    }

    // ------------------------------------------------------------------
    // 7. Graceful shutdown: drains in-flight work, joins every thread.
    // ------------------------------------------------------------------
    server.shutdown();
    println!("\nshutdown complete; {served} propagations served and accounted for");
    Ok(())
}
