//! Student's t distribution.

use super::{Continuous, Gamma, Normal, Support};
use crate::error::{ProbError, Result};
use crate::special::{inv_reg_inc_beta, ln_gamma, reg_inc_beta};
use crate::rng::RngCore;

/// Student's t distribution with `nu` degrees of freedom, location `mu`
/// and scale `sigma`.
///
/// The small-sample sampling distribution of a standardized mean — the
/// natural *epistemic* error model when a quantity is estimated from few
/// observations; heavier tails than the normal encode the extra ignorance.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, StudentT};
/// let t = StudentT::new(5.0, 0.0, 1.0)?;
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!(t.variance() > 1.0); // heavier than N(0,1)
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
    mu: f64,
    sigma: f64,
}

impl StudentT {
    /// Creates a Student-t distribution.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] unless `nu > 0` and
    /// `sigma > 0` (all finite).
    pub fn new(nu: f64, mu: f64, sigma: f64) -> Result<Self> {
        if !nu.is_finite() || !mu.is_finite() || !sigma.is_finite() || nu <= 0.0 || sigma <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "StudentT requires nu > 0 and sigma > 0, got (nu={nu}, mu={mu}, sigma={sigma})"
            )));
        }
        Ok(Self { nu, mu, sigma })
    }

    /// Degrees of freedom.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Location.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Standardized CDF of the t distribution with `nu` dof.
    fn std_cdf(nu: f64, t: f64) -> f64 {
        // I_x(nu/2, 1/2) with x = nu / (nu + t²) gives the two-sided tail.
        let x = nu / (nu + t * t);
        let tail = 0.5 * reg_inc_beta(nu / 2.0, 0.5, x);
        if t >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }
}

impl Continuous for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        ln_gamma((self.nu + 1.0) / 2.0)
            - ln_gamma(self.nu / 2.0)
            - 0.5 * (self.nu * std::f64::consts::PI).ln()
            - self.sigma.ln()
            - 0.5 * (self.nu + 1.0) * (1.0 + z * z / self.nu).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        Self::std_cdf(self.nu, (x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "StudentT::quantile: p in [0,1], got {p}");
        if p == 0.0 { // tidy: allow(float-eq)
            return f64::NEG_INFINITY;
        }
        if p == 1.0 { // tidy: allow(float-eq)
            return f64::INFINITY;
        }
        // Invert via the incomplete beta: for p >= 1/2,
        // x = nu/(nu + t²) solves I_x(nu/2, 1/2) = 2(1 - p).
        let (tail, sign) = if p >= 0.5 { (2.0 * (1.0 - p), 1.0) } else { (2.0 * p, -1.0) };
        let x = inv_reg_inc_beta(self.nu / 2.0, 0.5, tail);
        let t = ((self.nu * (1.0 - x)) / x.max(1e-300)).sqrt();
        self.mu + self.sigma * sign * t
    }

    fn mean(&self) -> f64 {
        if self.nu > 1.0 {
            self.mu
        } else {
            f64::NAN
        }
    }

    fn variance(&self) -> f64 {
        if self.nu > 2.0 {
            self.sigma * self.sigma * self.nu / (self.nu - 2.0)
        } else {
            f64::INFINITY
        }
    }

    fn support(&self) -> Support {
        Support::real_line()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // t = Z / sqrt(V / nu) with Z ~ N(0,1), V ~ chi²(nu).
        let z = Normal::standard().sample(rng);
        let v = Gamma::new(self.nu / 2.0, 0.5).expect("validated").sample(rng); // tidy: allow(panic)
        self.mu + self.sigma * z / (v / self.nu).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(StudentT::new(0.0, 0.0, 1.0).is_err());
        assert!(StudentT::new(1.0, 0.0, 0.0).is_err());
        assert!(StudentT::new(f64::NAN, 0.0, 1.0).is_err());
    }

    #[test]
    fn cdf_known_quantiles() {
        // t_{0.975, 5} = 2.570582; t_{0.975, 10} = 2.228139.
        let t5 = StudentT::new(5.0, 0.0, 1.0).unwrap();
        assert!((t5.quantile(0.975) - 2.570_582).abs() < 1e-4);
        let t10 = StudentT::new(10.0, 0.0, 1.0).unwrap();
        assert!((t10.quantile(0.975) - 2.228_139).abs() < 1e-4);
        assert!((t10.cdf(2.228_139) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn symmetric_about_location() {
        let t = StudentT::new(3.0, 2.0, 1.5).unwrap();
        assert!((t.pdf(1.0) - t.pdf(3.0)).abs() < 1e-14);
        assert!((t.cdf(2.0) - 0.5).abs() < 1e-12);
        assert!((t.quantile(0.3) + t.quantile(0.7) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn converges_to_normal_for_large_nu() {
        let t = StudentT::new(1e6, 0.0, 1.0).unwrap();
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn quantile_cdf_round_trip() {
        let t = StudentT::new(4.0, -1.0, 2.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&t, &[-5.0, -1.0, 0.5, 3.0], 1e-7);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let t = StudentT::new(6.0, 0.0, 1.0).unwrap();
        testutil::check_pdf_integrates_to_cdf(&t, -3.0, 3.0, 1e-9);
    }

    #[test]
    fn sampling_moments() {
        let t = StudentT::new(8.0, 3.0, 2.0).unwrap();
        testutil::check_sample_moments(&t, 71, 400_000, 6.0);
    }

    #[test]
    fn heavy_tail_moments() {
        let t1 = StudentT::new(1.0, 0.0, 1.0).unwrap(); // Cauchy
        assert!(t1.mean().is_nan());
        assert!(t1.variance().is_infinite());
        let t2 = StudentT::new(2.5, 0.0, 1.0).unwrap();
        assert!(t2.variance().is_finite());
    }
}
