//! A small blocking HTTP/1.1 client for the propagation API — used by
//! the integration tests, the `loadgen` benchmark driver, and the CI
//! smoke test, so the server is exercised end to end without external
//! tooling.
//!
//! One [`HttpClient`] owns one keep-alive connection; issue requests
//! sequentially and reuse it for the next. Typed helpers wrap the
//! JSON encode/decode of the propagate route.

use crate::error::{Result, ServeError};
use crate::http::{HttpConn, Limits, Response};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use sysunc::prob::json::{self, FromJson};
use sysunc::{PropagationReport, WireRequest};

/// A decoded batch-propagate answer: the per-job reports in request
/// order, plus the server's cache accounting for the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One report per submitted job, in submission order.
    pub reports: Vec<PropagationReport>,
    /// Distinct jobs the server answered from its response cache.
    pub cache_hits: u64,
    /// Distinct jobs the server had to run.
    pub cache_misses: u64,
}

/// How a connect tolerates a refused connection — the signature of a
/// server that is restarting (its port is not yet bound again). Each
/// refused attempt sleeps, doubling the delay up to `max_backoff`,
/// until `attempts` connects have failed. Errors other than refusal
/// (unreachable host, timeout) fail immediately: they signal absence,
/// not a restart in progress.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connect attempts before giving up (at least 1).
    pub attempts: usize,
    /// Sleep after the first refused attempt.
    pub initial_backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// 8 attempts backing off 10 ms → 250 ms: about 1.2 s in total,
    /// comfortably covering a supervised child restart.
    fn default() -> Self {
        Self {
            attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
        }
    }
}

/// A blocking keep-alive HTTP client for one server connection.
#[derive(Debug)]
pub struct HttpClient {
    conn: HttpConn<TcpStream>,
    limits: Limits,
    timeout: Duration,
}

impl HttpClient {
    /// Connects to the server with a 10 s response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures as [`ServeError::Io`].
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures as [`ServeError::Io`].
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        stream.set_nodelay(true)?;
        Ok(Self { conn: HttpConn::new(stream), limits: Limits::default(), timeout })
    }

    /// Overrides the per-response timeout for subsequent requests —
    /// lets a pool keep a short connect timeout but a generous request
    /// deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Connects like [`HttpClient::connect_with_timeout`], retrying
    /// refused connections under `policy` — so a client riding out a
    /// supervised server restart reconnects instead of hard-failing.
    ///
    /// # Errors
    ///
    /// The last refusal once the attempt budget is spent; any
    /// non-refusal connect failure immediately.
    pub fn connect_with_retry(
        addr: SocketAddr,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> Result<Self> {
        let mut backoff = policy.initial_backoff;
        let attempts = policy.attempts.max(1);
        for attempt in 1..=attempts {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
                    stream.set_nodelay(true)?;
                    return Ok(Self {
                        conn: HttpConn::new(stream),
                        limits: Limits::default(),
                        timeout,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    if attempt == attempts {
                        return Err(ServeError::Io(format!(
                            "connection to {addr} refused after {attempts} attempts: {e}"
                        )));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
                Err(e) => return Err(e.into()),
            }
        }
        // The loop always returns by the final attempt.
        Err(ServeError::Io(format!("connection to {addr} refused")))
    }

    /// Sends one request and reads the response off the same
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when the response misses the client
    /// timeout; otherwise the read/write failure.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: sysunc\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.conn.stream_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let deadline = Instant::now() + self.timeout;
        self.conn
            .read_response(&self.limits, &mut || Instant::now() >= deadline)
    }

    /// `GET` a route.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::request`].
    pub fn get(&mut self, target: &str) -> Result<Response> {
        self.request("GET", target, None)
    }

    /// Runs a [`WireRequest`] through `POST /v1/propagate` and decodes
    /// the report.
    ///
    /// # Errors
    ///
    /// Non-200 statuses surface as [`ServeError::Protocol`] carrying
    /// the status and the server's error body; transport failures as
    /// in [`HttpClient::request`].
    pub fn propagate(&mut self, wire: &WireRequest) -> Result<PropagationReport> {
        let body = json::to_string(wire);
        let response = self.request("POST", "/v1/propagate", Some(&body))?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "propagate returned {}: {}",
                response.status,
                response.body_text()
            )));
        }
        json::from_str(&response.body_text())
            .map_err(|e| ServeError::Protocol(format!("undecodable report: {e}")))
    }

    /// Runs a [`WireRequest`] through `POST /v1/propagate` and returns
    /// the report together with the server's `X-Sysunc-Cache` verdict
    /// (`Some("hit")` / `Some("miss")`, `None` from servers without
    /// the header).
    ///
    /// # Errors
    ///
    /// As in [`HttpClient::propagate`].
    pub fn propagate_traced(
        &mut self,
        wire: &WireRequest,
    ) -> Result<(PropagationReport, Option<String>)> {
        let body = json::to_string(wire);
        let response = self.request("POST", "/v1/propagate", Some(&body))?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "propagate returned {}: {}",
                response.status,
                response.body_text()
            )));
        }
        let verdict = response.header("X-Sysunc-Cache").map(str::to_string);
        let report = json::from_str(&response.body_text())
            .map_err(|e| ServeError::Protocol(format!("undecodable report: {e}")))?;
        Ok((report, verdict))
    }

    /// Runs many jobs through `POST /v1/propagate/batch` in one
    /// round-trip and decodes the report array plus the batch cache
    /// header (`X-Sysunc-Cache: hits=H misses=M`).
    ///
    /// # Errors
    ///
    /// Non-200 statuses surface as [`ServeError::Protocol`] carrying
    /// the status and the server's error body; transport failures as
    /// in [`HttpClient::request`].
    pub fn propagate_batch(&mut self, jobs: &[WireRequest]) -> Result<BatchOutcome> {
        // Assemble `{"jobs":[…]}` from the per-job encodings — each
        // element is exactly what `propagate` would send on its own.
        let mut body = String::from("{\"jobs\":[");
        for (i, job) in jobs.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json::to_string(job));
        }
        body.push_str("]}");
        let response = self.request("POST", "/v1/propagate/batch", Some(&body))?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "batch propagate returned {}: {}",
                response.status,
                response.body_text()
            )));
        }
        let (cache_hits, cache_misses) =
            parse_batch_cache_header(response.header("X-Sysunc-Cache").unwrap_or(""));
        let doc = json::parse(&response.body_text())
            .map_err(|e| ServeError::Protocol(format!("undecodable batch body: {e}")))?;
        let reports = doc
            .as_arr()
            .ok_or_else(|| ServeError::Protocol("batch body is not an array".into()))?
            .iter()
            .map(PropagationReport::from_json)
            .collect::<std::result::Result<Vec<_>, _>>()
            .map_err(|e| ServeError::Protocol(format!("undecodable report: {e}")))?;
        Ok(BatchOutcome { reports, cache_hits, cache_misses })
    }

    /// Scrapes `GET /metrics` as text.
    ///
    /// # Errors
    ///
    /// Non-200 statuses and transport failures as in
    /// [`HttpClient::propagate`].
    pub fn scrape_metrics(&mut self) -> Result<String> {
        let response = self.get("/metrics")?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "metrics returned {}",
                response.status
            )));
        }
        Ok(response.body_text())
    }
}

/// Parses the batch `X-Sysunc-Cache` header (`hits=H misses=M`);
/// unknown shapes degrade to zeros rather than failing the response.
fn parse_batch_cache_header(value: &str) -> (u64, u64) {
    let mut hits = 0;
    let mut misses = 0;
    for part in value.split_whitespace() {
        if let Some(n) = part.strip_prefix("hits=").and_then(|n| n.parse().ok()) {
            hits = n;
        } else if let Some(n) = part.strip_prefix("misses=").and_then(|n| n.parse().ok()) {
            misses = n;
        }
    }
    (hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn retry_gives_up_after_the_attempt_budget() {
        // Bind then drop a listener so the port is free (refused), not
        // filtered (timeout).
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
            listener.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let started = Instant::now();
        let err = HttpClient::connect_with_retry(addr, Duration::from_secs(1), &policy)
            .expect_err("no listener, must fail");
        assert!(err.to_string().contains("3 attempts"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(1), "backoff stays bounded");
    }

    #[test]
    fn retry_rides_out_a_listener_that_appears_late() {
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
            listener.local_addr().expect("addr")
        };
        // Rebind the same port after a delay, like a restarting child.
        let accepter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let listener = TcpListener::bind(addr).expect("rebinds");
            let _ = listener.accept();
        });
        let policy = RetryPolicy {
            attempts: 20,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
        };
        let client = HttpClient::connect_with_retry(addr, Duration::from_secs(1), &policy);
        assert!(client.is_ok(), "{:?}", client.err());
        drop(client);
        accepter.join().expect("accepter finishes");
    }

    #[test]
    fn batch_cache_header_parses_and_degrades_gracefully() {
        assert_eq!(parse_batch_cache_header("hits=3 misses=2"), (3, 2));
        assert_eq!(parse_batch_cache_header("misses=7"), (0, 7));
        assert_eq!(parse_batch_cache_header(""), (0, 0));
        assert_eq!(parse_batch_cache_header("hit"), (0, 0));
        assert_eq!(parse_batch_cache_header("hits=x misses=1"), (0, 1));
    }
}
