/root/repo/target/release/examples/quickstart-b47635caaab8ed15.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b47635caaab8ed15: examples/quickstart.rs

examples/quickstart.rs:
