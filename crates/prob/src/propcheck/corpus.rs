//! The persisted regression corpus: seeds of past property failures,
//! stored in `propcheck.regressions` at the workspace root and
//! replayed before random cases on every subsequent run.
//!
//! The file is line-oriented: `#` starts a comment, every other
//! non-empty line is `<property-name> <case-seed>` with the seed in
//! `0x`-prefixed hex (decimal also accepted on read). The runner
//! appends a line when a property fails (after shrinking) and the
//! seed is not already recorded, so a bug found once stays fatal
//! until fixed — even if the random schedule never revisits it.
//!
//! Resolution order for the file path: the `PROPCHECK_REGRESSIONS`
//! environment variable if set, else the nearest ancestor of
//! `CARGO_MANIFEST_DIR` (falling back to the current directory) that
//! contains a `Cargo.lock` — the workspace root, regardless of which
//! crate's test binary is running.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Parses a seed written as `0x`-hex or decimal.
pub fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// The corpus location for this run, per the module docs. `None` when
/// no workspace root can be located (the corpus is then disabled).
pub fn default_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("PROPCHECK_REGRESSIONS") {
        if !p.is_empty() {
            return Some(PathBuf::from(p));
        }
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir.join("propcheck.regressions"));
        }
        dir = dir.parent()?;
    }
}

/// All `(name, seed)` entries of the corpus file. A missing file is an
/// empty corpus; malformed lines are skipped (the corpus must never be
/// able to break the suite it protects).
pub fn load(path: &Path) -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, seed) = l.split_once(char::is_whitespace)?;
            Some((name.to_string(), parse_seed(seed)?))
        })
        .collect()
}

/// The recorded seeds for one property, in file order.
pub fn seeds_for(path: &Path, name: &str) -> Vec<u64> {
    load(path).into_iter().filter(|(n, _)| n == name).map(|(_, s)| s).collect()
}

/// Appends `name seed` to the corpus unless already recorded.
/// Best-effort: IO errors are reported to the caller, who logs and
/// moves on — failing to persist must not mask the property failure
/// being persisted.
pub fn append(path: &Path, name: &str, seed: u64) -> std::io::Result<bool> {
    if seeds_for(path, name).contains(&seed) {
        return Ok(false);
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{name} {seed:#x}")?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("propcheck-corpus-test-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X5EED"), Some(0x5EED));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    fn load_skips_comments_blanks_and_malformed_lines() {
        let path = temp_file("load");
        std::fs::write(
            &path,
            "# header\n\nalpha 0x10\nbeta 7\nmalformed\nguage not-a-seed\nalpha 0x20\n",
        )
        .expect("write temp corpus");
        let entries = load(&path);
        assert_eq!(
            entries,
            vec![("alpha".into(), 16), ("beta".into(), 7), ("alpha".into(), 32)]
        );
        assert_eq!(seeds_for(&path, "alpha"), vec![16, 32]);
        assert_eq!(seeds_for(&path, "gamma"), Vec::<u64>::new());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_deduplicates() {
        let path = temp_file("append");
        let _ = std::fs::remove_file(&path);
        assert!(append(&path, "p", 0x99).expect("first append"));
        assert!(!append(&path, "p", 0x99).expect("duplicate append"));
        assert!(append(&path, "p", 0x9A).expect("new seed"));
        assert!(append(&path, "q", 0x99).expect("new name"));
        assert_eq!(seeds_for(&path, "p"), vec![0x99, 0x9A]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_corpus() {
        assert!(load(Path::new("/nonexistent/propcheck.regressions")).is_empty());
    }

    #[test]
    fn workspace_corpus_file_is_located_and_parses() {
        // Unit tests run with CARGO_MANIFEST_DIR = crates/prob; the
        // walk must land on the workspace root next to Cargo.lock.
        let path = default_path().expect("workspace root found");
        assert!(path.ends_with("propcheck.regressions"), "got {path:?}");
        // The committed corpus must parse (every line a valid entry).
        if let Ok(text) = std::fs::read_to_string(&path) {
            let lines = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            assert_eq!(load(&path).len(), lines, "corpus has malformed lines");
        }
    }
}
