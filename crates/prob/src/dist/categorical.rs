//! Categorical distribution with O(1) alias-method sampling.

use super::Discrete;
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// Categorical distribution over outcomes `0..k` with given probabilities.
///
/// Sampling uses Walker's alias method: O(k) construction, O(1) per draw —
/// important for the large synthetic field campaigns in the perception
/// experiments.
///
/// This is exactly the distribution of the paper's *ground truth* node
/// (Fig. 4): `P(car) = 0.6, P(pedestrian) = 0.3, P(unknown) = 0.1`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Categorical, Discrete};
/// let gt = Categorical::new(vec![0.6, 0.3, 0.1])?;
/// assert!((gt.pmf(0) - 0.6).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    probs: Vec<f64>,
    // Alias tables.
    prob_table: Vec<f64>,
    alias_table: Vec<usize>,
}

impl Categorical {
    /// Creates a categorical distribution from a probability vector.
    ///
    /// The probabilities must be non-negative and sum to 1 within `1e-9`;
    /// they are re-normalized exactly internally.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidProbabilities`] for empty, negative or
    /// badly normalized inputs.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(ProbError::InvalidProbabilities("empty probability vector".into()));
        }
        if probs.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
            return Err(ProbError::InvalidProbabilities(format!(
                "probabilities must be in [0,1], got {probs:?}"
            )));
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(ProbError::InvalidProbabilities(format!(
                "probabilities must sum to 1, got {total}"
            )));
        }
        let probs: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let (prob_table, alias_table) = Self::build_alias(&probs);
        Ok(Self { probs, prob_table, alias_table })
    }

    /// Creates a categorical distribution from unnormalized non-negative
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidProbabilities`] for empty, negative or
    /// all-zero weights.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(ProbError::InvalidProbabilities("empty weight vector".into()));
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(ProbError::InvalidProbabilities(format!(
                "weights must be finite and non-negative, got {weights:?}"
            )));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ProbError::InvalidProbabilities("weights sum to zero".into()));
        }
        Self::new(weights.iter().map(|w| w / total).collect())
    }

    /// Walker alias table construction (Vose's stable variant).
    fn build_alias(probs: &[f64]) -> (Vec<f64>, Vec<usize>) {
        let k = probs.len();
        let mut prob_table = vec![0.0; k];
        let mut alias_table = vec![0usize; k];
        let scaled: Vec<f64> = probs.iter().map(|p| p * k as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob_table[s] = scaled[s];
            alias_table[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob_table[l] = 1.0;
        }
        for &s in &small {
            prob_table[s] = 1.0; // numerical residue
        }
        (prob_table, alias_table)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The (normalized) probability vector.
    /// Range: each entry lies in `[0, 1]` and the entries sum to one.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Draws an index sample with the alias method.
    pub fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        use crate::rng::Rng as _;
        let k = self.probs.len();
        let i = (rng.random::<f64>() * k as f64) as usize % k;
        if rng.random::<f64>() < self.prob_table[i] {
            i
        } else {
            self.alias_table[i]
        }
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        crate::info::entropy(&self.probs)
    }
}

impl Discrete for Categorical {
    fn pmf(&self, k: u64) -> f64 {
        self.probs.get(k as usize).copied().unwrap_or(0.0)
    }

    fn cdf(&self, k: u64) -> f64 {
        let end = ((k as usize) + 1).min(self.probs.len());
        self.probs[..end].iter().sum::<f64>().min(1.0)
    }

    fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "Categorical::quantile: p in [0,1], got {p}");
        let mut acc = 0.0;
        for (i, &q) in self.probs.iter().enumerate() {
            acc += q;
            if acc >= p - 1e-15 {
                return i as u64;
            }
        }
        (self.probs.len() - 1) as u64
    }

    fn mean(&self) -> f64 {
        self.probs.iter().enumerate().map(|(i, &p)| i as f64 * p).sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.probs.iter().enumerate().map(|(i, &p)| (i as f64 - m).powi(2) * p).sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.sample_index(rng) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_probabilities() {
        assert!(Categorical::new(vec![]).is_err());
        assert!(Categorical::new(vec![0.5, 0.6]).is_err());
        assert!(Categorical::new(vec![-0.1, 1.1]).is_err());
        assert!(Categorical::from_weights(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn from_weights_normalizes() {
        let c = Categorical::from_weights(&[2.0, 6.0, 2.0]).unwrap();
        assert!((c.pmf(1) - 0.6).abs() < 1e-15);
    }

    #[test]
    fn paper_ground_truth_prior() {
        let gt = Categorical::new(vec![0.6, 0.3, 0.1]).unwrap();
        assert!((gt.cdf(1) - 0.9).abs() < 1e-15);
        assert_eq!(gt.quantile(0.95), 2);
    }

    #[test]
    fn alias_sampling_matches_pmf() {
        let c = Categorical::new(vec![0.1, 0.2, 0.3, 0.25, 0.15]).unwrap();
        let mut rng = testutil::rng(17);
        let n = 500_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[c.sample_index(&mut rng)] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / n as f64;
            let p = c.pmf(i as u64);
            let se = (p * (1.0 - p) / n as f64).sqrt();
            assert!((freq - p).abs() < 5.0 * se, "i={i} freq={freq} p={p}");
        }
    }

    #[test]
    fn alias_handles_degenerate_mass() {
        let c = Categorical::new(vec![1.0, 0.0, 0.0]).unwrap();
        let mut rng = testutil::rng(3);
        for _ in 0..100 {
            assert_eq!(c.sample_index(&mut rng), 0);
        }
    }

    #[test]
    fn entropy_uniform_is_ln_k() {
        let c = Categorical::new(vec![0.25; 4]).unwrap();
        assert!((c.entropy() - 4.0f64.ln()).abs() < 1e-12);
    }
}
