//! Workspace-level symbol table: the public items, module declarations
//! and re-exports of every crate, built from all files at once.
//!
//! Per-file rules can only see one file; this pass is what lets the
//! gate reason *across* files — most importantly, whether a `pub` item
//! buried in a privately-declared module is actually reachable from its
//! crate root (and therefore from the `sysunc::` facade), or is dead
//! public API whose existence callers can never observe.
//!
//! The table is built from the token streams by shallow parsing: only
//! brace-depth-0 declarations count (methods in `impl` blocks are not
//! items), `#[cfg(test)]` extents are excluded, and `pub use` trees are
//! walked for their source paths. Where module structure is ambiguous
//! (inline modules, glob re-exports) the table over-approximates
//! *reachability*, never violations — a lint must not accuse reachable
//! code.

use std::collections::HashSet;
use std::path::Component;

use crate::cursor::Cursor;
use crate::lexer::TokenKind;
use crate::{FileKind, SourceFile};

/// One `pub` item declared at the top level of a module file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item keyword: `fn`, `struct`, `enum`, `trait`, `const`,
    /// `static`, `type`, `union`.
    pub kind: &'static str,
    /// The declared name.
    pub name: String,
    /// 1-based line of the `pub` keyword.
    pub line: usize,
}

/// One `pub use` (or restricted-visibility `use`) re-export: the source
/// path as written, one entry per leaf of the use tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reexport {
    /// Path segments, e.g. `["error", "ProbError"]` or `["sysunc_prob"]`.
    pub path: Vec<String>,
    /// True for `path::*`.
    pub glob: bool,
}

/// The declarations of one module file.
#[derive(Debug, Clone)]
pub struct ModuleSymbols {
    /// Index of the file in the workspace file list.
    pub file_idx: usize,
    /// Module path from the crate root; empty for `lib.rs`.
    pub path: Vec<String>,
    /// Top-level `pub` items (unrestricted visibility only).
    pub items: Vec<PubItem>,
    /// Submodules declared `pub mod` here.
    pub pub_mods: Vec<String>,
    /// Re-export leaves declared here.
    pub reexports: Vec<Reexport>,
}

/// The symbol table of one crate under `crates/`.
#[derive(Debug, Clone)]
pub struct CrateSymbols {
    /// Directory name under `crates/`.
    pub name: String,
    /// One entry per module file.
    pub modules: Vec<ModuleSymbols>,
}

impl CrateSymbols {
    /// The crate-root module (`lib.rs`), if present.
    pub fn root(&self) -> Option<&ModuleSymbols> {
        self.modules.iter().find(|m| m.path.is_empty())
    }

    /// The module with exactly this path, if its file exists.
    pub fn module(&self, path: &[String]) -> Option<&ModuleSymbols> {
        self.modules.iter().find(|m| m.path == path)
    }

    /// True when every segment of `path` is declared `pub mod` by its
    /// parent module, so the module's items are reachable by full path.
    pub fn is_module_public(&self, path: &[String]) -> bool {
        if path.is_empty() {
            return true;
        }
        for k in 0..path.len() {
            let Some(parent) = self.module(&path[..k]) else { return false };
            if !parent.pub_mods.contains(&path[k]) {
                return false;
            }
        }
        true
    }

    /// The last path segment of every non-glob re-export anywhere in
    /// the crate (over-approximate: a name re-exported from any module
    /// counts as reachable).
    pub fn reexported_names(&self) -> HashSet<&str> {
        self.modules
            .iter()
            .flat_map(|m| m.reexports.iter())
            .filter(|r| !r.glob)
            .filter_map(|r| r.path.last().map(String::as_str))
            .collect()
    }

    /// Module names covered by a glob re-export (`pub use m::*`),
    /// matched on the glob path's last segment.
    pub fn glob_modules(&self) -> HashSet<&str> {
        self.modules
            .iter()
            .flat_map(|m| m.reexports.iter())
            .filter(|r| r.glob)
            .filter_map(|r| r.path.last().map(String::as_str))
            .collect()
    }
}

/// The full cross-file view handed to [`crate::WorkspaceLint`]s.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// All scanned files, in report order.
    pub files: &'a [SourceFile],
    /// Symbol tables for every crate under `crates/`.
    pub crates: Vec<CrateSymbols>,
}

impl<'a> Workspace<'a> {
    /// Builds the symbol table for all `crates/*/src` library files.
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut crates: Vec<CrateSymbols> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            if file.kind != FileKind::RustLibrary {
                continue;
            }
            let Some((crate_name, module_path)) = crate_and_module(file) else { continue };
            let (items, pub_mods, reexports) = parse_module(file);
            let module =
                ModuleSymbols { file_idx, path: module_path, items, pub_mods, reexports };
            match crates.iter_mut().find(|c| c.name == crate_name) {
                Some(c) => c.modules.push(module),
                None => crates.push(CrateSymbols { name: crate_name, modules: vec![module] }),
            }
        }
        Workspace { files, crates }
    }

    /// The crate with this directory name, if present.
    pub fn crate_named(&self, name: &str) -> Option<&CrateSymbols> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Splits `crates/<name>/src/<rel>.rs` into the crate name and module
/// path (`lib.rs` → `[]`, `a/mod.rs` → `["a"]`, `a/b.rs` → `["a","b"]`).
/// Returns `None` for files outside `crates/*/src` and for binaries.
fn crate_and_module(file: &SourceFile) -> Option<(String, Vec<String>)> {
    let comps: Vec<&str> = file
        .path
        .components()
        .filter_map(|c| match c {
            Component::Normal(os) => os.to_str(),
            _ => None,
        })
        .collect();
    if comps.len() < 4 || comps[0] != "crates" || comps[2] != "src" {
        return None;
    }
    let crate_name = comps[1].to_string();
    let rel = &comps[3..];
    let last = rel.last()?;
    if *last == "main.rs" {
        return None; // binary root, not part of the library API
    }
    let mut path: Vec<String> = rel[..rel.len() - 1].iter().map(|s| s.to_string()).collect();
    match last.strip_suffix(".rs") {
        Some("lib") if path.is_empty() => {}
        Some("mod") => {}
        Some(stem) => path.push(stem.to_string()),
        None => return None,
    }
    Some((crate_name, path))
}

/// Item keywords that declare a named public symbol.
const ITEM_KINDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "union"];

/// Shallow-parses one file's top-level declarations.
fn parse_module(file: &SourceFile) -> (Vec<PubItem>, Vec<String>, Vec<Reexport>) {
    let mut items = Vec::new();
    let mut pub_mods = Vec::new();
    let mut reexports = Vec::new();
    let src = &file.content;
    let tokens = file.tokens();
    let mut depth: i64 = 0;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        if depth == 0
            && t.kind == TokenKind::Ident
            && t.text(src) == "pub"
            && !file.in_test_block(t.line)
        {
            let mut c = file.cursor();
            c.seek(i + 1);
            let decl_line = t.line;
            // Restricted visibility (`pub(crate)`, `pub(super)`, …)
            // does not export; its declarations are recorded only where
            // over-approximating reachability is safe.
            let mut restricted = false;
            c.skip_comments();
            if c.at_punct("(") {
                restricted = true;
                if c.skip_balanced("(", ")").is_none() {
                    break;
                }
            }
            if let Some(next) = parse_decl(
                file,
                &mut c,
                decl_line,
                restricted,
                &mut items,
                &mut pub_mods,
                &mut reexports,
            ) {
                i = next;
                continue;
            }
        }
        i += 1;
    }
    (items, pub_mods, reexports)
}

/// Parses the declaration after a `pub` marker; returns the token index
/// the outer scan should resume at (never inside a consumed use tree,
/// so brace-depth tracking stays balanced).
fn parse_decl(
    file: &SourceFile,
    c: &mut Cursor<'_>,
    line: usize,
    restricted: bool,
    items: &mut Vec<PubItem>,
    pub_mods: &mut Vec<String>,
    reexports: &mut Vec<Reexport>,
) -> Option<usize> {
    // Modifiers before the item keyword.
    let kind: &'static str = loop {
        c.skip_comments();
        let word = c.eat_any_ident()?;
        match word {
            "unsafe" | "async" | "default" => continue,
            "extern" => {
                // Optional ABI string.
                c.skip_comments();
                if matches!(
                    c.peek().map(|t| t.kind),
                    Some(TokenKind::Str | TokenKind::RawStr)
                ) {
                    c.bump();
                }
                continue;
            }
            "const" => {
                // `pub const fn f` (modifier) vs `pub const N: T` (item).
                c.skip_comments();
                if c.at_ident("fn") {
                    c.bump();
                    break "fn";
                }
                break "const";
            }
            "static" => {
                c.skip_comments();
                if c.at_ident("mut") {
                    c.bump();
                }
                break "static";
            }
            "mod" => {
                let name = c.eat_any_ident()?;
                if !restricted {
                    pub_mods.push(name.to_string());
                }
                return Some(c.pos());
            }
            "use" => {
                parse_use_tree(file, c, &mut Vec::new(), reexports);
                return Some(c.pos());
            }
            w if ITEM_KINDS.contains(&w) => break ITEM_KINDS
                .iter()
                .find(|k| **k == w)
                .copied()
                .unwrap_or("fn"),
            _ => return None, // not a declaration we model (e.g. `pub impl`? keep scanning)
        }
    };
    let name = c.eat_any_ident()?;
    if !restricted {
        items.push(PubItem { kind, name: name.to_string(), line });
    }
    Some(c.pos())
}

/// Parses one use tree, pushing a [`Reexport`] per leaf. `prefix` is
/// the path accumulated so far. Consumes through the terminating `;`
/// (or the end of a `{…}` group leaf).
fn parse_use_tree(
    file: &SourceFile,
    c: &mut Cursor<'_>,
    prefix: &mut Vec<String>,
    out: &mut Vec<Reexport>,
) {
    let mut path = prefix.clone();
    loop {
        c.skip_comments();
        if c.at_punct("*") {
            c.bump();
            out.push(Reexport { path: path.clone(), glob: true });
            break;
        }
        if c.at_punct("{") {
            c.bump();
            loop {
                c.skip_comments();
                if c.at_punct("}") {
                    c.bump();
                    break;
                }
                parse_use_tree(file, c, &mut path.clone(), out);
                c.skip_comments();
                if c.at_punct(",") {
                    c.bump();
                }
                if c.peek().is_none() {
                    break;
                }
            }
            break;
        }
        let Some(seg) = c.eat_any_ident() else { break };
        if seg == "as" {
            // Alias: the source leaf is already on `path`; the alias
            // name itself is irrelevant for source reachability.
            c.eat_any_ident();
            out.push(Reexport { path: path.clone(), glob: false });
            path.clear(); // emitted
            break;
        }
        // `self` leaf inside a group (`use a::{self, b}`) re-exports
        // the path accumulated so far.
        if seg == "self" && !path.is_empty() {
            out.push(Reexport { path: path.clone(), glob: false });
            path.clear();
            break;
        }
        path.push(seg.to_string());
        c.skip_comments();
        if c.at_punct("::") {
            c.bump();
            continue;
        }
        // End of a simple path leaf.
        out.push(Reexport { path: path.clone(), glob: false });
        path.clear();
        break;
    }
    // Consume a terminating `;` if we're at one (top-level tree only).
    c.skip_comments();
    if c.at_punct(";") {
        c.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn ws_files(specs: &[(&str, &str)]) -> Vec<SourceFile> {
        specs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect()
    }

    #[test]
    fn module_paths_are_derived_from_file_layout() {
        let files = ws_files(&[
            ("crates/x/src/lib.rs", "pub mod a;\nmod b;\n"),
            ("crates/x/src/a.rs", "pub fn f() {}\n"),
            ("crates/x/src/b.rs", "pub fn g() {}\n"),
            ("crates/x/src/c/mod.rs", "pub struct S;\n"),
            ("crates/x/src/c/d.rs", "pub enum E { X }\n"),
        ]);
        let ws = Workspace::build(&files);
        let x = ws.crate_named("x").expect("crate x");
        assert_eq!(x.modules.len(), 5);
        assert_eq!(x.module(&["a".into()]).expect("a").items[0].name, "f");
        assert_eq!(x.module(&["c".into()]).expect("c").items[0].name, "S");
        assert_eq!(
            x.module(&["c".into(), "d".into()]).expect("c::d").items[0].name,
            "E"
        );
        assert!(x.is_module_public(&["a".into()]));
        assert!(!x.is_module_public(&["b".into()]));
        assert!(!x.is_module_public(&["c".into(), "d".into()]), "c is undeclared");
    }

    #[test]
    fn top_level_items_only_and_test_blocks_excluded() {
        let files = ws_files(&[(
            "crates/x/src/m.rs",
            "pub struct S;\n\
             impl S {\n    pub fn method(&self) {}\n}\n\
             pub(crate) fn internal() {}\n\
             #[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n",
        )]);
        let ws = Workspace::build(&files);
        let m = &ws.crate_named("x").expect("x").modules[0];
        let names: Vec<&str> = m.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["S"], "methods, restricted items and test helpers excluded");
    }

    #[test]
    fn use_trees_collect_leaves_groups_globs_and_aliases() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub use error::{XError, Result};\n\
             pub use deep::nested::Item;\n\
             pub use wild::*;\n\
             pub use sysunc_prob as prob;\n",
        )]);
        let ws = Workspace::build(&files);
        let root = ws.crate_named("x").expect("x").root().expect("root");
        let paths: Vec<(Vec<&str>, bool)> = root
            .reexports
            .iter()
            .map(|r| (r.path.iter().map(String::as_str).collect(), r.glob))
            .collect();
        assert!(paths.contains(&(vec!["error", "XError"], false)));
        assert!(paths.contains(&(vec!["error", "Result"], false)));
        assert!(paths.contains(&(vec!["deep", "nested", "Item"], false)));
        assert!(paths.contains(&(vec!["wild"], true)));
        assert!(paths.contains(&(vec!["sysunc_prob"], false)));
        let names = ws.crate_named("x").expect("x").reexported_names();
        assert!(names.contains("XError"));
        assert!(names.contains("Item"));
        assert!(ws.crate_named("x").expect("x").glob_modules().contains("wild"));
    }

    #[test]
    fn const_fn_and_const_item_are_distinguished() {
        let files = ws_files(&[(
            "crates/x/src/m.rs",
            "pub const fn fast() {}\npub const LIMIT: usize = 3;\npub static mut G: u8 = 0;\n",
        )]);
        let ws = Workspace::build(&files);
        let m = &ws.crate_named("x").expect("x").modules[0];
        let kinds: Vec<(&str, &str)> =
            m.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(kinds, vec![("fn", "fast"), ("const", "LIMIT"), ("static", "G")]);
    }

    #[test]
    fn files_outside_crates_and_binaries_are_skipped() {
        let files = vec![
            SourceFile::new("src/lib.rs", "pub fn root() {}\n", FileKind::RustLibrary),
            SourceFile::new("crates/x/src/main.rs", "fn main() {}\n", FileKind::RustLibrary),
            SourceFile::new("tests/t.rs", "pub fn t() {}\n", FileKind::RustTest),
        ];
        let ws = Workspace::build(&files);
        assert!(ws.crates.is_empty());
    }
}
