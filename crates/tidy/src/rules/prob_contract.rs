//! Rule `prob-contract`: a public library function whose name says it
//! deals in probability-like quantities (`prob`, `probability`,
//! `belief`, `plausibility`, `mass`, `cdf`) must state its range
//! contract — either a `debug_assert!` range check in the body or a
//! `/// Range:` line in its doc comment.
//!
//! A probability that silently leaves `[0, 1]` is a wrong *model*
//! masquerading as data; forcing the contract to be written down turns
//! that latent epistemic uncertainty into a checked (or at least
//! documented) invariant at the API boundary.

use crate::lexer::TokenKind;
use crate::rules::doc_comments_above;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct ProbContract;

/// Name fragments that mark a function as probability-valued.
const KEYWORDS: &[&str] = &["prob", "belief", "plausibility", "mass", "cdf"];

/// If the tokens at `i` start a `pub fn` signature (modifiers allowed),
/// returns the function name and the token index just past it.
fn pub_fn_at(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let mut c = file.cursor();
    c.seek(i);
    if !c.eat_ident("pub") {
        return None;
    }
    c.skip_comments();
    if c.at_punct("(") {
        // Restricted visibility is not public API.
        return None;
    }
    loop {
        match c.eat_any_ident()? {
            "const" | "unsafe" | "async" => continue,
            "extern" => {
                c.skip_comments();
                if matches!(c.peek().map(|t| t.kind), Some(TokenKind::Str | TokenKind::RawStr)) {
                    c.bump();
                }
                continue;
            }
            "fn" => break,
            _ => return None,
        }
    }
    let name = c.eat_any_ident()?;
    Some((name.to_string(), c.pos()))
}

/// True when the function body after the signature (first `{` before
/// any `;`) contains a `debug_assert` family call. A bodyless trait
/// signature has no body to check and passes.
fn body_has_debug_assert(file: &SourceFile, after_name: usize) -> bool {
    let tokens = file.tokens();
    let mut c = file.cursor();
    c.seek(after_name);
    let open = loop {
        match c.peek() {
            Some(t) if t.kind == TokenKind::Punct => {
                let text = file.text(t);
                if text == "{" {
                    break c.pos();
                }
                if text == ";" {
                    return true; // no body: nothing to violate
                }
                c.bump();
            }
            Some(_) => {
                c.bump();
            }
            None => return false,
        }
    };
    let end = c.skip_balanced("{", "}").unwrap_or(tokens.len());
    tokens[open..end].iter().any(|t| {
        t.kind == TokenKind::Ident && file.text(t).starts_with("debug_assert")
    })
}

impl Lint for ProbContract {
    fn name(&self) -> &'static str {
        "prob-contract"
    }

    fn explain(&self) -> &'static str {
        "A public function whose name marks it probability-valued (`prob`, \
         `belief`, `plausibility`, `mass`, `cdf`) must state its range \
         contract: either a `debug_assert!` range check in the body or a \
         `/// Range:` line in its docs. A probability that silently leaves \
         [0, 1] is a wrong model masquerading as data; writing the contract \
         down turns latent epistemic uncertainty into a checked (or at least \
         documented) invariant at the API boundary."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let tokens = file.tokens();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || file.text(t) != "pub"
                || file.in_test_block(t.line)
            {
                continue;
            }
            let Some((name, after)) = pub_fn_at(file, i) else { continue };
            if !is_probability_name(&name.to_lowercase()) {
                continue;
            }
            let documented =
                doc_comments_above(file, i).iter().any(|d| d.contains("Range:"));
            if documented || body_has_debug_assert(file, after) {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: t.line,
                rule: self.name(),
                resolution: "token",
                message: format!(
                    "probability-valued `pub fn {name}` states no range contract; \
                     add a `debug_assert!` range check or a `/// Range:` doc line"
                ),
            });
        }
    }
}

/// True when the (lowercased) name carries a probability keyword.
/// `probe`/`probing` are exempt: health probes deal in liveness, not
/// probabilities, and would otherwise false-positive on `prob`.
fn is_probability_name(lower: &str) -> bool {
    KEYWORDS.iter().any(|k| {
        let mut from = 0;
        while let Some(pos) = lower[from..].find(k) {
            let at = from + pos;
            let rest = &lower[at + k.len()..];
            let probe_like =
                *k == "prob" && (rest.starts_with('e') || rest.starts_with("ing"));
            if !probe_like {
                return true;
            }
            from = at + k.len();
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        ProbContract.check(&file, &mut out);
        out
    }

    #[test]
    fn probe_names_are_not_probabilities() {
        let src = "\
pub fn probe_failed(&self) -> u64 {
    self.failures
}
pub fn probing_interval(&self) -> u64 {
    self.interval
}
";
        let out = run(src);
        assert!(out.is_empty(), "health probes are liveness, not probability: {out:?}");
    }

    #[test]
    fn undocumented_probability_fn_fires() {
        let bad = "\
pub fn failure_probability(&self) -> f64 {
    self.p
}
";
        let out = run(bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("failure_probability"));
    }

    #[test]
    fn debug_assert_in_body_satisfies_the_contract() {
        let good = "\
pub fn belief(&self, set: u64) -> f64 {
    let b = self.sum(set);
    debug_assert!((0.0..=1.0).contains(&b));
    b
}
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn range_doc_line_satisfies_the_contract() {
        let good = "\
/// Cumulative distribution at `x`.
///
/// Range: `[0, 1]`, monotone in `x`.
pub fn cdf(&self, x: f64) -> f64 {
    self.raw(x)
}
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn range_doc_survives_interleaved_attributes() {
        let good = "\
/// Range: `[0, 1]`.
#[inline]
pub fn prob(&self) -> f64 { self.p }
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn unrelated_and_private_fns_are_ignored() {
        let src = "\
pub fn mean(&self) -> f64 { self.m }
fn mass_private(&self) -> f64 { self.m }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn single_line_body_with_debug_assert_passes() {
        let good = "pub fn prob(&self) -> f64 { debug_assert!(self.p <= 1.0); self.p }\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn a_string_mentioning_pub_fn_cdf_does_not_fire() {
        // The signature lives in a string literal: one token, not code.
        let src = "const SNIPPET: &str = \"pub fn cdf(&self) -> f64 { self.raw() }\";\n";
        assert!(run(src).is_empty());
    }
}
