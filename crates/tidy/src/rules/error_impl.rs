//! Rule `error-impl`: every public enum declared in a file named
//! `error.rs` must implement both `Display` and `std::error::Error`.
//!
//! Error types that cannot be displayed or boxed as `dyn Error` leak a
//! half-finished failure vocabulary to callers; this rule keeps every
//! crate's error enum a first-class citizen of Rust's error-handling
//! ecosystem.

use crate::lexer::TokenKind;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct ErrorImpl;

/// Collects `(name, line)` for every `pub enum` declared in the file.
fn pub_enums(file: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, t) in file.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident || file.text(t) != "pub" || file.in_test_block(t.line) {
            continue;
        }
        let mut c = file.cursor();
        c.seek(i + 1);
        if !c.eat_ident("enum") {
            continue;
        }
        if let Some(name) = c.eat_any_ident() {
            out.push((name.to_string(), t.line));
        }
    }
    out
}

/// True when the file contains `impl … <trait_leaf> for <name>` — i.e.
/// an identifier token `trait_leaf` followed by `for` followed by
/// `name` (path prefixes like `std::fmt::` are separate tokens and
/// don't disturb the triple).
fn has_impl_for(file: &SourceFile, trait_leaf: &str, name: &str) -> bool {
    let tokens = file.tokens();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.text(t) != trait_leaf {
            continue;
        }
        let mut c = file.cursor();
        c.seek(i + 1);
        if c.eat_ident("for") && c.eat_ident(name) {
            return true;
        }
    }
    false
}

impl Lint for ErrorImpl {
    fn name(&self) -> &'static str {
        "error-impl"
    }

    fn explain(&self) -> &'static str {
        "Every public enum declared in a file named `error.rs` must implement \
         both `Display` and `std::error::Error`. An error type that cannot be \
         displayed or boxed as `dyn Error` leaks a half-finished failure \
         vocabulary to callers; this keeps every crate's error enum a \
         first-class citizen of Rust's error-handling ecosystem."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.file_name().map(|n| n != "error.rs").unwrap_or(true) {
            return;
        }
        for (name, line) in pub_enums(file) {
            if !has_impl_for(file, "Display", &name) {
                out.push(Violation {
                    file: file.path.clone(),
                    line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!("error enum `{name}` does not implement `Display`"),
                });
            }
            if !has_impl_for(file, "Error", &name) {
                out.push(Violation {
                    file: file.path.clone(),
                    line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!("error enum `{name}` does not implement `std::error::Error`"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src, FileKind::RustLibrary);
        let mut out = Vec::new();
        ErrorImpl.check(&file, &mut out);
        out
    }

    #[test]
    fn enum_with_both_impls_passes() {
        let good = "\
pub enum ProbError { Bad }
impl std::fmt::Display for ProbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
impl std::error::Error for ProbError {}
";
        assert!(run("crates/x/src/error.rs", good).is_empty());
    }

    #[test]
    fn missing_impls_fire_one_violation_each() {
        let out = run("crates/x/src/error.rs", "pub enum ProbError { Bad }\n");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("Display"));
        assert!(out[1].message.contains("std::error::Error"));
    }

    #[test]
    fn missing_only_error_impl_fires_once() {
        let partial = "\
pub enum E { X }
impl core::fmt::Display for E {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result { Ok(()) }
}
";
        let out = run("crates/x/src/error.rs", partial);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("std::error::Error"));
    }

    #[test]
    fn impls_mentioned_in_comments_do_not_satisfy() {
        // A comment saying "Display for E" is prose, not an impl.
        let src = "pub enum E { X }\n// impl Display for E lives elsewhere\n\
                   // impl Error for E lives elsewhere\n";
        assert_eq!(run("crates/x/src/error.rs", src).len(), 2);
    }

    #[test]
    fn files_not_named_error_rs_are_ignored() {
        assert!(run("crates/x/src/lib.rs", "pub enum E { X }\n").is_empty());
    }
}
