//! The full perception-chain lifecycle (paper Figs. 3-4, Secs. IV-V):
//! simulate the open-context world, measure the classifier's epistemic
//! convergence, tolerate with redundant diverse fusion, remove with field
//! observation, and forecast the residual ontological risk.
//!
//! Run with `cargo run --example perception_chain`.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::perception::{
    ClassifierModel, FieldCampaign, FusedVerdict, FusionSystem, ReleaseForecast, Truth,
    WorldModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2020);
    let world = WorldModel::paper_example()?;
    let camera = ClassifierModel::paper_camera()?;

    // ------------------------------------------------------------------
    // Epistemic removal at design time: the empirical confusion matrix
    // converges to the classifier's true behaviour (Sec. III-B).
    // ------------------------------------------------------------------
    println!("== Epistemic convergence of the confusion estimate ==");
    for n in [100usize, 1_000, 10_000] {
        let est = camera.empirical_confusion(n, &mut rng);
        let err: f64 = est
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(|(j, &p)| (p - camera.likelihood(i, j)).abs())
                    .sum::<f64>()
            })
            .sum();
        println!("  {n:>6} observations/class -> total L1 error {err:.4}");
    }

    // ------------------------------------------------------------------
    // Tolerance: single camera vs redundant diverse camera+radar.
    // ------------------------------------------------------------------
    println!("\n== Tolerance: redundant diverse fusion ==");
    let radar = ClassifierModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![vec![0.95, 0.0, 0.05], vec![0.0, 0.8, 0.2]],
        vec![0.05, 0.05, 0.9],
    )?;
    let fusion = FusionSystem::new(vec![camera.clone(), radar], vec![0.6, 0.3, 0.1], vec![0.9, 0.9])?;
    let trials = 50_000;
    let mut single_hazard = 0u64;
    let mut fused_hazard = 0u64;
    let mut vote_unknown_on_novel = 0u64;
    let mut novel_trials = 0u64;
    for _ in 0..trials {
        let truth = world.sample(&mut rng);
        // Hazard: a pedestrian perceived as a car.
        if truth == Truth::Known(1) {
            if camera.classify(truth, &mut rng).label == 0 {
                single_hazard += 1;
            }
            let labels = fusion.observe(truth, &mut rng);
            if fusion.fuse_bayes(&labels)?.0 == FusedVerdict::Known(0) {
                fused_hazard += 1;
            }
        }
        if truth.is_novel() {
            novel_trials += 1;
            let labels = fusion.observe(truth, &mut rng);
            if fusion.fuse_vote(&labels)? == FusedVerdict::Unknown {
                vote_unknown_on_novel += 1;
            }
        }
    }
    println!("  pedestrian-as-car hazards: single camera {single_hazard}, Bayes fusion {fused_hazard}");
    println!(
        "  novel objects flagged unknown by agreement fusion: {:.1}%",
        100.0 * vote_unknown_on_novel as f64 / novel_trials.max(1) as f64
    );

    // ------------------------------------------------------------------
    // Removal in use + forecasting: field campaign and release decision.
    // ------------------------------------------------------------------
    println!("\n== Field observation and residual-risk forecast ==");
    let mut campaign = FieldCampaign::new(2);
    for exposure in [1_000usize, 9_000, 90_000] {
        campaign.observe_world(&world, exposure, &mut rng);
        let forecast = ReleaseForecast::from_campaign(&campaign);
        println!(
            "  after {:>6} encounters: {} distinct novel classes, residual novelty rate {:.5}",
            campaign.encounters(),
            campaign.distinct_novel(),
            forecast.residual_novelty_rate
        );
    }
    let forecast = ReleaseForecast::from_campaign(&campaign);
    let target = 1e-3;
    println!(
        "  release at residual rate <= {target}: {} (need ~{} more encounters)",
        forecast.ready_for_release(target),
        forecast.encounters_to_target(target)?
    );
    Ok(())
}
