//! E10 — Sec. IV forecasting: estimation of residual (ontological)
//! uncertainty from field exposure. Compares the Good–Turing missing-mass
//! estimate with the world's true unseen probability over a growing fleet
//! campaign, derives the release-decision curve, and shows the
//! heavy-tail ceiling: each order of magnitude of target rate costs about
//! an order of magnitude of exposure.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use std::collections::HashSet;
use sysunc::perception::{FieldCampaign, ReleaseForecast, Truth, WorldModel};
use sysunc_bench::{header, section};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E10", "Sec. IV — forecasting residual ontological uncertainty");
    // The paper's priors with a much deeper latent tail (200k classes,
    // Zipf 1.3) so a million encounters cannot exhaust the unknown — the
    // open-context assumption of Sec. III-C.
    let world = WorldModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![0.6, 0.3],
        0.1,
        200_000,
        1.3,
    )?;
    let mut rng = StdRng::seed_from_u64(10);
    let mut campaign = FieldCampaign::new(2);
    let mut seen: HashSet<usize> = HashSet::new();

    section("Good-Turing estimate vs true unseen mass");
    println!(
        "  {:>9} {:>10} {:>14} {:>14} {:>9}",
        "exposure", "distinct", "GT estimate", "true unseen", "ratio"
    );
    let mut exposure = 0usize;
    for target in [1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000] {
        while exposure < target {
            let truth = world.sample(&mut rng);
            if let Truth::Novel(k) = truth {
                seen.insert(k);
            }
            campaign.record(truth);
            exposure += 1;
        }
        let gt = campaign.good_turing_missing_mass();
        let true_unseen: f64 = (0..200_000)
            .filter(|k| !seen.contains(k))
            .map(|k| world.novel_class_probability(k))
            .sum();
        println!(
            "  {exposure:>9} {:>10} {gt:>14.6} {true_unseen:>14.6} {:>9.2}",
            campaign.distinct_novel(),
            gt / true_unseen.max(1e-12)
        );
    }

    section("Chao1 latent richness estimate");
    println!(
        "  distinct seen {} / Chao1 estimate of total novel classes {:.0} / true 200000",
        campaign.distinct_novel(),
        campaign.chao1_richness()
    );

    section("release-decision curve (target residual rate -> exposure needed)");
    let forecast = ReleaseForecast::from_campaign(&campaign);
    println!(
        "  current exposure {} with residual rate {:.2e}",
        forecast.exposure, forecast.residual_novelty_rate
    );
    println!("  {:>14} {:>16} {:>10}", "target rate", "extra exposure", "ready?");
    for target in [1e-3, 3e-4, 1e-4, 3e-5, 1e-5] {
        println!(
            "  {target:>14.0e} {:>16} {:>10}",
            forecast.encounters_to_target(target)?,
            forecast.ready_for_release(target)
        );
    }
    println!("\n  Expected shape: the GT/true ratio stays near 1 across three orders");
    println!("  of magnitude of exposure, and the release curve shows the");
    println!("  heavy-tail ceiling — residual ontological risk falls only ~1/N,");
    println!("  so each 10x tightening of the target costs ~10x the fleet miles");
    println!("  (paper references [30][31]).");
    Ok(())
}
