//! Tier-1 gate: the workspace must pass its own static-analysis lint,
//! `sysunc-tidy`, with zero standing violations. The first test runs
//! the real binary the way CI does, so a regression in either the code
//! base or the lint itself fails the ordinary test suite; the rest
//! exercise the library in-process against the real tree — the JSON
//! findings round-trip through the workspace's own reader, parallel
//! and serial runs agree byte-for-byte, and the cross-file
//! `pub-reexport` rule demonstrably fires when a real re-export is
//! knocked out.

use std::path::Path;
use std::process::Command;

use sysunc::prob::json;
use sysunc_tidy::{check_files, check_files_serial, walk, FileKind, SourceFile};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_tidy(extra: &[&str]) -> (bool, String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--"])
        .args(extra)
        .arg(root())
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn workspace_passes_sysunc_tidy_with_zero_violations() {
    let (ok, stdout, stderr) = run_tidy(&[]);
    assert!(ok, "sysunc-tidy found violations:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("0 violation(s)"),
        "expected a clean summary, got:\n{stdout}"
    );
    // The gate must actually have scanned the tree, not vacuously passed.
    let scanned: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("sysunc-tidy: scanned ")?.split(' ').next()?.parse().ok())
        .expect("summary line present");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
}

#[test]
fn json_findings_parse_with_the_in_tree_reader() {
    let (ok, stdout, stderr) = run_tidy(&["--json"]);
    assert!(ok, "sysunc-tidy --json failed:\n{stdout}\n{stderr}");
    let doc = json::parse(stdout.trim()).expect("findings must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("sysunc-tidy/1"),
        "schema id missing or wrong"
    );
    assert_eq!(doc.get("clean").and_then(json::Json::as_bool), Some(true));
    let scanned =
        doc.get("files_scanned").and_then(json::Json::as_usize).expect("files_scanned");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
    assert_eq!(
        doc.get("violations").and_then(json::Json::as_arr).map(<[json::Json]>::len),
        Some(0)
    );
    // Allowed findings carry the full file/line/rule/message shape.
    let allowed = doc.get("allowed").and_then(json::Json::as_arr).expect("allowed array");
    assert!(!allowed.is_empty(), "the tree has acknowledged exceptions");
    for finding in allowed {
        assert!(finding.get("file").and_then(json::Json::as_str).is_some());
        assert!(finding.get("line").and_then(json::Json::as_u64).is_some());
        assert!(finding.get("rule").and_then(json::Json::as_str).is_some());
        assert!(finding.get("message").and_then(json::Json::as_str).is_some());
    }
}

#[test]
fn parallel_and_serial_runs_agree_on_the_real_tree() {
    let files = walk::collect(root()).expect("workspace walks");
    let par = check_files(&files);
    let ser = check_files_serial(&files);
    assert_eq!(par, ser, "parallel checking must be deterministic");
}

#[test]
fn pub_reexport_fires_when_a_real_reexport_is_knocked_out() {
    // The live tree keeps every public item reachable, so the rule has
    // nothing to flag; prove it guards that state by removing one real
    // re-export in memory and checking the dead API is caught.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let knocked: String = lib
        .content
        .lines()
        .filter(|l| !l.contains("pub use error::"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(knocked, lib.content, "fixture line must exist to knock out");
    *lib = SourceFile::new(lib.path.clone(), knocked, FileKind::RustLibrary);
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "pub-reexport").collect();
    assert!(
        hits.iter().any(|v| v.message.contains("ProbError")),
        "expected `ProbError` to become unreachable, got: {hits:?}"
    );
    assert!(hits.iter().all(|v| v.file == Path::new("crates/prob/src/error.rs")));
}

#[test]
fn former_textual_false_positives_do_not_fire() {
    // Regression fixtures for the line-heuristic gate's false-positive
    // classes: forbidden constructs inside string literals, comparisons
    // in doc comments, braces inside strings around `#[cfg(test)]`.
    let files = vec![
        SourceFile::new(
            "crates/x/src/lib.rs",
            "//! Fixture crate root.\npub mod fixture;\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/x/src/fixture.rs",
            "//! Notes: `x == 0.5` is what the float-eq rule forbids.\n\
             /// Also prose: calling `.unwrap()` panics.\n\
             pub fn shipped() -> &'static str { \"s.unwrap() == 0.5 panic!\" }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 const BRACES: &str = \"}}}\";\n\
                 fn t() { shipped().unwrap(); }\n\
             }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    assert!(
        report.violations.is_empty() && report.allowed.is_empty(),
        "fixture should be clean, got: {:?}",
        report.violations
    );
}
