/root/repo/target/debug/deps/exp_ontological-62851fe90bd02710.d: crates/bench/src/bin/exp_ontological.rs

/root/repo/target/debug/deps/exp_ontological-62851fe90bd02710: crates/bench/src/bin/exp_ontological.rs

crates/bench/src/bin/exp_ontological.rs:
