/root/repo/target/release/deps/exp_propagation-50892eccac3c4f58.d: crates/bench/src/bin/exp_propagation.rs

/root/repo/target/release/deps/exp_propagation-50892eccac3c4f58: crates/bench/src/bin/exp_propagation.rs

crates/bench/src/bin/exp_propagation.rs:
