//! E1 — Table I + Fig. 4: exact reproduction of the paper's conditional
//! probability table, the implied marginals, and all diagnostic
//! posteriors, cross-checked by likelihood-weighted sampling.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::bayesnet::likelihood_weighting;
use sysunc::casestudy::{
    ground_truth_prior, paper_bayes_net, table1_cpt, GROUND_TRUTH_STATES, PERCEPTION_STATES,
};
use sysunc_bench::{header, prob_vec, section};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E1", "Table I / Fig. 4 — the perception-chain Bayesian network");

    section("Table I, verbatim (rows: ground truth; columns: perception)");
    println!("  {:<14} {:>8} {:>12} {:>16} {:>8}", "", "car", "pedestrian", "car/pedestrian", "none");
    for (state, row) in GROUND_TRUTH_STATES.iter().zip(table1_cpt()) {
        println!(
            "  {:<14} {:>8.3} {:>12.3} {:>16.3} {:>8.3}   (row sum {:.2})",
            state,
            row[0],
            row[1],
            row[2],
            row[3],
            row.iter().sum::<f64>()
        );
    }
    println!("  prior P(ground truth) = {}", prob_vec(&ground_truth_prior()));
    println!("  note: the unknown row sums to 0.9 in the paper; the Bayesian");
    println!("  reading renormalizes it, the evidential reading (E7) sends the");
    println!("  missing 0.1 to Θ.");

    let bn = paper_bayes_net()?;

    section("Prior marginal of the perception node");
    let marginal = bn.marginal("perception", &[])?;
    for (state, p) in PERCEPTION_STATES.iter().zip(&marginal) {
        println!("  P(perception = {state:<15}) = {p:.6}");
    }

    section("Diagnostic posteriors P(ground truth | perception) — exact VE");
    for state in PERCEPTION_STATES {
        let post = bn.marginal("ground_truth", &[("perception", state)])?;
        println!("  given {state:<15} -> {}", prob_vec(&post));
    }

    section("Cross-check: likelihood weighting, 500k samples");
    let gt = bn.node_id("ground_truth").expect("exists");
    let perc = bn.node_id("perception").expect("exists");
    let mut rng = StdRng::seed_from_u64(1);
    for (sid, state) in PERCEPTION_STATES.iter().enumerate() {
        let approx = likelihood_weighting(&bn, gt, &[(perc, sid)], 500_000, &mut rng)?;
        let exact = bn.marginal("ground_truth", &[("perception", state)])?;
        let max_err = approx
            .iter()
            .zip(&exact)
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        println!("  given {state:<15} -> {}  (max |err| vs exact {max_err:.4})", prob_vec(&approx));
    }

    section("Key numbers for EXPERIMENTS.md");
    println!("  P(perception=car)             = {:.6} (paper-implied 0.5415)", marginal[0]);
    println!("  P(perception=pedestrian)      = {:.6} (paper-implied 0.2730)", marginal[1]);
    let post_none = bn.marginal("ground_truth", &[("perception", "none")])?;
    println!("  P(unknown | none)             = {:.6}", post_none[2]);
    Ok(())
}
