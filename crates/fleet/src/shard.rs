//! The shard membership table: where each shard lives, whether it is
//! healthy, and which process generation serves it.
//!
//! Placement is consistent hashing in its simplest honest form: the
//! request's FNV-1a/64 content hash modulo the (fixed) shard count
//! picks the primary shard, so a repeated request always lands on the
//! shard whose LRU cache already holds its answer. When the primary is
//! unhealthy (crashed, mid-restart, failing probes) the router walks
//! forward to the next healthy slot — safe, because every propagation
//! is deterministic by seed: a fallback shard computes the exact same
//! bytes, it just pays a cache miss.
//!
//! Generations make restarts observable: each successful (re)spawn
//! bumps the slot's generation, and the router drops pooled backend
//! connections whose generation is stale instead of writing into a
//! dead socket.

use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};

/// A point-in-time view of one shard slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Where the shard currently listens; `None` before first spawn.
    pub addr: Option<SocketAddr>,
    /// Whether the supervisor currently believes the shard serves.
    pub healthy: bool,
    /// Bumped on every successful (re)spawn.
    pub generation: u64,
}

#[derive(Debug, Default)]
struct Slot {
    addr: Option<SocketAddr>,
    healthy: bool,
    generation: u64,
}

/// Shared shard membership: one slot per shard, independently locked.
#[derive(Debug)]
pub struct ShardTable {
    slots: Vec<Mutex<Slot>>,
}

/// Locks a slot, recovering from poisoning: the table is a plain
/// record, always internally consistent between mutations.
fn lock(m: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShardTable {
    /// A table of `shards` empty, unhealthy slots.
    pub fn new(shards: usize) -> Self {
        Self { slots: (0..shards.max(1)).map(|_| Mutex::new(Slot::default())).collect() }
    }

    /// Number of shard slots (fixed for the table's lifetime).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no slots (never true — see [`ShardTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Installs a freshly spawned shard: address set, healthy, next
    /// generation. Returns the new generation.
    pub fn install(&self, slot: usize, addr: SocketAddr) -> u64 {
        let Some(m) = self.slots.get(slot) else { return 0 };
        let mut s = lock(m);
        s.addr = Some(addr);
        s.healthy = true;
        s.generation += 1;
        s.generation
    }

    /// Marks a shard unhealthy (crashed or failing probes); the router
    /// stops placing new requests on it until reinstalled or marked
    /// healthy again.
    pub fn mark_unhealthy(&self, slot: usize) {
        if let Some(m) = self.slots.get(slot) {
            lock(m).healthy = false;
        }
    }

    /// Marks a shard healthy again (a probe succeeded) without
    /// changing address or generation.
    pub fn mark_healthy(&self, slot: usize) {
        if let Some(m) = self.slots.get(slot) {
            lock(m).healthy = true;
        }
    }

    /// A point-in-time view of one slot.
    pub fn view(&self, slot: usize) -> SlotView {
        match self.slots.get(slot) {
            Some(m) => {
                let s = lock(m);
                SlotView { addr: s.addr, healthy: s.healthy, generation: s.generation }
            }
            None => SlotView { addr: None, healthy: false, generation: 0 },
        }
    }

    /// The primary slot for a content hash: `hash % shards`.
    pub fn place(&self, hash: u64) -> usize {
        (hash % self.slots.len().max(1) as u64) as usize
    }

    /// The slot that should serve a content hash right now: the
    /// primary when healthy, otherwise the next healthy slot in ring
    /// order. `None` when no shard is healthy.
    pub fn healthy_slot_for(&self, hash: u64) -> Option<(usize, SlotView)> {
        let primary = self.place(hash);
        for step in 0..self.slots.len() {
            let slot = (primary + step) % self.slots.len();
            let view = self.view(slot);
            if view.healthy && view.addr.is_some() {
                return Some((slot, view));
            }
        }
        None
    }

    /// Any healthy slot, rotating with `tick` — used for discovery
    /// routes (`/v1/engines`, `/v1/models`) that any shard can answer.
    pub fn any_healthy(&self, tick: u64) -> Option<(usize, SlotView)> {
        self.healthy_slot_for(tick)
    }

    /// Views of every slot, in slot order.
    pub fn views(&self) -> Vec<SlotView> {
        (0..self.slots.len()).map(|i| self.view(i)).collect()
    }

    /// Number of currently healthy shards.
    pub fn healthy_count(&self) -> usize {
        self.views().iter().filter(|v| v.healthy && v.addr.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("addr")
    }

    #[test]
    fn install_bumps_generation_and_marks_healthy() {
        let table = ShardTable::new(2);
        assert_eq!(table.view(0).generation, 0);
        assert!(!table.view(0).healthy);
        assert_eq!(table.install(0, addr(9001)), 1);
        let v = table.view(0);
        assert_eq!(v.addr, Some(addr(9001)));
        assert!(v.healthy);
        assert_eq!(table.install(0, addr(9002)), 2, "restart bumps the generation");
    }

    #[test]
    fn placement_is_stable_modulo_shard_count() {
        let table = ShardTable::new(4);
        for hash in [0u64, 1, 5, 1_000_003, u64::MAX] {
            assert_eq!(table.place(hash), (hash % 4) as usize);
            assert_eq!(table.place(hash), table.place(hash), "deterministic");
        }
    }

    #[test]
    fn unhealthy_primary_falls_through_to_the_next_healthy_slot() {
        let table = ShardTable::new(3);
        table.install(0, addr(9000));
        table.install(1, addr(9001));
        table.install(2, addr(9002));
        // hash 1 → primary slot 1.
        assert_eq!(table.healthy_slot_for(1).map(|(s, _)| s), Some(1));
        table.mark_unhealthy(1);
        assert_eq!(
            table.healthy_slot_for(1).map(|(s, _)| s),
            Some(2),
            "ring walk to the next healthy slot"
        );
        table.mark_unhealthy(2);
        assert_eq!(table.healthy_slot_for(1).map(|(s, _)| s), Some(0), "wraps");
        table.mark_unhealthy(0);
        assert!(table.healthy_slot_for(1).is_none(), "no healthy shard left");
        table.mark_healthy(1);
        assert_eq!(table.healthy_slot_for(1).map(|(s, _)| s), Some(1), "recovers");
    }

    #[test]
    fn healthy_count_tracks_marks_and_installs() {
        let table = ShardTable::new(2);
        assert_eq!(table.healthy_count(), 0);
        table.install(0, addr(9000));
        assert_eq!(table.healthy_count(), 1);
        table.install(1, addr(9001));
        assert_eq!(table.healthy_count(), 2);
        table.mark_unhealthy(0);
        assert_eq!(table.healthy_count(), 1);
    }
}
