/root/repo/target/debug/deps/exp_forecast-98a823cd27b26144.d: crates/bench/src/bin/exp_forecast.rs

/root/repo/target/debug/deps/exp_forecast-98a823cd27b26144: crates/bench/src/bin/exp_forecast.rs

crates/bench/src/bin/exp_forecast.rs:
