//! Rule `panic`: shipped library code must not contain the aborting
//! constructs `.unwrap()`, `.expect(`, `panic!`, `todo!` or
//! `unimplemented!`. Tests, benches, examples and binaries are exempt,
//! as are `#[cfg(test)]` modules inside library files.
//!
//! Rationale: a library that can abort turns a recoverable modeling
//! error into a process death — the caller loses the chance to treat
//! the failure as (epistemic) information. Fallible paths must return
//! `Result`. Where a panic is provably unreachable or intentional, the
//! line takes `// tidy: allow(panic)` so the decision is visible.

use crate::{is_comment_line, test_block_lines, FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct PanicFreedom;

/// The forbidden constructs, as textual needles.
const NEEDLES: &[&str] = &[
    ".unwrap()",      // tidy: allow(panic)
    ".expect(",       // tidy: allow(panic)
    "panic!",         // tidy: allow(panic)
    "todo!",          // tidy: allow(panic)
    "unimplemented!", // tidy: allow(panic)
];

impl Lint for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let in_test = test_block_lines(&file.content);
        for (no, line) in file.lines() {
            if in_test[no - 1] || is_comment_line(line) {
                continue;
            }
            for needle in NEEDLES {
                if line.contains(needle) {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: no,
                        rule: self.name(),
                        message: format!(
                            "found `{}` in library code; return a Result or \
                             acknowledge with `// tidy: allow(panic)`",
                            needle.trim_matches(|c| c == '.' || c == '(')
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        PanicFreedom.check(&file, &mut out);
        out
    }

    #[test]
    fn each_forbidden_construct_fires() {
        let bad = "\
fn a() { x.unwrap(); }
fn b() { x.expect(\"msg\"); }
fn c() { panic!(\"no\"); }
fn d() { todo!() }
fn e() { unimplemented!() }
";
        let out = run(bad);
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cfg_test_modules_and_comments_are_exempt() {
        let src = "\
fn shipped() -> Option<()> { Some(()) }
// a comment may say .unwrap() freely
#[cfg(test)]
mod tests {
    #[test]
    fn t() { shipped().unwrap(); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_files_are_not_checked() {
        let file =
            SourceFile::new("tests/t.rs", "fn t() { x.unwrap(); }", FileKind::RustTest);
        assert!(!PanicFreedom.applies(file.kind));
    }

    #[test]
    fn expect_err_is_not_expect() {
        assert!(run("fn a() { assert!(r.expect_err; ) }").is_empty());
    }
}
