//! Bernoulli distribution.

use super::Discrete;
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// Bernoulli distribution: `P(X = 1) = p`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Bernoulli, Discrete};
/// let b = Bernoulli::new(0.3)?;
/// assert!((b.pmf(1) - 0.3).abs() < 1e-15);
/// assert!((b.variance() - 0.21).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ProbError::InvalidParameter(format!(
                "Bernoulli requires p in [0,1], got {p}"
            )));
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws a boolean sample directly.
    pub fn sample_bool(&self, rng: &mut dyn RngCore) -> bool {
        use crate::rng::Rng as _;
        rng.random::<f64>() < self.p
    }
}

impl Discrete for Bernoulli {
    fn pmf(&self, k: u64) -> f64 {
        match k {
            0 => 1.0 - self.p,
            1 => self.p,
            _ => 0.0,
        }
    }

    fn cdf(&self, k: u64) -> f64 {
        match k {
            0 => 1.0 - self.p,
            _ => 1.0,
        }
    }

    fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "Bernoulli::quantile: p in [0,1], got {p}");
        if p <= 1.0 - self.p {
            0
        } else {
            1
        }
    }

    fn mean(&self) -> f64 {
        self.p
    }

    fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        u64::from(self.sample_bool(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Bernoulli::new(0.7).unwrap();
        assert!((b.pmf(0) + b.pmf(1) - 1.0).abs() < 1e-15);
        assert_eq!(b.pmf(2), 0.0);
    }

    #[test]
    fn sample_frequency_matches_p() {
        let b = Bernoulli::new(0.25).unwrap();
        let mut rng = testutil::rng(5);
        let n = 100_000;
        let ones: u64 = b.sample_n(&mut rng, n).iter().sum();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn degenerate_cases() {
        let zero = Bernoulli::new(0.0).unwrap();
        let one = Bernoulli::new(1.0).unwrap();
        let mut rng = testutil::rng(1);
        assert_eq!(zero.sample(&mut rng), 0);
        assert_eq!(one.sample(&mut rng), 1);
    }
}
