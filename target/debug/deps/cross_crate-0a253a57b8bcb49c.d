/root/repo/target/debug/deps/cross_crate-0a253a57b8bcb49c.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-0a253a57b8bcb49c: tests/cross_crate.rs

tests/cross_crate.rs:
