//! E8 — Sec. IV tolerance: redundant architectures with *diverse*
//! uncertainties. Sweeps fusion rules and channel diversity, including a
//! common-cause sensitivity study: when both channels share the same
//! blind spot, redundancy stops helping — which the paper's
//! "common parent nodes" analysis is designed to reveal.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::perception::{
    ClassifierModel, FusedVerdict, FusionSystem, RejectingClassifier, Truth, Verdict, WorldModel,
};
use sysunc_bench::{header, section};

struct Rates {
    ped_as_car: f64,
    novel_accepted: f64,
    availability: f64,
}

fn eval<F: FnMut(Truth, &mut StdRng) -> Option<usize>>(
    world: &WorldModel,
    mut system: F,
    seed: u64,
) -> Rates {
    let mut rng = StdRng::seed_from_u64(seed);
    let trials = 200_000;
    let (mut ped_n, mut ped_bad) = (0u64, 0u64);
    let (mut novel_n, mut novel_bad) = (0u64, 0u64);
    let (mut known_n, mut answered) = (0u64, 0u64);
    for _ in 0..trials {
        let truth = world.sample(&mut rng);
        let out = system(truth, &mut rng);
        match truth {
            Truth::Known(1) => {
                ped_n += 1;
                if out == Some(0) {
                    ped_bad += 1;
                }
            }
            Truth::Known(_) => {}
            Truth::Novel(_) => {
                novel_n += 1;
                if out.is_some() {
                    novel_bad += 1;
                }
            }
        }
        if let Truth::Known(_) = truth {
            known_n += 1;
            if out.is_some() {
                answered += 1;
            }
        }
    }
    Rates {
        ped_as_car: ped_bad as f64 / ped_n.max(1) as f64,
        novel_accepted: novel_bad as f64 / novel_n.max(1) as f64,
        availability: answered as f64 / known_n.max(1) as f64,
    }
}

fn print_rates(name: &str, r: &Rates) {
    println!(
        "  {:<34} {:>12.5} {:>14.5} {:>12.3}",
        name, r.ped_as_car, r.novel_accepted, r.availability
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E8", "Sec. IV — tolerance by redundant diverse architectures");
    let world = WorldModel::paper_example()?;
    let camera = ClassifierModel::paper_camera()?;
    let radar = ClassifierModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![vec![0.95, 0.0, 0.05], vec![0.0, 0.8, 0.2]],
        vec![0.05, 0.05, 0.9],
    )?;
    // A "same-technology" second camera: identical confusion structure —
    // redundant but NOT diverse.
    let camera2 = ClassifierModel::paper_camera()?;

    let diverse = FusionSystem::new(
        vec![camera.clone(), radar.clone()],
        vec![0.6, 0.3, 0.1],
        vec![0.9, 0.9],
    )?;
    let homogeneous = FusionSystem::new(
        vec![camera.clone(), camera2],
        vec![0.6, 0.3, 0.1],
        vec![0.9, 0.9],
    )?;

    section("architectures (ped-as-car | novel accepted | availability on knowns)");
    println!(
        "  {:<34} {:>12} {:>14} {:>12}",
        "architecture", "ped-as-car", "novel-accept", "availability"
    );

    let r = eval(&world, |t, rng| {
        let label = camera.classify(t, rng).label;
        (label < camera.known_len()).then_some(label)
    }, 1);
    print_rates("single camera", &r);

    let rej = RejectingClassifier::new(camera.clone(), 0.55)?;
    let r = eval(&world, |t, rng| match rej.classify(t, rng) {
        Verdict::Label(l) if l < rej.inner().known_len() => Some(l),
        _ => None,
    }, 2);
    print_rates("uncertainty-aware camera (reject)", &r);

    for (name, sys) in [("diverse camera+radar", &diverse), ("homogeneous camera+camera", &homogeneous)] {
        for (rule, idx) in [("vote", 0usize), ("bayes", 1), ("dempster", 2)] {
            let r = eval(&world, |t, rng| {
                let labels = sys.observe(t, rng);
                let verdict = match idx {
                    0 => sys.fuse_vote(&labels).expect("valid"),
                    1 => sys.fuse_bayes(&labels).expect("valid").0,
                    _ => sys.fuse_dempster(&labels).map(|(v, _)| v).unwrap_or(FusedVerdict::Unknown),
                };
                match verdict {
                    FusedVerdict::Known(l) => Some(l),
                    FusedVerdict::Unknown => None,
                }
            }, 3 + idx as u64);
            print_rates(&format!("{name} [{rule}]"), &r);
        }
    }

    section("common-cause sensitivity: shared blind spot");
    // Both channels share a failure mode: in fog, both misread pedestrians
    // as cars with elevated probability. Model by degrading both confusion
    // rows identically.
    let foggy = ClassifierModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![vec![0.9, 0.01, 0.09], vec![0.25, 0.6, 0.15]],
        vec![0.1, 0.1, 0.8],
    )?;
    let foggy_pair =
        FusionSystem::new(vec![foggy.clone(), foggy], vec![0.6, 0.3, 0.1], vec![0.9, 0.9])?;
    let r = eval(&world, |t, rng| {
        let labels = foggy_pair.observe(t, rng);
        match foggy_pair.fuse_vote(&labels).expect("valid") {
            FusedVerdict::Known(l) => Some(l),
            FusedVerdict::Unknown => None,
        }
    }, 11);
    print_rates("common-cause degraded pair [vote]", &r);
    println!("\n  Expected shape: diverse fusion cuts ped-as-car and novel");
    println!("  acceptance by an order of magnitude at modest availability cost;");
    println!("  homogeneous redundancy helps much less; a shared (common-cause)");
    println!("  blind spot defeats redundancy — diversity, not duplication, is");
    println!("  what buys tolerance (paper Sec. IV/V-B).");
    Ok(())
}
