//! The lint rule set. Each submodule is one rule; [`all`] returns the
//! full gate in the order findings should be investigated.

mod doc;
mod error_impl;
mod float_eq;
mod manifest;
mod panic;
mod prob_contract;
mod suite_error;

pub use doc::DocCoverage;
pub use error_impl::ErrorImpl;
pub use float_eq::FloatEq;
pub use manifest::ManifestHygiene;
pub use panic::PanicFreedom;
pub use prob_contract::ProbContract;
pub use suite_error::SuiteError;

use crate::Lint;

/// Every rule the gate enforces.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(ManifestHygiene),
        Box::new(PanicFreedom),
        Box::new(FloatEq),
        Box::new(ProbContract),
        Box::new(ErrorImpl),
        Box::new(DocCoverage),
        Box::new(SuiteError),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_stable() {
        let names: Vec<&str> = all().iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            vec!["manifest", "panic", "float-eq", "prob-contract", "error-impl", "doc", "suite-error"]
        );
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
