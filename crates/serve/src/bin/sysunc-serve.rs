//! Standalone propagation server.
//!
//! ```text
//! sysunc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]
//!              [--max-connections N] [--cache-capacity N] [--cache-shards N]
//! ```
//!
//! Binds (port 0 = ephemeral), prints `listening on <addr>` to stdout,
//! and serves until stdin reaches EOF — the supervisor-friendly,
//! signal-free shutdown convention: closing the pipe asks the server
//! to drain and exit 0.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use sysunc::ModelRegistry;
use sysunc_serve::{Server, ServerConfig};

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--timeout-ms" => {
                config.request_timeout = Duration::from_millis(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                )
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--cache-shards" => {
                config.cache_shards = value("--cache-shards")?
                    .parse()
                    .map_err(|e| format!("--cache-shards: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("sysunc-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let registry = match ModelRegistry::standard() {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("sysunc-serve: cannot build the model registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config, registry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sysunc-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Serve until stdin closes.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("sysunc-serve: stdin closed, draining");
    server.shutdown();
    ExitCode::SUCCESS
}
