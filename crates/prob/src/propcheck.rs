//! A tiny in-tree property-based testing harness, replacing the external
//! `proptest` crate for this workspace's needs: run a closure over many
//! randomly generated cases and report the failing case deterministically.
//!
//! No shrinking — cases are generated from a per-case seed, so a failure
//! message like `case 17 (seed 0x5eed0011)` is already a minimal, exactly
//! reproducible repro recipe.
//!
//! ```
//! use sysunc_prob::propcheck;
//! propcheck::run(32, |g| {
//!     let x = g.f64_in(-10.0, 10.0);
//!     assert!(x.abs() <= 10.0);
//! });
//! ```

use crate::rng::{Rng as _, RngCore, SeedableRng, StdRng};

/// Base seed for case generation; `case i` uses `BASE + i`.
const BASE_SEED: u64 = 0x5EED_0000;

/// Per-case value generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Uniform `f64` in the half-open interval `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "f64_in requires lo < hi");
        let u: f64 = self.rng.random();
        lo + u * (hi - lo)
    }

    /// Uniform `usize` in the half-open range `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "usize_in requires lo < hi");
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "u64_in requires lo < hi");
        lo + self.rng.next_u64() % (hi - lo)
    }

    /// A vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// A normalized probability vector of length `len` (entries positive,
    /// summing to 1), the workhorse input for distribution-valued
    /// properties.
    /// Range: each entry lies in `(0, 1]` and the entries sum to one.
    pub fn prob_vec(&mut self, len: usize) -> Vec<f64> {
        let raw = self.vec_f64(1e-6, 1.0, len);
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    }

    /// Direct access to the underlying generator for custom draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Runs `property` over `cases` generated cases, panicking with the case
/// number and seed on the first failure.
///
/// # Panics
///
/// Re-raises the property's panic, prefixed by a deterministic repro
/// header (case index and seed).
pub fn run<F: FnMut(&mut Gen)>(cases: u64, mut property: F) {
    for case in 0..cases {
        let seed = BASE_SEED + case;
        let mut g = Gen { rng: StdRng::seed_from_u64(seed) };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            // tidy: allow(panic) — a failed property must fail the test.
            panic!("property failed at case {case} (seed {seed:#x}): {detail}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_trivially_true_properties() {
        run(16, |g| {
            let x = g.f64_in(0.0, 1.0);
            assert!((0.0..1.0).contains(&x));
        });
    }

    #[test]
    fn reports_failing_case_with_seed() {
        let result = std::panic::catch_unwind(|| {
            run(8, |g| {
                let x = g.f64_in(0.0, 1.0);
                assert!(x < 0.0, "x was {x}");
            })
        });
        let payload = result.expect_err("property must fail");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("case 0"), "got: {message}");
        assert!(message.contains("seed"), "got: {message}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        run(4, |g| first.push(g.f64_in(0.0, 1.0)));
        let mut second = Vec::new();
        run(4, |g| second.push(g.f64_in(0.0, 1.0)));
        assert_eq!(first, second);
    }

    #[test]
    fn prob_vec_normalizes() {
        run(16, |g| {
            let len = g.usize_in(1, 8);
            let p = g.prob_vec(len);
            assert_eq!(p.len(), len);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x > 0.0));
        });
    }

    #[test]
    fn integer_ranges_are_respected() {
        run(32, |g| {
            let n = g.usize_in(4, 64);
            assert!((4..64).contains(&n));
            let u = g.u64_in(0, 1000);
            assert!(u < 1000);
        });
    }
}
