//! A streaming JSON writer: emits a document incrementally without
//! building a [`super::Json`] tree first.
//!
//! The tree emitter in the parent module is the right tool for values
//! that already live as [`super::Json`]; this writer is for code that
//! *produces* a document — metrics expositions, benchmark records, wire
//! responses — where allocating an intermediate tree per request is
//! waste. It differs from the tree emitter in one deliberate way: it is
//! **strict about non-finite floats**. The tree emitter follows the
//! `serde_json` convention of degrading NaN/∞ to `null`; a wire
//! protocol must not silently turn a number into a different type, so
//! here a non-finite float poisons the document and [`JsonWriter::finish`]
//! fails.
//!
//! Structural correctness (balanced containers, keys only inside
//! objects, exactly one top-level value) is tracked as the document is
//! written; any misuse is reported by `finish` rather than panicking,
//! keeping the writer usable from panic-free library code.
//!
//! ```
//! use sysunc_prob::json::writer::JsonWriter;
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("throughput").f64(1250.5);
//! w.key("tags").begin_array();
//! w.string("serve");
//! w.end_array();
//! w.end_object();
//! assert_eq!(w.finish()?, r#"{"throughput":1250.5,"tags":["serve"]}"#);
//! # Ok::<(), sysunc_prob::json::JsonError>(())
//! ```

use super::{emit_f64, emit_string, JsonError};

/// What container the writer is currently inside, and whether a comma
/// is needed before the next element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// Inside `[...]`; the flag marks "an element was already written".
    Array(bool),
    /// Inside `{...}`; the flag marks "a member was already written",
    /// the second flag marks "a key is pending its value".
    Object(bool, bool),
}

/// An incremental JSON emitter with strictness guarantees the tree
/// emitter does not make (see the module docs).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    /// First structural or numeric error; poisons the document.
    error: Option<String>,
    /// Whether a complete top-level value has been written.
    root_done: bool,
}

impl JsonWriter {
    /// A writer with an empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn poison(&mut self, msg: &str) {
        if self.error.is_none() {
            self.error = Some(msg.to_string());
        }
    }

    /// Prepares the buffer for a new value: writes the separating comma
    /// and validates position. Returns false when the write must not
    /// happen (document poisoned).
    fn pre_value(&mut self) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.stack.last_mut() {
            None => {
                if self.root_done {
                    self.poison("more than one top-level value");
                    return false;
                }
            }
            Some(Frame::Array(seen)) => {
                if *seen {
                    self.out.push(',');
                }
                *seen = true;
            }
            Some(Frame::Object(_, pending)) => {
                if !*pending {
                    self.poison("object value written without a key");
                    return false;
                }
                *pending = false;
            }
        }
        true
    }

    fn post_value(&mut self) {
        if self.stack.is_empty() {
            self.root_done = true;
        }
    }

    /// Writes an object member key. Must be inside an object, and every
    /// key must be followed by exactly one value.
    pub fn key(&mut self, name: &str) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match self.stack.last_mut() {
            Some(Frame::Object(seen, pending)) => {
                if *pending {
                    self.poison("two keys in a row without a value");
                    return self;
                }
                if *seen {
                    self.out.push(',');
                }
                *seen = true;
                *pending = true;
                emit_string(&mut self.out, name);
                self.out.push(':');
            }
            _ => self.poison("key outside an object"),
        }
        self
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        if self.pre_value() {
            self.out.push('{');
            self.stack.push(Frame::Object(false, false));
        }
        self
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match self.stack.pop() {
            Some(Frame::Object(_, false)) => {
                self.out.push('}');
                self.post_value();
            }
            Some(Frame::Object(_, true)) => self.poison("object closed with a dangling key"),
            _ => self.poison("end_object outside an object"),
        }
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        if self.pre_value() {
            self.out.push('[');
            self.stack.push(Frame::Array(false));
        }
        self
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match self.stack.pop() {
            Some(Frame::Array(_)) => {
                self.out.push(']');
                self.post_value();
            }
            _ => self.poison("end_array outside an array"),
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        if self.pre_value() {
            emit_string(&mut self.out, s);
            self.post_value();
        }
        self
    }

    /// Writes a float value. A non-finite float poisons the document —
    /// wire documents must not degrade numbers to `null`.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        if !x.is_finite() {
            self.poison("non-finite float in strict JSON document");
            return self;
        }
        if self.pre_value() {
            self.out.push_str(&emit_f64(x));
            self.post_value();
        }
        self
    }

    /// Writes an unsigned integer value (lossless for u64).
    pub fn u64(&mut self, n: u64) -> &mut Self {
        if self.pre_value() {
            self.out.push_str(&n.to_string());
            self.post_value();
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        if self.pre_value() {
            self.out.push_str(if b { "true" } else { "false" });
            self.post_value();
        }
        self
    }

    /// Writes a `null` value.
    pub fn null(&mut self) -> &mut Self {
        if self.pre_value() {
            self.out.push_str("null");
            self.post_value();
        }
        self
    }

    /// Finishes the document and returns the JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Decode`] when the document was poisoned by a
    /// structural misuse or a non-finite float, when containers are
    /// still open, or when nothing was written.
    pub fn finish(self) -> Result<String, JsonError> {
        if let Some(msg) = self.error {
            return Err(JsonError::decode(msg));
        }
        if !self.stack.is_empty() {
            return Err(JsonError::decode(format!(
                "{} container(s) left open",
                self.stack.len()
            )));
        }
        if !self.root_done {
            return Err(JsonError::decode("empty document"));
        }
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn object_with_all_scalar_kinds_parses_back() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("f").f64(0.1);
        w.key("n").u64(u64::MAX);
        w.key("b").bool(true);
        w.key("s").string("quote\" tab\t");
        w.key("z").null();
        w.end_object();
        let text = w.finish().expect("well-formed");
        let v = parse(&text).expect("parses");
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.1));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("quote\" tab\t"));
        assert!(v.get("z").map(Json::is_null).unwrap_or(false));
    }

    #[test]
    fn nested_arrays_and_objects_round_trip() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.begin_object();
        w.key("xs").begin_array();
        w.f64(1.0).f64(2.5);
        w.end_array();
        w.end_object();
        w.u64(7);
        w.end_array();
        let text = w.finish().expect("well-formed");
        assert_eq!(text, r#"[{"xs":[1.0,2.5]},7]"#);
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn non_finite_floats_poison_the_document() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut w = JsonWriter::new();
            w.begin_array();
            w.f64(bad);
            w.end_array();
            let err = w.finish().expect_err("strict writer rejects non-finite");
            assert!(err.to_string().contains("non-finite"), "{err}");
        }
    }

    #[test]
    fn structural_misuse_is_an_error_not_a_panic() {
        // Unbalanced container.
        let mut w = JsonWriter::new();
        w.begin_object();
        assert!(w.finish().is_err());
        // Value without a key inside an object.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.u64(1);
        assert!(w.finish().is_err());
        // Dangling key.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.end_object();
        assert!(w.finish().is_err());
        // Key at the top level.
        let mut w = JsonWriter::new();
        w.key("a");
        assert!(w.finish().is_err());
        // Two top-level values.
        let mut w = JsonWriter::new();
        w.u64(1).u64(2);
        assert!(w.finish().is_err());
        // Nothing at all.
        assert!(JsonWriter::new().finish().is_err());
    }

    #[test]
    fn keys_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a\"b").u64(1);
        w.end_object();
        let text = w.finish().expect("well-formed");
        let v = parse(&text).expect("parses");
        assert_eq!(v.get("a\"b").and_then(Json::as_u64), Some(1));
    }
}
