/root/repo/target/release/deps/sysunc_bench-c4835074c02c9989.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsysunc_bench-c4835074c02c9989.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libsysunc_bench-c4835074c02c9989.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
