//! A small blocking HTTP/1.1 client for the propagation API — used by
//! the integration tests, the `loadgen` benchmark driver, and the CI
//! smoke test, so the server is exercised end to end without external
//! tooling.
//!
//! One [`HttpClient`] owns one keep-alive connection; issue requests
//! sequentially and reuse it for the next. Typed helpers wrap the
//! JSON encode/decode of the propagate route.

use crate::error::{Result, ServeError};
use crate::http::{HttpConn, Limits, Response};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use sysunc::prob::json;
use sysunc::{PropagationReport, WireRequest};

/// A blocking keep-alive HTTP client for one server connection.
#[derive(Debug)]
pub struct HttpClient {
    conn: HttpConn<TcpStream>,
    limits: Limits,
    timeout: Duration,
}

impl HttpClient {
    /// Connects to the server with a 10 s response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures as [`ServeError::Io`].
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures as [`ServeError::Io`].
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        stream.set_nodelay(true)?;
        Ok(Self { conn: HttpConn::new(stream), limits: Limits::default(), timeout })
    }

    /// Sends one request and reads the response off the same
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when the response misses the client
    /// timeout; otherwise the read/write failure.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: sysunc\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.conn.stream_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let deadline = Instant::now() + self.timeout;
        self.conn
            .read_response(&self.limits, &mut || Instant::now() >= deadline)
    }

    /// `GET` a route.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::request`].
    pub fn get(&mut self, target: &str) -> Result<Response> {
        self.request("GET", target, None)
    }

    /// Runs a [`WireRequest`] through `POST /v1/propagate` and decodes
    /// the report.
    ///
    /// # Errors
    ///
    /// Non-200 statuses surface as [`ServeError::Protocol`] carrying
    /// the status and the server's error body; transport failures as
    /// in [`HttpClient::request`].
    pub fn propagate(&mut self, wire: &WireRequest) -> Result<PropagationReport> {
        let body = json::to_string(wire);
        let response = self.request("POST", "/v1/propagate", Some(&body))?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "propagate returned {}: {}",
                response.status,
                response.body_text()
            )));
        }
        json::from_str(&response.body_text())
            .map_err(|e| ServeError::Protocol(format!("undecodable report: {e}")))
    }

    /// Scrapes `GET /metrics` as text.
    ///
    /// # Errors
    ///
    /// Non-200 statuses and transport failures as in
    /// [`HttpClient::propagate`].
    pub fn scrape_metrics(&mut self) -> Result<String> {
        let response = self.get("/metrics")?;
        if response.status != 200 {
            return Err(ServeError::Protocol(format!(
                "metrics returned {}",
                response.status
            )));
        }
        Ok(response.body_text())
    }
}
