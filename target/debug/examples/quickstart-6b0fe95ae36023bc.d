/root/repo/target/debug/examples/quickstart-6b0fe95ae36023bc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6b0fe95ae36023bc: examples/quickstart.rs

examples/quickstart.rs:
