//! Benchmark: design generation and propagation throughput for
//! each sampling engine.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::prob::dist::{Continuous, Normal};
use sysunc::propagator::{propagate_chunked, ChunkOptions};
use sysunc::sampling::{
    propagate, Design, HaltonDesign, LatinHypercubeDesign, RandomDesign, SobolDesign,
};

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_generation");
    let designs: Vec<(&str, Box<dyn Design>)> = vec![
        ("random", Box::new(RandomDesign)),
        ("lhs", Box::new(LatinHypercubeDesign)),
        ("sobol", Box::new(SobolDesign::default())),
        ("halton", Box::new(HaltonDesign::default())),
    ];
    for (name, design) in &designs {
        group.bench_with_input(BenchmarkId::new(*name, 4096), design, |b, d| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                d.generate(4096, 8, &mut rng).expect("valid")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("propagation");
    let n1 = Normal::new(0.0, 1.0).expect("valid");
    let n2 = Normal::new(1.0, 2.0).expect("valid");
    let inputs: Vec<&dyn Continuous> = vec![&n1, &n2];
    let model = |x: &[f64]| (x[0] * x[1]).sin() + x[0].exp().ln_1p();
    group.bench_function("serial_16k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            propagate(&inputs, &LatinHypercubeDesign, &model, 16_384, &mut rng).expect("runs")
        });
    });
    group.bench_function("chunked4_16k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            propagate_chunked(
                &inputs,
                &LatinHypercubeDesign,
                &model,
                16_384,
                ChunkOptions { width: 1024, threads: 4 },
                &mut rng,
            )
            .expect("runs")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_designs
}
criterion_main!(benches);
