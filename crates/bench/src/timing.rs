//! A minimal wall-clock benchmarking harness with a `criterion`-shaped
//! API, so the workspace's benchmarks need no external dependency.
//!
//! The surface mirrors the subset of `criterion` the benches in
//! `benches/` actually use: [`Criterion`] with builder-style
//! configuration, [`BenchmarkGroup`]s, [`BenchmarkId`]s for
//! parameterized cases, and a [`Bencher`] whose `iter` runs the closure
//! in timed batches. Statistics are deliberately simple — median and
//! min/max over fixed-size samples — because the goal is regression
//! *spotting*, not rigorous confidence intervals.
//!
//! ```
//! use sysunc_bench::timing::Criterion;
//! use std::time::Duration;
//!
//! let mut c = Criterion::default()
//!     .warm_up_time(Duration::from_millis(1))
//!     .measurement_time(Duration::from_millis(5))
//!     .sample_size(10);
//! let mut group = c.benchmark_group("doc");
//! group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! group.finish();
//! ```

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver: holds the timing configuration and prints
/// one result line per benchmark case.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets how long each case spins before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget spread over a case's samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples each case collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name }
    }

    /// Runs a single unparameterized benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run_case(name, f);
    }

    fn run_case<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(label, &mut b.samples);
    }
}

/// A named set of benchmark cases sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one case identified by a name/parameter pair, passing `input`
    /// to the closure alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.criterion.run_case(&id.label, |b| f(b, input));
    }

    /// Runs one case identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.criterion.run_case(name, f);
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark case identifier of the form `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an identifier from a case name and a displayable parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] performs the
/// warm-up and the timed sampling loop.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, black-boxing its result so the optimizer cannot delete
    /// the measured work. Collects `sample_size` samples, each batched to
    /// roughly `measurement / sample_size` wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, which doubles as the per-iteration time estimate.
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn report(label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("  {label:<40} (no samples — closure never called iter)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    println!(
        "  {label:<40} median {:>12}   [{} .. {}]",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max)
    );
}

/// Formats a duration in seconds with an auto-scaled unit.
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
///
/// Both the block form (`name = ...; config = ...; targets = ...`) and the
/// positional form (`criterion_group!(benches, f, g)`) are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::timing::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
            .sample_size(4)
    }

    #[test]
    fn bench_function_collects_samples_and_reports() {
        let mut c = fast_config();
        // Goes through the public path end to end; the closure must run.
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| (0..64u64).product::<u64>());
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_passes_the_input_through() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        let data = vec![1.0f64; 256];
        let mut seen_len = 0;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            seen_len = d.len();
            b.iter(|| d.iter().sum::<f64>());
        });
        group.finish();
        assert_eq!(seen_len, 256);
    }

    #[test]
    fn benchmark_id_formats_name_slash_parameter() {
        assert_eq!(BenchmarkId::new("combine", 16).label, "combine/16");
    }

    #[test]
    fn time_formatting_scales_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }

    #[test]
    fn macros_compile_in_positional_and_block_form() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 1u64 + 1));
        }
        criterion_group! {
            name = block_group;
            config = Criterion::default()
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2))
                .sample_size(2);
            targets = target
        }
        criterion_group!(positional_group, target);
        // Run both to prove the generated fns are callable.
        block_group();
        positional_group();
    }
}
