//! E7 — Sec. V-B: the evidential network (evidence theory + BN, after
//! Simon–Weber–Evsukoff) compared against the plain-probability reading
//! of Table I. Shows how the Bel/Pl gap carries the epistemic and
//! ontological content that a single probability number erases.

use sysunc::casestudy::{paper_bayes_net, paper_evidential_network, PERCEPTION_STATES};
use sysunc_bench::{header, prob_vec, section};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E7", "Sec. V-B — evidential network vs plain Bayesian network");
    let bn = paper_bayes_net()?;
    let ev = paper_evidential_network()?;

    section("perception-node state, both readings");
    let m_bn = bn.marginal("perception", &[])?;
    println!("  Bayesian marginal (unknown row renormalized): {}", prob_vec(&m_bn));
    let mass = ev.network.query(ev.perception, &[])?;
    println!("\n  evidential focal masses:");
    for (set, m) in mass.focal_elements() {
        println!("    m({}) = {m:.4}", ev.perception_frame.format_subset(set));
    }
    println!("\n  {:<14} {:>10} {:>10} {:>10}", "event", "Bel", "Pl", "gap");
    for name in ["car", "pedestrian", "none"] {
        let set = ev.perception_frame.singleton(name)?;
        let i = mass.interval(set);
        println!("  {name:<14} {:>10.4} {:>10.4} {:>10.4}", i.lo(), i.hi(), i.width());
    }
    let detect = ev.perception_frame.subset(&["car", "pedestrian"])?;
    let i = mass.interval(detect);
    println!("  {:<14} {:>10.4} {:>10.4} {:>10.4}", "some object", i.lo(), i.hi(), i.width());

    section("diagnosis under each evidence, both engines");
    for state in PERCEPTION_STATES {
        let post = bn.marginal("ground_truth", &[("perception", state)])?;
        println!("  BN  given {state:<15}: {}", prob_vec(&post));
    }
    let gt_frame_unknown = 0b100u64; // ground-truth frame: car, pedestrian, unknown
    for name in ["car", "pedestrian", "none"] {
        let set = ev.perception_frame.singleton(name)?;
        let post = ev.network.query(ev.ground_truth, &[(ev.perception, set)])?;
        println!(
            "  EN  given {name:<15}: Bel(unknown) = {:.4}, Pl(unknown) = {:.4}",
            post.belief(gt_frame_unknown),
            post.plausibility(gt_frame_unknown)
        );
    }
    // The evidential network can also condition on the *epistemic* output
    // "car or pedestrian", which the plain BN must model as a fake state.
    let carped = ev.perception_frame.subset(&["car", "pedestrian"])?;
    let post = ev.network.query(ev.ground_truth, &[(ev.perception, carped)])?;
    println!(
        "  EN  given {{car, pedestrian}}: Bel(unknown) = {:.4}, Pl(unknown) = {:.4}",
        post.belief(gt_frame_unknown),
        post.plausibility(gt_frame_unknown)
    );

    section("decision quality: pignistic transform");
    let bet = mass.pignistic();
    println!(
        "  pignistic P over (car, pedestrian, none) = {}",
        prob_vec(&bet)
    );
    println!("  nonspecific (epistemic+ontological) mass = {:.4}", mass.nonspecificity_mass());
    println!("  mass on Θ (pure ontological reserve)     = {:.4}", mass.mass(ev.perception_frame.theta()));
    Ok(())
}
