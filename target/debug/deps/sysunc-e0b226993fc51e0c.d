/root/repo/target/debug/deps/sysunc-e0b226993fc51e0c.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/libsysunc-e0b226993fc51e0c.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/casestudy.rs:
crates/core/src/error.rs:
crates/core/src/modeling.rs:
crates/core/src/register.rs:
crates/core/src/taxonomy.rs:
