/root/repo/target/debug/deps/serialization-e7c4a0599658d284.d: tests/serialization.rs

/root/repo/target/debug/deps/serialization-e7c4a0599658d284: tests/serialization.rs

tests/serialization.rs:
