//! Benchmark: variable-elimination inference cost vs network
//! shape (chain, naive-Bayes star, and the paper's Table I network).

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc::bayesnet::{BayesNet, VariableElimination};
use sysunc::casestudy::paper_bayes_net;

fn chain(n: usize) -> BayesNet {
    let mut bn = BayesNet::new();
    let mut prev = bn.add_root("n0", vec!["0", "1"], vec![0.6, 0.4]).expect("valid");
    for i in 1..n {
        prev = bn
            .add_node(
                format!("n{i}"),
                vec!["0", "1"],
                vec![prev],
                vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            )
            .expect("valid");
    }
    bn
}

fn star(leaves: usize) -> BayesNet {
    let mut bn = BayesNet::new();
    let root = bn.add_root("cause", vec!["0", "1"], vec![0.7, 0.3]).expect("valid");
    for i in 0..leaves {
        bn.add_node(
            format!("obs{i}"),
            vec!["0", "1"],
            vec![root],
            vec![vec![0.8, 0.2], vec![0.3, 0.7]],
        )
        .expect("valid");
    }
    bn
}

fn bench_bn(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_elimination");
    for n in [4usize, 8, 16, 32] {
        let bn = chain(n);
        group.bench_with_input(BenchmarkId::new("chain_posterior", n), &bn, |b, bn| {
            let ve = VariableElimination::new(bn);
            b.iter(|| ve.marginal(0, &[(bn.len() - 1, 1)]).expect("query"));
        });
    }
    for leaves in [4usize, 8, 16] {
        let bn = star(leaves);
        let evidence: Vec<(usize, usize)> = (1..=leaves).map(|i| (i, i % 2)).collect();
        group.bench_with_input(
            BenchmarkId::new("star_diagnosis", leaves),
            &(bn, evidence),
            |b, (bn, ev)| {
                let ve = VariableElimination::new(bn);
                b.iter(|| ve.marginal(0, ev).expect("query"));
            },
        );
    }
    let paper = paper_bayes_net().expect("builds");
    group.bench_function("paper_table1_diagnosis", |b| {
        b.iter(|| paper.marginal("ground_truth", &[("perception", "none")]).expect("query"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_bn
}
criterion_main!(benches);
