#!/usr/bin/env bash
# Tier-1 gate for the sysunc workspace. Everything runs --offline: the
# workspace has zero external dependencies by policy (enforced by
# sysunc-tidy's `manifest` rule), so no step may touch the network.
set -euo pipefail
cd "$(dirname "$0")"

# The static-analysis gate runs first: it needs only the (small) tidy
# crate to build, so a lint violation fails in seconds instead of after
# a full release build + test cycle.
echo "== static-analysis gate =="
cargo run -q --offline -p sysunc-tidy

echo "== static-analysis gate (--json round-trip) =="
# The machine-readable findings must be valid JSON by the workspace's
# own reader; `jsonlint` (crates/prob's parser behind a tiny binary-free
# check) is exercised via the test suite, so here we only assert shape.
json="$(cargo run -q --offline -p sysunc-tidy -- --json)"
case "$json" in
  '{"schema":"sysunc-tidy/3"'*'"clean":true'*) echo "json findings: clean" ;;
  *) echo "unexpected --json output: $json" >&2; exit 1 ;;
esac

echo "== lint-suppression trend record =="
# Fold the findings into one sysunc-bench-trend/1 line so allowed/
# baselined exception counts per rule stay visible over time, and fail
# when any rule's count rose against the last recorded line (the
# exception ledger must only ratchet down).
printf '%s' "$json" | cargo run -q --offline -p sysunc-bench --bin tidy_trend -- \
  --out BENCH_tidy_trend.json --fail-on-regression

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline

echo "== verify tier (bounded-exhaustive, release) =="
# Kani-style bounded-exhaustive harnesses, #[ignore]-gated so a plain
# `cargo test` stays fast: all 2^n fault-tree assignments vs MOCUS cut
# sets, exact top probability vs enumeration and inclusion-exclusion,
# canonical-JSON idempotence + content-hash collision-freedom over the
# enumerated wire universe, and FNV-1a/64 injectivity on every input
# up to two bytes. The propcheck regression corpus
# (propcheck.regressions) is replayed by every property run in the
# ordinary test tier above.
cargo test -q --release --offline --test verify_exhaustive -- --ignored

echo "== engine-layer examples (release) =="
cargo run -q --release --offline --example propagation_methods
cargo run -q --release --offline --example strategy_workflow

echo "== serve smoke (ephemeral port, in-tree client) =="
# Boots the propagation server, propagates through every engine,
# scrapes /metrics, and shuts down gracefully — nonzero exit on any
# mismatch between served traffic and the metrics account.
cargo run -q --release --offline --example serve_smoke

echo "== fleet smoke (2 shards, crash injection, aggregated metrics) =="
# Boots a 2-shard process fleet, SIGKILLs a shard under concurrent
# load, and verifies zero failed requests, a recorded restart, routed
# cache locality, and the merged /metrics exposition.
cargo run -q --release --offline --example fleet_smoke

echo "== serve load benchmark (cold / cache-hot / batch) =="
# Self-hosted loadgen suite: every mode runs against one server (cold
# first, so the baseline sees an empty cache) and the per-mode
# throughput and latency percentiles land in BENCH_serve.json.
cargo run -q --release --offline -p sysunc-bench --bin loadgen -- \
  --clients 8 --requests 50 --budget 2048

echo "== fleet load benchmark (2 shards, same modes) =="
# The same suite through a 2-shard fleet front; a shard is SIGKILLed
# mid cache-hot run, so the numbers include a crash, the router's
# retry window, and the supervisor's restart. Keys gain a `fleet-`
# prefix and land in BENCH_fleet.json.
cargo run -q --release --offline -p sysunc-bench --bin loadgen -- \
  --clients 8 --requests 50 --budget 2048 --fleet 2 --out BENCH_fleet.json

echo "== serve trend tripwire =="
# Folds both suites into BENCH_serve_trend.json and fails on a >20%
# per-mode throughput drop against the committed baseline, on
# cache-hot throughput below 5x cold (the cache must earn its keep),
# on any failed fleet request (crash tolerance must be total), or on
# fleet-cache-hot throughput below the hardware-aware bar (1.7x
# single-process on >=4 cores, an overhead floor when time-sliced).
# The baseline stays single-process; on a machine without one the
# single-process run becomes the baseline.
cargo run -q --release --offline -p sysunc-bench --bin serve_trend -- \
  --fleet-in BENCH_fleet.json

echo "== engine kernel benchmark (scalar vs chunked) =="
# Times every sampling engine on both paper models through the scalar
# reference path and the chunked struct-of-arrays driver; the per-row
# throughputs and speedups land in BENCH_engine.json.
cargo run -q --release --offline -p sysunc-bench --bin engine_bench

echo "== engine trend tripwire =="
# Folds the document into BENCH_engine_trend.json and fails when the
# chunked path loses its >=2x speedup over scalar for Monte Carlo or
# Latin hypercube, or when any engine/model row drops >20% against the
# committed baseline. On a machine without a baseline the run becomes
# the baseline.
cargo run -q --release --offline -p sysunc-bench --bin engine_trend -- \
  --fail-on-regression
