/root/repo/target/release/deps/sysunc_orbital-37bf89de00c639c6.d: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/release/deps/libsysunc_orbital-37bf89de00c639c6.rlib: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/release/deps/libsysunc_orbital-37bf89de00c639c6.rmeta: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

crates/orbital/src/lib.rs:
crates/orbital/src/error.rs:
crates/orbital/src/integrator.rs:
crates/orbital/src/kepler.rs:
crates/orbital/src/observe.rs:
crates/orbital/src/system.rs:
crates/orbital/src/vec2.rs:
