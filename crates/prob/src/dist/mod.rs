//! Parametric probability distributions.
//!
//! The paper ("System Theoretic View on Uncertainties", Sec. II-A) treats
//! probabilistic models as one of the two fundamental model families; this
//! module provides the quantitative machinery for them. Every distribution
//! implements [`Continuous`] or [`Discrete`], both of which are object-safe
//! so heterogeneous collections of input uncertainties can be propagated by
//! the sampling and PCE crates.
//!
//! Aleatory uncertainty (Sec. III-A) is *represented* by these objects; the
//! epistemic uncertainty of their parameters is handled one level up (e.g.
//! by intervals in `sysunc-evidence` or posterior credibility in
//! `sysunc-perception`).

mod bernoulli;
mod beta;
mod binomial;
mod categorical;
mod dirichlet;
mod exponential;
mod gamma;
mod lognormal;
mod mixture;
mod normal;
mod poisson;
mod student_t;
mod triangular;
mod truncated;
mod uniform;
mod weibull;

pub use bernoulli::Bernoulli;
pub use beta::Beta;
pub use binomial::Binomial;
pub use categorical::Categorical;
pub use dirichlet::Dirichlet;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use poisson::Poisson;
pub use student_t::StudentT;
pub use triangular::Triangular;
pub use truncated::TruncatedNormal;
pub use uniform::Uniform;
pub use weibull::Weibull;

use crate::rng::RngCore;

/// Support (domain) of a univariate continuous distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Support {
    /// Lower endpoint (may be `-inf`).
    pub lower: f64,
    /// Upper endpoint (may be `+inf`).
    pub upper: f64,
}

impl Support {
    /// Creates a support interval.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either endpoint is NaN.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(!lower.is_nan() && !upper.is_nan(), "Support: endpoints must not be NaN");
        assert!(lower <= upper, "Support: lower must be <= upper");
        Self { lower, upper }
    }

    /// The whole real line.
    pub fn real_line() -> Self {
        Self { lower: f64::NEG_INFINITY, upper: f64::INFINITY }
    }

    /// The non-negative half line `[0, inf)`.
    pub fn non_negative() -> Self {
        Self { lower: 0.0, upper: f64::INFINITY }
    }

    /// Whether `x` lies in the (closed) support.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// A univariate continuous probability distribution.
///
/// Object-safe: sampling takes a `&mut dyn RngCore` so trait objects can be
/// stored in heterogeneous input vectors for propagation.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Normal};
/// let n = Normal::new(0.0, 1.0)?;
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
pub trait Continuous: std::fmt::Debug + Send + Sync {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural logarithm of the density at `x` (negative infinity outside the
    /// support).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `p` is outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Fills `out[i] = quantile(ps[i])` for a whole chunk of
    /// probabilities — one virtual dispatch per chunk instead of one per
    /// element, the building block of the struct-of-arrays propagation
    /// kernels.
    ///
    /// The default loops over [`Continuous::quantile`]; distributions
    /// with closed-form inverse CDFs override it with straight-line
    /// loops the autovectorizer can handle. Overrides must stay
    /// bit-identical to elementwise `quantile` calls.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ; implementations panic when
    /// any `p` is outside `[0, 1]`.
    fn quantile_fill(&self, ps: &[f64], out: &mut [f64]) {
        assert_eq!(ps.len(), out.len(), "quantile_fill: slice lengths differ");
        for (y, &p) in out.iter_mut().zip(ps) {
            *y = self.quantile(p);
        }
    }

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Standard deviation of the distribution.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The support interval of the distribution.
    fn support(&self) -> Support;

    /// Draws one sample.
    ///
    /// The default implementation uses inverse-transform sampling via
    /// [`Continuous::quantile`]; distributions override it when a faster
    /// exact scheme exists (e.g. Marsaglia–Tsang for the gamma).
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.quantile(uniform_open01(rng))
    }

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Draws samples into a caller-provided slice — the chunked
    /// counterpart of [`Continuous::sample_n`] for struct-of-arrays
    /// buffers that must not reallocate per draw.
    fn sample_fill(&self, rng: &mut dyn RngCore, out: &mut [f64]) {
        for y in out.iter_mut() {
            *y = self.sample(rng);
        }
    }
}

/// A univariate discrete probability distribution over `u64` outcomes.
pub trait Discrete: std::fmt::Debug + Send + Sync {
    /// Probability mass function `P(X = k)`.
    fn pmf(&self, k: u64) -> f64;

    /// Natural logarithm of the mass at `k`.
    fn ln_pmf(&self, k: u64) -> f64 {
        self.pmf(k).ln()
    }

    /// Cumulative distribution function `P(X <= k)`.
    fn cdf(&self, k: u64) -> f64;

    /// Smallest `k` with `cdf(k) >= p`.
    fn quantile(&self, p: f64) -> u64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> u64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws a uniform variate in the *open* interval `(0, 1)`, suitable for
/// inverse-transform sampling (avoids infinities at the endpoints).
pub(crate) fn uniform_open01(rng: &mut dyn RngCore) -> f64 {
    use crate::rng::Rng as _;
    loop {
        let u: f64 = rng.random();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for distribution unit tests.
    use super::*;
    use crate::rng::StdRng;
    use crate::rng::SeedableRng;

    /// Deterministic RNG for reproducible tests.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Checks `quantile(cdf(x)) == x` on a grid inside the support.
    pub fn check_quantile_cdf_round_trip<D: Continuous>(d: &D, xs: &[f64], tol: f64) {
        for &x in xs {
            let p = d.cdf(x);
            if p > 1e-12 && p < 1.0 - 1e-12 {
                let x2 = d.quantile(p);
                assert!(
                    (x2 - x).abs() <= tol * (1.0 + x.abs()),
                    "round trip failed at x={x}: quantile(cdf(x))={x2}"
                );
            }
        }
    }

    /// Checks that the CDF is the integral of the PDF by a crude Simpson rule
    /// between two points.
    pub fn check_pdf_integrates_to_cdf<D: Continuous>(d: &D, a: f64, b: f64, tol: f64) {
        let n = 20_001;
        let h = (b - a) / (n - 1) as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == n - 1 {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc += w * d.pdf(x);
        }
        acc *= h / 3.0;
        let expect = d.cdf(b) - d.cdf(a);
        assert!(
            (acc - expect).abs() < tol,
            "pdf does not integrate to cdf: got {acc}, expected {expect}"
        );
    }

    /// Checks that `quantile_fill` is bit-identical to elementwise
    /// `quantile` calls (the chunked-kernel determinism contract) and
    /// that `sample_fill` matches `sample_n` under the same seed.
    pub fn check_fills_match_scalar<D: Continuous>(d: &D, seed: u64) {
        let ps: Vec<f64> = (0..257).map(|i| (i as f64 + 0.5) / 257.0).collect();
        let mut out = vec![0.0; ps.len()];
        d.quantile_fill(&ps, &mut out);
        for (&p, &y) in ps.iter().zip(&out) {
            assert_eq!(y, d.quantile(p), "quantile_fill diverges at p={p}");
        }
        let expect = d.sample_n(&mut rng(seed), 64);
        let mut got = vec![0.0; 64];
        d.sample_fill(&mut rng(seed), &mut got);
        assert_eq!(got, expect, "sample_fill diverges from sample_n");
    }

    /// Checks sample mean/variance against the analytic values.
    pub fn check_sample_moments<D: Continuous>(d: &D, seed: u64, n: usize, tol_sigmas: f64) {
        let mut r = rng(seed);
        let xs = d.sample_n(&mut r, n);
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let se_mean = d.std_dev() / (n as f64).sqrt();
        assert!(
            (mean - d.mean()).abs() < tol_sigmas * se_mean,
            "sample mean {mean} too far from {} (se {se_mean})",
            d.mean()
        );
        // Crude check on the variance (within 10% for large n).
        assert!(
            (var - d.variance()).abs() < 0.1 * d.variance().max(1e-12),
            "sample variance {var} too far from {}",
            d.variance()
        );
    }
}
