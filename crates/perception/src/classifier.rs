//! Stochastic classifier simulator — the substituted perception chain.
//!
//! The paper's perception chain is "a camera with a machine learning
//! algorithm that classifies objects"; only its probabilistic input-output
//! behaviour matters for the analysis, so we simulate exactly that: a
//! confusion-matrix channel with an optional confidence-score model and a
//! rejection option ("components that can detect uncertainty", Sec. IV).

use crate::error::{PerceptionError, Result};
use crate::world::Truth;
use sysunc_prob::rng::RngCore;
use sysunc_prob::dist::{Beta, Categorical, Continuous as _};

/// A classifier output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Output {
    /// Index of the emitted label (into [`ClassifierModel::labels`]).
    pub label: usize,
    /// Confidence score in `[0, 1]`.
    pub confidence: f64,
}

/// A simulated classifier: per-true-class output distributions plus a
/// confidence model.
///
/// Output labels are the known classes followed by a final `none` label
/// (no detection). Novel objects use a dedicated row — the classifier has
/// never seen them, so this row is where the ontological gap manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierModel {
    labels: Vec<String>,
    rows: Vec<Categorical>,
    novel_row: Categorical,
    correct_score: Beta,
    wrong_score: Beta,
}

impl ClassifierModel {
    /// Creates a classifier.
    ///
    /// `confusion[i][j] = P(label j | true class i)` over
    /// `known_classes.len() + 1` labels (the last is `none`); `novel_row`
    /// gives the label distribution when the object is novel.
    ///
    /// The confidence model: correct outputs draw scores from
    /// `Beta(8, 2)` (high), incorrect ones from `Beta(2, 4)` (low) — the
    /// separation a well-calibrated uncertainty-aware classifier exhibits.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidClassifier`] for shape mismatches
    /// or invalid rows.
    pub fn new(
        known_classes: Vec<String>,
        confusion: Vec<Vec<f64>>,
        novel_row: Vec<f64>,
    ) -> Result<Self> {
        if known_classes.is_empty() || confusion.len() != known_classes.len() {
            return Err(PerceptionError::InvalidClassifier(
                "confusion matrix must have one row per known class".into(),
            ));
        }
        let n_labels = known_classes.len() + 1;
        let mut labels = known_classes;
        labels.push("none".into());
        let rows: Vec<Categorical> = confusion
            .into_iter()
            .map(|row| {
                if row.len() != n_labels {
                    return Err(PerceptionError::InvalidClassifier(format!(
                        "confusion row must have {n_labels} entries"
                    )));
                }
                Categorical::new(row).map_err(|e| PerceptionError::InvalidClassifier(e.to_string()))
            })
            .collect::<Result<_>>()?;
        if novel_row.len() != n_labels {
            return Err(PerceptionError::InvalidClassifier(format!(
                "novel row must have {n_labels} entries"
            )));
        }
        let novel_row = Categorical::new(novel_row)
            .map_err(|e| PerceptionError::InvalidClassifier(e.to_string()))?;
        Ok(Self {
            labels,
            rows,
            novel_row,
            correct_score: Beta::new(8.0, 2.0).expect("fixed valid parameters"), // tidy: allow(panic)
            wrong_score: Beta::new(2.0, 4.0).expect("fixed valid parameters"), // tidy: allow(panic)
        })
    }

    /// A paper-faithful single-camera classifier for the car/pedestrian
    /// world: Table I's probabilities with the epistemic
    /// `car/pedestrian` indecision mapped onto low-confidence outputs.
    ///
    /// Table I's `car/pedestrian` column (0.05) is split evenly between
    /// the two labels (the simulator must emit a concrete label), and the
    /// unknown row's unmodeled 0.1 goes to `none`.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`ClassifierModel::new`].
    pub fn paper_camera() -> Result<Self> {
        Self::new(
            vec!["car".into(), "pedestrian".into()],
            vec![
                vec![0.9 + 0.025, 0.005 + 0.025, 0.045],
                vec![0.005 + 0.025, 0.9 + 0.025, 0.045],
            ],
            vec![0.1, 0.1, 0.8],
        )
    }

    /// Output label names (known classes plus `none`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of known classes.
    pub fn known_len(&self) -> usize {
        self.labels.len() - 1
    }

    /// The `none` label index.
    pub fn none_label(&self) -> usize {
        self.labels.len() - 1
    }

    /// `P(label | true known class)`.
    pub fn likelihood(&self, true_class: usize, label: usize) -> f64 {
        use sysunc_prob::dist::Discrete as _;
        self.rows[true_class].pmf(label as u64)
    }

    /// `P(label | novel object)`.
    pub fn novel_likelihood(&self, label: usize) -> f64 {
        use sysunc_prob::dist::Discrete as _;
        self.novel_row.pmf(label as u64)
    }

    /// Classifies one encounter.
    pub fn classify(&self, truth: Truth, rng: &mut dyn RngCore) -> Output {
        let label = match truth {
            Truth::Known(i) => self.rows[i].sample_index(rng),
            Truth::Novel(_) => self.novel_row.sample_index(rng),
        };
        let correct = matches!(truth, Truth::Known(i) if i == label);
        let confidence = if correct {
            self.correct_score.sample(rng)
        } else {
            self.wrong_score.sample(rng)
        };
        Output { label, confidence }
    }

    /// Estimates the empirical confusion matrix from `n` labeled trials
    /// per known class — the *epistemic* estimate that converges to the
    /// model's true rows as observations accumulate (paper Sec. III-B).
    pub fn empirical_confusion(&self, n_per_class: usize, rng: &mut dyn RngCore) -> Vec<Vec<f64>> {
        let k = self.known_len();
        let mut out = Vec::with_capacity(k);
        for class in 0..k {
            let mut counts = vec![0u64; self.labels.len()];
            for _ in 0..n_per_class {
                let o = self.classify(Truth::Known(class), rng);
                counts[o.label] += 1;
            }
            out.push(counts.iter().map(|&c| c as f64 / n_per_class as f64).collect());
        }
        out
    }
}

/// A classifier with a rejection option: outputs below the confidence
/// threshold are turned into explicit "uncertain" verdicts — uncertainty
/// *tolerance* through self-awareness (paper Sec. IV).
#[derive(Debug, Clone, PartialEq)]
pub struct RejectingClassifier {
    inner: ClassifierModel,
    threshold: f64,
}

/// Verdict of a rejecting classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Confident classification.
    Label(usize),
    /// The classifier flagged its own uncertainty.
    Uncertain,
}

impl RejectingClassifier {
    /// Wraps a classifier with a confidence threshold in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidClassifier`] for thresholds
    /// outside `[0, 1]`.
    pub fn new(inner: ClassifierModel, threshold: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(PerceptionError::InvalidClassifier(format!(
                "threshold must be in [0,1], got {threshold}"
            )));
        }
        Ok(Self { inner, threshold })
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &ClassifierModel {
        &self.inner
    }

    /// Classifies with rejection.
    pub fn classify(&self, truth: Truth, rng: &mut dyn RngCore) -> Verdict {
        let o = self.inner.classify(truth, rng);
        if o.confidence < self.threshold {
            Verdict::Uncertain
        } else {
            Verdict::Label(o.label)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn validation() {
        assert!(ClassifierModel::new(vec![], vec![], vec![]).is_err());
        assert!(ClassifierModel::new(
            vec!["a".into()],
            vec![vec![0.9, 0.1, 0.0]], // 3 labels for 1 class + none = 2
            vec![0.5, 0.5],
        )
        .is_err());
        assert!(ClassifierModel::paper_camera().is_ok());
        let c = ClassifierModel::paper_camera().unwrap();
        assert!(RejectingClassifier::new(c, 1.5).is_err());
    }

    #[test]
    fn classification_frequencies_match_confusion() {
        let c = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0u64; 3];
        for _ in 0..n {
            counts[c.classify(Truth::Known(0), &mut r).label] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.925).abs() < 0.005);
        assert!((counts[2] as f64 / n as f64 - 0.045).abs() < 0.005);
    }

    #[test]
    fn novel_objects_mostly_produce_none() {
        let c = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let n = 50_000;
        let none = (0..n)
            .filter(|_| c.classify(Truth::Novel(3), &mut r).label == c.none_label())
            .count();
        assert!((none as f64 / n as f64 - 0.8).abs() < 0.01);
    }

    #[test]
    fn confidence_separates_correct_from_wrong() {
        let c = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let mut correct = Vec::new();
        let mut wrong = Vec::new();
        for _ in 0..20_000 {
            let o = c.classify(Truth::Known(0), &mut r);
            if o.label == 0 {
                correct.push(o.confidence);
            } else {
                wrong.push(o.confidence);
            }
        }
        let mc = sysunc_prob::stats::mean(&correct).unwrap();
        let mw = sysunc_prob::stats::mean(&wrong).unwrap();
        assert!(mc > 0.7 && mw < 0.45, "correct {mc} vs wrong {mw}");
    }

    #[test]
    fn empirical_confusion_converges_to_model() {
        // Epistemic reduction by observation (paper Sec. III-B).
        let c = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let coarse = c.empirical_confusion(100, &mut r);
        let fine = c.empirical_confusion(100_000, &mut r);
        let err = |est: &Vec<Vec<f64>>| -> f64 {
            est.iter()
                .enumerate()
                .map(|(i, row)| {
                    row.iter()
                        .enumerate()
                        .map(|(j, &p)| (p - c.likelihood(i, j)).abs())
                        .sum::<f64>()
                })
                .sum()
        };
        assert!(err(&fine) < err(&coarse), "{} !< {}", err(&fine), err(&coarse));
        assert!(err(&fine) < 0.02);
    }

    #[test]
    fn rejection_reduces_confident_errors() {
        let c = ClassifierModel::paper_camera().unwrap();
        let rej = RejectingClassifier::new(c.clone(), 0.6).unwrap();
        let mut r = rng();
        let n = 50_000;
        let mut plain_errors = 0u64;
        let mut confident_errors = 0u64;
        let mut rejections = 0u64;
        for _ in 0..n {
            let o = c.classify(Truth::Known(1), &mut r);
            if o.label != 1 {
                plain_errors += 1;
            }
            match rej.classify(Truth::Known(1), &mut r) {
                Verdict::Label(l) if l != 1 => confident_errors += 1,
                Verdict::Uncertain => rejections += 1,
                _ => {}
            }
        }
        assert!(confident_errors * 2 < plain_errors, "{confident_errors} vs {plain_errors}");
        assert!(rejections > 0);
    }
}
