/root/repo/target/debug/deps/sysunc_fta-f59a130b6c0c4ed2.d: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

/root/repo/target/debug/deps/sysunc_fta-f59a130b6c0c4ed2: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

crates/fta/src/lib.rs:
crates/fta/src/common_cause.rs:
crates/fta/src/convert.rs:
crates/fta/src/epistemic_importance.rs:
crates/fta/src/cutset.rs:
crates/fta/src/dynamic.rs:
crates/fta/src/error.rs:
crates/fta/src/tree.rs:
crates/fta/src/uncertain.rs:
