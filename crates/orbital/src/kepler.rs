//! Analytic two-body (Kepler) solution — the closed-form version of the
//! paper's deterministic model A, used to cross-validate the numerical
//! integrators and to serve as an exact reference model in the epistemic
//! experiments.

use crate::error::{OrbitalError, Result};
use crate::system::NBodySystem;
use crate::vec2::Vec2;

/// Analytic propagator for the planar two-body problem (G = 1).
///
/// Constructed from an [`NBodySystem`] snapshot with exactly two point
/// masses; propagates the *relative* orbit with the universal Kepler
/// equation (elliptic case) and reconstructs barycentric positions.
///
/// # Examples
///
/// ```
/// use sysunc_orbital::{KeplerOrbit, NBodySystem};
/// let sys = NBodySystem::two_planets(1.0, 0.5, 2.0)?;
/// let orbit = KeplerOrbit::from_system(&sys)?;
/// assert!((orbit.eccentricity()).abs() < 1e-12); // circular setup
/// # Ok::<(), sysunc_orbital::OrbitalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KeplerOrbit {
    mu: f64,          // G (m1 + m2)
    m1: f64,
    m2: f64,
    a: f64,           // semi-major axis
    e: f64,           // eccentricity
    omega: f64,       // argument of periapsis (angle of periapsis direction)
    t_peri: f64,      // time of periapsis passage relative to epoch
    retrograde: bool, // orbit direction
    barycenter: Vec2,
    barycenter_velocity: Vec2,
}

impl KeplerOrbit {
    /// Builds the analytic orbit from a two-point-mass system snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] unless the system has exactly
    /// two point-mass bodies on a bound (elliptic) relative orbit.
    pub fn from_system(sys: &NBodySystem) -> Result<Self> {
        if sys.bodies.len() != 2 || sys.bodies.iter().any(|b| !b.is_point_mass()) {
            return Err(OrbitalError::InvalidBody(
                "Kepler solution needs exactly two point masses".into(),
            ));
        }
        let (b1, b2) = (&sys.bodies[0], &sys.bodies[1]);
        let m_total = b1.mass + b2.mass;
        let mu = sys.g * m_total;
        // Relative state (body 2 relative to body 1).
        let r = b2.position - b1.position;
        let v = b2.velocity - b1.velocity;
        let rn = r.norm();
        let energy = 0.5 * v.norm_squared() - mu / rn;
        if energy >= 0.0 {
            return Err(OrbitalError::InvalidBody(
                "relative orbit is not bound (elliptic) — analytic propagator unsupported".into(),
            ));
        }
        let a = -mu / (2.0 * energy);
        let h = r.cross(v); // specific angular momentum (z component)
        // Eccentricity vector: e = (v × h)/mu − r̂ in 2-D.
        let e_vec = Vec2::new(v.y * h, -v.x * h) / mu - r / rn;
        let e = e_vec.norm();
        if e >= 1.0 {
            return Err(OrbitalError::InvalidBody("parabolic/hyperbolic orbit".into()));
        }
        let omega = if e > 1e-12 { e_vec.y.atan2(e_vec.x) } else { 0.0 };
        // True anomaly at epoch.
        let theta = r.y.atan2(r.x) - omega;
        // Eccentric anomaly and mean anomaly at epoch.
        let ecc_anom = 2.0 * ((1.0 - e).sqrt() * (theta / 2.0).sin())
            .atan2((1.0 + e).sqrt() * (theta / 2.0).cos());
        let mean_anom = ecc_anom - e * ecc_anom.sin();
        let n = (mu / (a * a * a)).sqrt(); // mean motion
        let retrograde = h < 0.0;
        let mean_anom = if retrograde { -mean_anom } else { mean_anom };
        let t_peri = sys.time - mean_anom / n;
        let barycenter =
            (b1.position * b1.mass + b2.position * b2.mass) / m_total;
        let barycenter_velocity =
            (b1.velocity * b1.mass + b2.velocity * b2.mass) / m_total;
        Ok(Self {
            mu,
            m1: b1.mass,
            m2: b2.mass,
            a,
            e,
            omega,
            t_peri,
            retrograde,
            barycenter,
            barycenter_velocity,
        })
    }

    /// Semi-major axis of the relative orbit.
    pub fn semi_major_axis(&self) -> f64 {
        self.a
    }

    /// Eccentricity of the relative orbit.
    pub fn eccentricity(&self) -> f64 {
        self.e
    }

    /// Orbital period.
    pub fn period(&self) -> f64 {
        2.0 * std::f64::consts::PI * (self.a * self.a * self.a / self.mu).sqrt()
    }

    /// Solves Kepler's equation `M = E - e sin E` by Newton iteration.
    fn eccentric_anomaly(&self, mean_anom: f64) -> f64 {
        let m = mean_anom.rem_euclid(2.0 * std::f64::consts::PI);
        let mut ecc = if self.e > 0.8 { std::f64::consts::PI } else { m };
        for _ in 0..50 {
            let f = ecc - self.e * ecc.sin() - m;
            let fp = 1.0 - self.e * ecc.cos();
            let step = f / fp;
            ecc -= step;
            if step.abs() < 1e-14 {
                break;
            }
        }
        ecc
    }

    /// Barycentric positions `(body 1, body 2)` at absolute time `t`.
    pub fn positions_at(&self, t: f64) -> (Vec2, Vec2) {
        let n = (self.mu / (self.a * self.a * self.a)).sqrt();
        let mut mean_anom = n * (t - self.t_peri);
        if self.retrograde {
            mean_anom = -mean_anom;
        }
        let ecc = self.eccentric_anomaly(mean_anom);
        // Position in the orbital (periapsis-aligned) frame.
        let x = self.a * (ecc.cos() - self.e);
        let y = self.a * (1.0 - self.e * self.e).sqrt() * ecc.sin();
        let y = if self.retrograde { -y } else { y };
        let rel = Vec2::new(x, y).rotated(self.omega);
        // Split about the (drifting) barycenter.
        let m_total = self.m1 + self.m2;
        let bary = self.barycenter + self.barycenter_velocity * t;
        let p1 = bary - rel * (self.m2 / m_total);
        let p2 = bary + rel * (self.m1 / m_total);
        (p1, p2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::Integrator;

    #[test]
    fn rejects_bad_systems() {
        let mut sys = NBodySystem::two_planets(1.0, 1.0, 2.0).unwrap();
        sys.inject_third_planet(0.1, 5.0).unwrap();
        assert!(KeplerOrbit::from_system(&sys).is_err());
        // Unbound: double the velocity to escape.
        let mut fast = NBodySystem::two_planets(1.0, 1.0, 2.0).unwrap();
        for b in &mut fast.bodies {
            b.velocity = b.velocity * 3.0;
        }
        assert!(KeplerOrbit::from_system(&fast).is_err());
    }

    #[test]
    fn circular_orbit_elements() {
        let sys = NBodySystem::two_planets(1.0, 0.5, 2.0).unwrap();
        let orbit = KeplerOrbit::from_system(&sys).unwrap();
        assert!(orbit.eccentricity() < 1e-12);
        assert!((orbit.semi_major_axis() - 2.0).abs() < 1e-12);
        let expect_period = NBodySystem::circular_period(1.0, 0.5, 2.0);
        assert!((orbit.period() - expect_period).abs() < 1e-10);
    }

    #[test]
    fn analytic_matches_initial_conditions() {
        let sys = NBodySystem::two_planets(1.0, 0.4, 1.5).unwrap();
        let orbit = KeplerOrbit::from_system(&sys).unwrap();
        let (p1, p2) = orbit.positions_at(0.0);
        assert!(p1.distance(sys.bodies[0].position) < 1e-10);
        assert!(p2.distance(sys.bodies[1].position) < 1e-10);
    }

    #[test]
    fn analytic_matches_numerical_integration_circular() {
        let mut sys = NBodySystem::two_planets(1.0, 0.4, 1.5).unwrap();
        let orbit = KeplerOrbit::from_system(&sys).unwrap();
        let dt = orbit.period() / 5_000.0;
        for step in 1..=5_000 {
            Integrator::Rk4.step(&mut sys, dt);
            if step % 500 == 0 {
                let (p1, p2) = orbit.positions_at(sys.time);
                assert!(
                    p1.distance(sys.bodies[0].position) < 1e-6,
                    "step {step}: body 1 diverged by {}",
                    p1.distance(sys.bodies[0].position)
                );
                assert!(p2.distance(sys.bodies[1].position) < 1e-6);
            }
        }
    }

    #[test]
    fn analytic_matches_numerical_integration_eccentric() {
        // Perturb to an eccentric orbit by slowing body 2 down.
        let mut sys = NBodySystem::two_planets(1.0, 0.2, 2.0).unwrap();
        sys.bodies[1].velocity = sys.bodies[1].velocity * 0.8;
        sys.bodies[0].velocity = sys.bodies[0].velocity * 0.8;
        let orbit = KeplerOrbit::from_system(&sys).unwrap();
        assert!(orbit.eccentricity() > 0.1 && orbit.eccentricity() < 1.0);
        let dt = orbit.period() / 20_000.0;
        for _ in 0..20_000 {
            Integrator::Rk4.step(&mut sys, dt);
        }
        let (p1, _) = orbit.positions_at(sys.time);
        assert!(
            p1.distance(sys.bodies[0].position) < 1e-4,
            "after one eccentric period: {}",
            p1.distance(sys.bodies[0].position)
        );
    }

    #[test]
    fn period_recurrence() {
        let sys = NBodySystem::two_planets(2.0, 1.0, 3.0).unwrap();
        let orbit = KeplerOrbit::from_system(&sys).unwrap();
        let (a0, b0) = orbit.positions_at(0.0);
        let (a1, b1) = orbit.positions_at(orbit.period());
        // Barycenter is static for this setup, so positions recur exactly.
        assert!(a0.distance(a1) < 1e-9);
        assert!(b0.distance(b1) < 1e-9);
    }
}
