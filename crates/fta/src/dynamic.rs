//! Dynamic fault trees (Dugan et al., the paper's reference \[33\]):
//! sequence-dependent gates quantified by Monte Carlo simulation of
//! component failure timelines.

use crate::error::{FtaError, Result};
use sysunc_prob::rng::RngCore;
use std::sync::Arc;
use sysunc_prob::dist::Continuous;
use sysunc_prob::stats::RunningStats;

/// Reference to a node of a dynamic fault tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynRef {
    /// A timed basic event by index.
    Basic(usize),
    /// A dynamic gate by index.
    Gate(usize),
}

/// Dynamic gate semantics over failure *times*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynGateKind {
    /// Fails when all inputs have failed (time = max).
    And,
    /// Fails when any input fails (time = min).
    Or,
    /// Priority-AND: fails at the last input's failure time, but only if
    /// inputs fail in left-to-right order; otherwise never.
    PriorityAnd,
    /// Cold spare: the first input is primary; each further input starts
    /// (cold) when its predecessor fails. Fails when the last spare fails
    /// (times accumulate).
    ColdSpare,
    /// Functional dependency: the first input is the trigger; the gate
    /// fails when the trigger fails OR all dependent inputs fail. (The
    /// trigger's failure instantly fails all dependents.)
    FunctionalDependency,
}

/// A timed basic event with a lifetime distribution.
#[derive(Clone)]
pub struct TimedEvent {
    /// Event name.
    pub name: String,
    /// Time-to-failure distribution.
    pub lifetime: Arc<dyn Continuous>,
}

impl std::fmt::Debug for TimedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedEvent").field("name", &self.name).finish_non_exhaustive()
    }
}

/// A dynamic gate.
#[derive(Debug, Clone)]
pub struct DynGate {
    /// Gate name.
    pub name: String,
    /// Semantics.
    pub kind: DynGateKind,
    /// Ordered inputs (order matters for PAND / SPARE / FDEP).
    pub inputs: Vec<DynRef>,
}

/// A dynamic fault tree over timed basic events.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sysunc_prob::rng::SeedableRng;
/// use sysunc_fta::{DynGateKind, DynamicFaultTree};
/// use sysunc_prob::dist::Exponential;
///
/// let mut dft = DynamicFaultTree::new();
/// let a = dft.add_event("primary", Arc::new(Exponential::new(1.0)?));
/// let b = dft.add_event("spare", Arc::new(Exponential::new(1.0)?));
/// let top = dft.add_gate("spare pair", DynGateKind::ColdSpare, vec![a, b])?;
/// dft.set_top(top)?;
/// let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(5);
/// let u = dft.unreliability(1.0, 20_000, &mut rng)?;
/// // Cold spare: T = T1 + T2 ~ Erlang(2): F(1) = 1 - 2e^{-1} ≈ 0.264.
/// assert!((u.mean() - 0.2642).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicFaultTree {
    events: Vec<TimedEvent>,
    gates: Vec<DynGate>,
    top: Option<DynRef>,
}

impl DynamicFaultTree {
    /// Creates an empty dynamic fault tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a timed basic event.
    pub fn add_event<S: Into<String>>(&mut self, name: S, lifetime: Arc<dyn Continuous>) -> DynRef {
        self.events.push(TimedEvent { name: name.into(), lifetime });
        DynRef::Basic(self.events.len() - 1)
    }

    /// Adds a dynamic gate over existing nodes.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidGate`] for empty inputs, dangling
    /// references, or gates whose kind needs at least two inputs.
    pub fn add_gate<S: Into<String>>(
        &mut self,
        name: S,
        kind: DynGateKind,
        inputs: Vec<DynRef>,
    ) -> Result<DynRef> {
        let name = name.into();
        if inputs.is_empty() {
            return Err(FtaError::InvalidGate(format!("gate '{name}' has no inputs")));
        }
        if matches!(
            kind,
            DynGateKind::PriorityAnd | DynGateKind::ColdSpare | DynGateKind::FunctionalDependency
        ) && inputs.len() < 2
        {
            return Err(FtaError::InvalidGate(format!(
                "gate '{name}' needs at least two inputs"
            )));
        }
        for input in &inputs {
            if !self.node_exists(*input) {
                return Err(FtaError::InvalidGate(format!(
                    "gate '{name}' references a missing node"
                )));
            }
        }
        self.gates.push(DynGate { name, kind, inputs });
        Ok(DynRef::Gate(self.gates.len() - 1))
    }

    /// Sets the top event.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidGate`] for dangling references.
    pub fn set_top(&mut self, node: DynRef) -> Result<()> {
        if !self.node_exists(node) {
            return Err(FtaError::InvalidGate("top references a missing node".into()));
        }
        self.top = Some(node);
        Ok(())
    }

    fn node_exists(&self, node: DynRef) -> bool {
        match node {
            DynRef::Basic(i) => i < self.events.len(),
            DynRef::Gate(i) => i < self.gates.len(),
        }
    }

    /// Timed basic events.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Samples one top-event failure time (possibly `+inf` for PAND gates
    /// whose ordering condition never holds).
    fn sample_top_time(&self, rng: &mut dyn RngCore) -> Result<f64> {
        let top = self.top.ok_or(FtaError::NoTopEvent)?;
        let times: Vec<f64> = self.events.iter().map(|e| e.lifetime.sample(rng)).collect();
        Ok(self.node_time(top, &times, rng))
    }

    fn node_time(&self, node: DynRef, times: &[f64], rng: &mut dyn RngCore) -> f64 {
        match node {
            DynRef::Basic(i) => times[i],
            DynRef::Gate(g) => {
                let gate = &self.gates[g];
                let input_times: Vec<f64> =
                    gate.inputs.iter().map(|&c| self.node_time(c, times, rng)).collect();
                match gate.kind {
                    DynGateKind::Or => input_times.iter().copied().fold(f64::INFINITY, f64::min),
                    DynGateKind::And => {
                        input_times.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                    }
                    DynGateKind::PriorityAnd => {
                        let ordered = input_times.windows(2).all(|w| w[0] <= w[1]);
                        if ordered {
                            *input_times.last().expect("non-empty inputs") // tidy: allow(panic)
                        } else {
                            f64::INFINITY
                        }
                    }
                    DynGateKind::ColdSpare => {
                        // Cold spares accumulate: each successor only starts
                        // aging when its predecessor dies. Fresh lifetimes
                        // are drawn for spares at activation (cold).
                        let mut t = input_times[0];
                        for input in &gate.inputs[1..] {
                            let spare_life = match *input {
                                DynRef::Basic(i) => self.events[i].lifetime.sample(rng),
                                DynRef::Gate(_) => self.node_time(*input, times, rng),
                            };
                            t += spare_life;
                        }
                        t
                    }
                    DynGateKind::FunctionalDependency => {
                        let trigger = input_times[0];
                        let dependents =
                            input_times[1..].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        trigger.min(dependents)
                    }
                }
            }
        }
    }

    /// Estimates the unreliability `P(T_top <= mission_time)` with `n`
    /// Monte Carlo trials; returns the indicator statistics (mean =
    /// probability estimate).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::NoTopEvent`] when no top is set or
    /// [`FtaError::InvalidEvent`] for `n == 0`.
    pub fn unreliability(
        &self,
        mission_time: f64,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<RunningStats> {
        if n == 0 {
            return Err(FtaError::InvalidEvent("n must be > 0".into()));
        }
        let mut stats = RunningStats::new();
        for _ in 0..n {
            let t = self.sample_top_time(rng)?;
            stats.push(if t <= mission_time { 1.0 } else { 0.0 });
        }
        Ok(stats)
    }

    /// Estimates the mean time to failure over `n` trials, ignoring
    /// non-failing (infinite-time) samples; returns `(mttf_stats,
    /// fraction_failing)`.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicFaultTree::unreliability`].
    pub fn mean_time_to_failure(
        &self,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(RunningStats, f64)> {
        if n == 0 {
            return Err(FtaError::InvalidEvent("n must be > 0".into()));
        }
        let mut stats = RunningStats::new();
        let mut finite = 0usize;
        for _ in 0..n {
            let t = self.sample_top_time(rng)?;
            if t.is_finite() {
                stats.push(t);
                finite += 1;
            }
        }
        Ok((stats, finite as f64 / n as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;
    use sysunc_prob::dist::Exponential;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4242)
    }

    fn expo(rate: f64) -> Arc<dyn Continuous> {
        Arc::new(Exponential::new(rate).unwrap())
    }

    #[test]
    fn or_gate_matches_min_of_exponentials() {
        // min(Exp(1), Exp(2)) ~ Exp(3).
        let mut dft = DynamicFaultTree::new();
        let a = dft.add_event("a", expo(1.0));
        let b = dft.add_event("b", expo(2.0));
        let top = dft.add_gate("or", DynGateKind::Or, vec![a, b]).unwrap();
        dft.set_top(top).unwrap();
        let u = dft.unreliability(0.5, 100_000, &mut rng()).unwrap();
        let expect = 1.0 - (-1.5f64).exp();
        assert!((u.mean() - expect).abs() < 0.01, "{} vs {expect}", u.mean());
    }

    #[test]
    fn and_gate_matches_max_distribution() {
        // P(max(T1, T2) <= t) = (1 - e^-t)² for two Exp(1).
        let mut dft = DynamicFaultTree::new();
        let a = dft.add_event("a", expo(1.0));
        let b = dft.add_event("b", expo(1.0));
        let top = dft.add_gate("and", DynGateKind::And, vec![a, b]).unwrap();
        dft.set_top(top).unwrap();
        let u = dft.unreliability(1.0, 100_000, &mut rng()).unwrap();
        let expect = (1.0 - (-1.0f64).exp()).powi(2);
        assert!((u.mean() - expect).abs() < 0.01);
    }

    #[test]
    fn pand_is_half_of_and_for_iid_inputs() {
        // For iid inputs, the ordering A-before-B holds with probability
        // 1/2, so PAND unreliability at t -> infinity tends to 1/2.
        let mut dft = DynamicFaultTree::new();
        let a = dft.add_event("a", expo(1.0));
        let b = dft.add_event("b", expo(1.0));
        let top = dft.add_gate("pand", DynGateKind::PriorityAnd, vec![a, b]).unwrap();
        dft.set_top(top).unwrap();
        let u = dft.unreliability(50.0, 100_000, &mut rng()).unwrap();
        assert!((u.mean() - 0.5).abs() < 0.01, "{}", u.mean());
    }

    #[test]
    fn cold_spare_beats_hot_redundancy() {
        // Cold spare T1+T2 stochastically dominates max(T1, T2): lower
        // unreliability at any mission time.
        let mission = 1.5;
        let mut cold = DynamicFaultTree::new();
        let a = cold.add_event("a", expo(1.0));
        let b = cold.add_event("b", expo(1.0));
        let top = cold.add_gate("csp", DynGateKind::ColdSpare, vec![a, b]).unwrap();
        cold.set_top(top).unwrap();
        let mut hot = DynamicFaultTree::new();
        let c = hot.add_event("a", expo(1.0));
        let d = hot.add_event("b", expo(1.0));
        let t2 = hot.add_gate("and", DynGateKind::And, vec![c, d]).unwrap();
        hot.set_top(t2).unwrap();
        let uc = cold.unreliability(mission, 100_000, &mut rng()).unwrap().mean();
        let uh = hot.unreliability(mission, 100_000, &mut rng()).unwrap().mean();
        assert!(uc < uh, "cold spare {uc} should beat hot pair {uh}");
        // Erlang(2) CDF at 1.5: 1 - e^-1.5 (1 + 1.5).
        let expect = 1.0 - (-1.5f64).exp() * 2.5;
        assert!((uc - expect).abs() < 0.01);
    }

    #[test]
    fn fdep_trigger_fails_dependents() {
        // FDEP(trigger, dep): fails at min(trigger, dep).
        let mut dft = DynamicFaultTree::new();
        let t = dft.add_event("trigger", expo(5.0));
        let d = dft.add_event("dep", expo(0.1));
        let top =
            dft.add_gate("fdep", DynGateKind::FunctionalDependency, vec![t, d]).unwrap();
        dft.set_top(top).unwrap();
        // Dominated by the fast trigger: ~ Exp(5.1).
        let u = dft.unreliability(0.2, 100_000, &mut rng()).unwrap();
        let expect = 1.0 - (-0.2 * 5.1f64).exp();
        assert!((u.mean() - expect).abs() < 0.01);
    }

    #[test]
    fn mttf_of_cold_spare_pair() {
        let mut dft = DynamicFaultTree::new();
        let a = dft.add_event("a", expo(2.0));
        let b = dft.add_event("b", expo(2.0));
        let top = dft.add_gate("csp", DynGateKind::ColdSpare, vec![a, b]).unwrap();
        dft.set_top(top).unwrap();
        let (mttf, frac) = dft.mean_time_to_failure(100_000, &mut rng()).unwrap();
        assert_eq!(frac, 1.0);
        assert!((mttf.mean() - 1.0).abs() < 0.02); // 2 × (1/2)
    }

    #[test]
    fn validation() {
        let mut dft = DynamicFaultTree::new();
        let a = dft.add_event("a", expo(1.0));
        assert!(dft.add_gate("g", DynGateKind::And, vec![]).is_err());
        assert!(dft.add_gate("g", DynGateKind::PriorityAnd, vec![a]).is_err());
        assert!(dft
            .add_gate("g", DynGateKind::And, vec![DynRef::Basic(9)])
            .is_err());
        assert!(dft.set_top(DynRef::Gate(0)).is_err());
        assert!(dft.unreliability(1.0, 100, &mut rng()).is_err()); // no top
        dft.set_top(a).unwrap();
        assert!(dft.unreliability(1.0, 0, &mut rng()).is_err());
    }
}
