//! Beta distribution.

use super::{Continuous, Gamma, Support};
use crate::error::{ProbError, Result};
use crate::special::{inv_reg_inc_beta, ln_beta, reg_inc_beta};
use crate::rng::RngCore;

/// Beta distribution on `[0, 1]` with shape parameters `alpha` and `beta`.
///
/// The conjugate prior for Bernoulli/binomial observation processes; used by
/// the perception crate to track *epistemic* credibility of classification
/// probabilities as field observations accumulate (paper Sec. III-B: "our
/// knowledge increases and the epistemic uncertainty decreases with every
/// observation").
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Beta, Continuous};
/// let b = Beta::new(2.0, 5.0)?;
/// assert!((b.mean() - 2.0 / 7.0).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a beta distribution with shapes `alpha`, `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if either shape is not
    /// strictly positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !alpha.is_finite() || !beta.is_finite() || alpha <= 0.0 || beta <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Beta requires alpha > 0 and beta > 0, got ({alpha}, {beta})"
            )));
        }
        Ok(Self { alpha, beta })
    }

    /// First shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Bayesian update with `successes` and `failures` Bernoulli
    /// observations (conjugacy).
    pub fn updated(&self, successes: u64, failures: u64) -> Self {
        Self { alpha: self.alpha + successes as f64, beta: self.beta + failures as f64 }
    }

    /// Width of the central credible interval at level `level` (e.g. 0.95) —
    /// a scalar measure of remaining epistemic uncertainty.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn credible_width(&self, level: f64) -> f64 {
        assert!(level > 0.0 && level < 1.0, "credible_width: level in (0,1), got {level}");
        let tail = 0.5 * (1.0 - level);
        self.quantile(1.0 - tail) - self.quantile(tail)
    }
}

impl Continuous for Beta {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        if (x == 0.0 && self.alpha < 1.0) || (x == 1.0 && self.beta < 1.0) { // tidy: allow(float-eq)
            return f64::INFINITY;
        }
        if (x == 0.0 && self.alpha > 1.0) || (x == 1.0 && self.beta > 1.0) { // tidy: allow(float-eq)
            return f64::NEG_INFINITY;
        }
        (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            reg_inc_beta(self.alpha, self.beta, x)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        inv_reg_inc_beta(self.alpha, self.beta, p)
    }

    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    fn support(&self) -> Support {
        Support::new(0.0, 1.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // X = G1 / (G1 + G2) with Gi ~ Gamma(shape_i, 1).
        let g1 = Gamma::new(self.alpha, 1.0).expect("validated").sample(rng); // tidy: allow(panic)
        let g2 = Gamma::new(self.beta, 1.0).expect("validated").sample(rng); // tidy: allow(panic)
        g1 / (g1 + g2)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
    }

    #[test]
    fn uniform_special_case() {
        let b = Beta::new(1.0, 1.0).unwrap();
        for &x in &[0.1, 0.5, 0.9] {
            assert!((b.pdf(x) - 1.0).abs() < 1e-12);
            assert!((b.cdf(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_round_trip() {
        let b = Beta::new(2.5, 4.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&b, &[0.05, 0.2, 0.5, 0.8], 1e-9);
    }

    #[test]
    fn conjugate_update_shrinks_credible_width() {
        let prior = Beta::new(1.0, 1.0).unwrap();
        let w0 = prior.credible_width(0.95);
        let post = prior.updated(90, 10);
        let w1 = post.credible_width(0.95);
        assert!(w1 < w0 / 3.0, "epistemic width must shrink: {w0} -> {w1}");
        assert!((post.mean() - 91.0 / 102.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let b = Beta::new(3.0, 2.0).unwrap();
        testutil::check_pdf_integrates_to_cdf(&b, 0.05, 0.95, 1e-10);
    }

    #[test]
    fn sampling_moments() {
        let b = Beta::new(2.0, 6.0).unwrap();
        testutil::check_sample_moments(&b, 43, 300_000, 5.0);
    }
}
