//! The lint rule set. Each submodule is one rule; [`all`] returns the
//! per-file gate in the order findings should be investigated, and
//! [`workspace`] the cross-file rules that need the symbol table.

mod doc;
mod error_impl;
mod float_eq;
mod lock_hygiene;
mod lock_order;
mod manifest;
mod panic;
mod panic_path;
mod prob_contract;
mod pub_reexport;
mod seed_discipline;
mod suite_error;
mod unused_allow;

pub use doc::DocCoverage;
pub use error_impl::ErrorImpl;
pub use float_eq::FloatEq;
pub use lock_hygiene::LockHygiene;
pub use lock_order::LockOrderCycle;
pub use manifest::ManifestHygiene;
pub use panic::PanicFreedom;
pub use panic_path::PanicPath;
pub use prob_contract::ProbContract;
pub use pub_reexport::PubReexport;
pub use seed_discipline::{SeedDiscipline, SeedDisciplineDrift, ENTROPY, PROPCHECK_SEEDED, SEEDED};
pub use suite_error::SuiteError;
pub use unused_allow::{unused_allow_pass, UNUSED_ALLOW_EXPLAIN, UNUSED_ALLOW_NAME};

use crate::lexer::TokenKind;
use crate::{Lint, SourceFile, WorkspaceLint};

/// Every per-file rule the gate enforces.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(ManifestHygiene),
        Box::new(PanicFreedom),
        Box::new(ProbContract),
        Box::new(ErrorImpl),
        Box::new(DocCoverage),
        Box::new(SuiteError),
        Box::new(SeedDiscipline),
        Box::new(LockHygiene),
    ]
}

/// The cross-file rules, run once over the whole workspace.
/// `float-eq` moved here when its type flow grew cross-file (the called
/// function's return type lives in another file); `lock-order-cycle`
/// and `panic-path` propagate CFG facts through resolved call edges.
pub fn workspace() -> Vec<Box<dyn WorkspaceLint>> {
    vec![
        Box::new(FloatEq),
        Box::new(PubReexport),
        Box::new(SeedDisciplineDrift),
        Box::new(LockOrderCycle),
        Box::new(PanicPath),
    ]
}

/// Every rule name the gate knows, in report order. `allow(...)`
/// comments naming anything else are flagged by `unused-allow`.
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all().iter().map(|l| l.name()).collect();
    names.extend(workspace().iter().map(|l| l.name()));
    names.push(UNUSED_ALLOW_NAME);
    names
}

/// The `--explain` text for a rule, if the name is known.
pub fn explain(rule: &str) -> Option<&'static str> {
    if rule == UNUSED_ALLOW_NAME {
        return Some(UNUSED_ALLOW_EXPLAIN);
    }
    all()
        .iter()
        .find(|l| l.name() == rule)
        .map(|l| l.explain())
        .or_else(|| workspace().iter().find(|l| l.name() == rule).map(|l| l.explain()))
}

/// `(name, one-line summary)` for every rule, in report order — the
/// body of a bare `--explain` listing. The summary is the explanation's
/// first sentence: clipped at the first period that ends a word (a dot
/// inside `Cargo.toml` or `` `.unwrap()` `` is not a sentence end).
pub fn summaries() -> Vec<(&'static str, &'static str)> {
    rule_names()
        .into_iter()
        .map(|name| {
            let text = explain(name).unwrap_or_default();
            let end = text
                .char_indices()
                .find(|&(i, c)| {
                    c == '.' && text[i + 1..].chars().next().is_none_or(char::is_whitespace)
                })
                .map(|(i, _)| i + 1)
                .unwrap_or(text.len());
            (name, &text[..end])
        })
        .collect()
}

/// The `///` / `/**` doc comments in the contiguous doc-and-attribute
/// block directly above token `idx`, walking backwards over attributes
/// (`#[...]`) and plain comments. Module docs (`//!`) do not count as
/// item docs.
pub(crate) fn doc_comments_above<'a>(file: &'a SourceFile, mut i: usize) -> Vec<&'a str> {
    let tokens = file.tokens();
    let mut out = Vec::new();
    while i > 0 {
        let t = &tokens[i - 1];
        if t.is_comment() {
            let text = file.text(t);
            if text.starts_with("///") || text.starts_with("/**") {
                out.push(text);
            }
            i -= 1;
            continue;
        }
        // Walk backwards over one attribute: `#` `[` … `]`.
        if t.kind == TokenKind::Punct && file.text(t) == "]" {
            let mut depth = 1i64;
            let mut j = i - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                let u = &tokens[j];
                if u.kind == TokenKind::Punct {
                    match file.text(u) {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
            }
            if depth == 0
                && j > 0
                && tokens[j - 1].kind == TokenKind::Punct
                && file.text(&tokens[j - 1]) == "#"
            {
                i = j - 1;
                continue;
            }
        }
        break;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_stable() {
        let names = rule_names();
        assert_eq!(
            names,
            vec![
                "manifest",
                "panic",
                "prob-contract",
                "error-impl",
                "doc",
                "suite-error",
                "seed-discipline",
                "lock-hygiene",
                "float-eq",
                "pub-reexport",
                "seed-discipline-drift",
                "lock-order-cycle",
                "panic-path",
                "unused-allow",
            ]
        );
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn every_rule_has_a_nonempty_explanation() {
        for name in rule_names() {
            let text = explain(name).expect("known rule");
            assert!(text.len() > 40, "explanation for `{name}` is too thin");
        }
        assert!(explain("no-such-rule").is_none());
    }

    #[test]
    fn summaries_cover_every_rule_with_one_line_each() {
        let sums = summaries();
        assert_eq!(
            sums.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            rule_names(),
            "summary listing order matches report order"
        );
        for (name, line) in sums {
            assert!(!line.is_empty(), "summary for `{name}` is empty");
            assert!(line.ends_with('.'), "summary for `{name}` is not a sentence");
            assert!(!line.contains('\n'), "summary for `{name}` spans lines");
        }
    }

    #[test]
    fn doc_comments_above_walks_attributes_and_skips_module_docs() {
        use crate::FileKind;
        let file = crate::SourceFile::new(
            "crates/x/src/lib.rs",
            "//! module docs\n\
             /// item docs\n\
             #[derive(Debug)]\n\
             // plain note\n\
             pub struct S;\n",
            FileKind::RustLibrary,
        );
        let pub_idx = file
            .tokens()
            .iter()
            .position(|t| file.text(t) == "pub")
            .expect("pub token");
        let docs = doc_comments_above(&file, pub_idx);
        assert_eq!(docs, vec!["/// item docs"], "module docs and plain comments excluded");
    }
}
