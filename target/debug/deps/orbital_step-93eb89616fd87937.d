/root/repo/target/debug/deps/orbital_step-93eb89616fd87937.d: crates/bench/benches/orbital_step.rs

/root/repo/target/debug/deps/orbital_step-93eb89616fd87937: crates/bench/benches/orbital_step.rs

crates/bench/benches/orbital_step.rs:
