//! Model-function adapters: perception-chain risk exposed as a
//! deterministic model `y = f(x)` pluggable into any propagation engine
//! that consumes the [`Model`] trait (the suite's unified `Propagator`
//! layer).

use crate::classifier::ClassifierModel;
use crate::error::Result;
use sysunc_sampling::Model;

/// Analytic missed-hazard rate of a classifier under world-mix
/// uncertainty.
///
/// Input vector `x = [p_pedestrian, p_novel]` (each clamped to `[0, 1]`):
/// the uncertain share of pedestrians and of novel objects in the world.
/// The output is the probability that a safety-relevant object is not
/// recognized as what it is — a true pedestrian labeled anything but
/// `pedestrian`, plus a novel object labeled as a *known* class (the
/// ontological hazard of Table I's unknown row):
///
/// `y = p_ped · (1 − L(ped, ped)) + p_novel · (1 − L(novel, none))`
///
/// Deterministic: computed from the confusion-matrix likelihoods, not by
/// simulation, so every propagation engine sees the same function.
#[derive(Debug, Clone)]
pub struct MissedHazardModel {
    classifier: ClassifierModel,
    pedestrian_class: usize,
}

impl MissedHazardModel {
    /// Wraps a classifier; `pedestrian_class` is the index of the
    /// safety-critical known class.
    pub fn new(classifier: ClassifierModel, pedestrian_class: usize) -> Self {
        let pedestrian_class = pedestrian_class.min(classifier.known_len().saturating_sub(1));
        Self { classifier, pedestrian_class }
    }

    /// The paper's Table I camera with `pedestrian` as the critical class.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; mirrors
    /// [`ClassifierModel::paper_camera`].
    pub fn paper_camera() -> Result<Self> {
        Ok(Self::new(ClassifierModel::paper_camera()?, 1))
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &ClassifierModel {
        &self.classifier
    }
}

impl Model for MissedHazardModel {
    fn eval(&self, x: &[f64]) -> f64 {
        let p_ped = x.first().copied().unwrap_or(0.0).clamp(0.0, 1.0);
        let p_novel = x.get(1).copied().unwrap_or(0.0).clamp(0.0, 1.0);
        let ped = self.pedestrian_class;
        let miss_ped = 1.0 - self.classifier.likelihood(ped, ped);
        let novel_as_known =
            1.0 - self.classifier.novel_likelihood(self.classifier.none_label());
        p_ped * miss_ped + p_novel * novel_as_known
    }

    fn eval_batch(&self, columns: &[&[f64]], out: &mut [f64]) {
        // The confusion-matrix likelihoods are constant across a batch:
        // hoist them once, then the remaining clamp/multiply-add loop is
        // pure vectorizable arithmetic. Same op order as `eval`, so
        // results are bit-identical.
        let ped = self.pedestrian_class;
        let miss_ped = 1.0 - self.classifier.likelihood(ped, ped);
        let novel_as_known =
            1.0 - self.classifier.novel_likelihood(self.classifier.none_label());
        let ped_col = columns.first().copied();
        let novel_col = columns.get(1).copied();
        for (i, y) in out.iter_mut().enumerate() {
            let p_ped = ped_col.map_or(0.0, |c| c[i]).clamp(0.0, 1.0);
            let p_novel = novel_col.map_or(0.0, |c| c[i]).clamp(0.0, 1.0);
            *y = p_ped * miss_ped + p_novel * novel_as_known;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_camera_rates_match_table_one() {
        let m = MissedHazardModel::paper_camera().unwrap();
        // Table I: P(ped -> ped) = 0.925, novel -> none = 0.8.
        let y = m.eval(&[1.0, 0.0]);
        assert!((y - 0.075).abs() < 1e-12, "miss_ped: {y}");
        let y = m.eval(&[0.0, 1.0]);
        assert!((y - 0.2).abs() < 1e-12, "novel_as_known: {y}");
        // Paper world mix: 0.3 pedestrians, 0.1 novel.
        let y = m.eval(&[0.3, 0.1]);
        assert!((y - (0.3 * 0.075 + 0.1 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn inputs_are_clamped_and_missing_dims_default_to_zero() {
        let m = MissedHazardModel::paper_camera().unwrap();
        assert!((m.eval(&[2.0, -1.0]) - m.eval(&[1.0, 0.0])).abs() < 1e-12);
        assert!(m.eval(&[]) < 1e-12);
    }

    #[test]
    fn eval_batch_bit_identical_to_scalar_eval() {
        let m = MissedHazardModel::paper_camera().unwrap();
        let n = 41;
        let ped: Vec<f64> = (0..n).map(|i| -0.2 + 1.4 * i as f64 / n as f64).collect();
        let novel: Vec<f64> = (0..n).map(|i| 1.2 - 1.4 * i as f64 / n as f64).collect();
        let views: Vec<&[f64]> = vec![&ped, &novel];
        let mut out = vec![0.0; n];
        m.eval_batch(&views, &mut out);
        for i in 0..n {
            let y = m.eval(&[ped[i], novel[i]]);
            assert_eq!(out[i].to_bits(), y.to_bits(), "sample {i}");
        }
        // Single-column batch mirrors the missing-dimension default.
        let views1: Vec<&[f64]> = vec![&ped];
        m.eval_batch(&views1, &mut out);
        for i in 0..n {
            assert_eq!(out[i].to_bits(), m.eval(&[ped[i]]).to_bits());
        }
    }
}
