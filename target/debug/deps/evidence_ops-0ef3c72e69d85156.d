/root/repo/target/debug/deps/evidence_ops-0ef3c72e69d85156.d: crates/bench/benches/evidence_ops.rs

/root/repo/target/debug/deps/evidence_ops-0ef3c72e69d85156: crates/bench/benches/evidence_ops.rs

crates/bench/benches/evidence_ops.rs:
