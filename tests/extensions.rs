//! Integration tests for the extension features: ranked-node CPTs,
//! d-separation, MPE, common-cause groups, Murphy fusion, Kepler
//! cross-validation, drift monitoring, variance reduction, and the
//! uncertainty register workflow.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::bayesnet::{d_separated, most_probable_explanation, ranked_cpt, BayesNet};
use sysunc::evidence::{combine_murphy, weight_of_conflict, Frame, MassFunction};
use sysunc::fta::{install_common_cause_group, FaultTree, GateKind};
use sysunc::orbital::{Integrator, KeplerOrbit, NBodySystem};
use sysunc::perception::{ClassifierModel, DriftMonitor, Truth};
use sysunc::prob::dist::{Continuous, Mixture, Normal, StudentT, TruncatedNormal};
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::sampling::propagate_antithetic;
use sysunc::taxonomy::{Means, UncertaintyKind};
use std::sync::Arc;

#[test]
fn ranked_nodes_build_a_perception_quality_model() {
    // A 3-parent quality node would need 27 hand-made rows; ranked_cpt
    // generates them, and d-separation + inference behave as expected.
    let states = vec!["low", "med", "high"];
    let mut bn = BayesNet::new();
    let weather = bn.add_root("weather", states.clone(), vec![0.2, 0.5, 0.3]).expect("valid");
    let sensor = bn.add_root("sensor", states.clone(), vec![0.1, 0.3, 0.6]).expect("valid");
    let compute = bn.add_root("compute", states.clone(), vec![0.05, 0.15, 0.8]).expect("valid");
    let cpt = ranked_cpt(&[3, 3, 3], &[2.0, 3.0, 1.0], 3, 0.15).expect("valid spec");
    let quality = bn
        .add_node("perception_quality", states, vec![weather, sensor, compute], cpt)
        .expect("valid CPT");
    // Roots are marginally independent...
    assert!(d_separated(&bn, weather, sensor, &[]).expect("valid ids"));
    // ...but conditioning on the child couples them (explaining away).
    assert!(!d_separated(&bn, weather, sensor, &[quality]).expect("valid ids"));
    // Better sensor shifts quality upward.
    let hi = bn.marginal("perception_quality", &[("sensor", "high")]).expect("query");
    let lo = bn.marginal("perception_quality", &[("sensor", "low")]).expect("query");
    assert!(hi[2] > lo[2]);
    // MPE of a low-quality observation blames the heaviest-weighted,
    // most-plausible parent configuration.
    let (assignment, p) =
        most_probable_explanation(&bn, &[(quality, 0)]).expect("tractable");
    assert!(p > 0.0);
    assert!(assignment[sensor] <= 1, "low quality implicates a degraded sensor");
}

#[test]
fn common_cause_group_integrates_with_cut_sets() {
    let mut ft = FaultTree::new();
    let group =
        install_common_cause_group(&mut ft, "sensor", 3, 1e-3, 0.05).expect("valid spec");
    let vote = ft
        .add_gate("2oo3 fails", GateKind::KOfN(2), group.member_events)
        .expect("valid");
    ft.set_top(vote).expect("valid");
    let p = ft.top_probability_exact().expect("small tree");
    // Dominated by the common cause: ~ p*beta = 5e-5 plus pair terms.
    assert!(p > 4.9e-5 && p < 8e-5, "got {p}");
    let cuts = sysunc::fta::minimal_cut_sets(&ft).expect("small tree");
    // The common-cause event alone is a minimal cut set.
    let common_idx = match group.common_event {
        sysunc::fta::NodeRef::Basic(i) => i,
        _ => unreachable!("common event is basic"),
    };
    assert!(cuts.iter().any(|c| c.len() == 1 && c.contains(&common_idx)));
}

#[test]
fn murphy_fusion_with_discounted_conflicting_sensors() {
    let frame = Frame::new(vec!["car", "pedestrian", "unknown"]).expect("valid");
    let cam = MassFunction::from_focal(&frame, vec![(0b001, 0.95), (0b111, 0.05)])
        .expect("valid");
    let radar = MassFunction::from_focal(&frame, vec![(0b010, 0.95), (0b111, 0.05)])
        .expect("valid");
    let w = weight_of_conflict(&cam, &radar).expect("same frame");
    assert!(w > 1.0, "strong conflict: {w}");
    let fused = combine_murphy(&[cam, radar]).expect("combines");
    // Murphy keeps both hypotheses alive instead of collapsing.
    assert!(fused.mass(0b001) > 0.3);
    assert!(fused.mass(0b010) > 0.3);
}

#[test]
fn kepler_validates_integrators_end_to_end() {
    let mut sys = NBodySystem::two_planets(1.0, 0.6, 2.5).expect("valid");
    let orbit = KeplerOrbit::from_system(&sys).expect("two bound point masses");
    let dt = orbit.period() / 4_000.0;
    Integrator::VelocityVerlet.propagate(&mut sys, dt, 4_000);
    let (p1, p2) = orbit.positions_at(sys.time);
    assert!(p1.distance(sys.bodies[0].position) < 1e-4);
    assert!(p2.distance(sys.bodies[1].position) < 1e-4);
}

#[test]
fn drift_monitor_flags_silent_degradation() {
    let healthy = ClassifierModel::paper_camera().expect("builds");
    let reference: Vec<f64> = (0..3).map(|l| healthy.likelihood(0, l)).collect();
    let mut mon = DriftMonitor::new(reference, 400, 0.001).expect("valid spec");
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..400 {
        mon.record(healthy.classify(Truth::Known(0), &mut rng).label);
    }
    assert!(!mon.drift_detected().expect("computes"));
    // Silent degradation: labels now come from novel objects (domain
    // shift) — mostly "none".
    for _ in 0..400 {
        mon.record(healthy.classify(Truth::Novel(1), &mut rng).label);
    }
    assert!(mon.drift_detected().expect("computes"));
}

#[test]
fn new_distributions_propagate_through_sampling() {
    // StudentT + TruncatedNormal + Mixture all flow through the antithetic
    // propagator (trait-object plumbing across crates).
    let t = StudentT::new(6.0, 0.0, 1.0).expect("valid");
    let tn = TruncatedNormal::new(0.0, 1.0, -2.0, 2.0).expect("valid");
    let mix = Mixture::new(vec![
        (0.5, Arc::new(Normal::new(-1.0, 0.3).expect("valid")) as Arc<dyn Continuous>),
        (0.5, Arc::new(Normal::new(1.0, 0.3).expect("valid"))),
    ])
    .expect("valid");
    let inputs: Vec<&dyn Continuous> = vec![&t, &tn, &mix];
    let mut rng = StdRng::seed_from_u64(21);
    let res = propagate_antithetic(&inputs, &|x: &[f64]| x[0] + x[1] + x[2], 40_000, &mut rng)
        .expect("propagates");
    // All three inputs are symmetric about 0.
    assert!(res.mean().abs() < 0.05, "mean {}", res.mean());
}

#[test]
fn register_drives_the_full_release_workflow() {
    let mut reg = UncertaintyRegister::new();
    reg.add("A", "x", "aleatory source", UncertaintyKind::Aleatory).expect("valid");
    reg.add("E", "y", "epistemic source", UncertaintyKind::Epistemic).expect("valid");
    reg.add("O", "z", "ontological source", UncertaintyKind::Ontological).expect("valid");
    // Every open entry gets catalog recommendations aligned with its kind.
    for (id, recs) in reg.recommendations() {
        assert!(!recs.is_empty(), "{id} must have recommendations");
    }
    reg.assign("A", Means::Tolerance).expect("known id");
    reg.assign("E", Means::Removal).expect("known id");
    reg.assign("O", Means::Forecasting).expect("known id");
    reg.set_status("A", MitigationStatus::Verified).expect("assigned");
    reg.set_status("E", MitigationStatus::Verified).expect("assigned");
    assert!(!reg.release_ready());
    reg.set_status("O", MitigationStatus::AcceptedResidual).expect("assigned");
    assert!(reg.release_ready());
    let md = reg.to_markdown();
    assert!(md.contains("ontological"));
    assert!(md.contains("forecasting"));
}
