//! A minimal HTTP/1.1 reader/writer on plain `std::io` streams.
//!
//! Only what the propagation service needs: request/response heads,
//! `Content-Length` bodies, keep-alive, and hard size limits. No
//! chunked transfer, no trailers, no upgrades — requests using them are
//! rejected rather than misparsed.
//!
//! Reading is built around [`HttpConn`], a buffered wrapper that
//! tolerates read timeouts: when the underlying stream is configured
//! with a short `read_timeout`, a `WouldBlock`/`TimedOut` read wakes
//! the caller's `should_abort` callback (shutdown flags, idle
//! deadlines) and then resumes without losing buffered bytes. That is
//! what lets a blocking server drain gracefully without platform
//! signal APIs.

use crate::error::{Result, ServeError};
use std::io::{ErrorKind, Read, Write};

/// Upper bounds a connection enforces while reading a message.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max bytes of request line + headers.
    pub max_head: usize,
    /// Max bytes of body (from `Content-Length`).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_head: 16 * 1024, max_body: 1024 * 1024 }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (origin form, e.g. `/v1/propagate`).
    pub target: String,
    /// Minor version of `HTTP/1.x` (0 or 1).
    pub minor_version: u8,
    /// Header fields in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Message body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after responding:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection` header overrides either.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }
}

/// A parsed HTTP response (the client half of the protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header fields in arrival/emission order.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Self { status, headers: Vec::new(), body: Vec::new() }
    }

    /// Adds a header field.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets a JSON body (and `Content-Type: application/json`).
    pub fn with_json(mut self, body: String) -> Self {
        self.headers.push(("Content-Type".into(), "application/json".into()));
        self.body = body.into_bytes();
        self
    }

    /// Sets a plain-text body (and its `Content-Type`).
    pub fn with_text(mut self, body: String) -> Self {
        self.headers
            .push(("Content-Type".into(), "text/plain; version=0.0.4".into()));
        self.body = body.into_bytes();
        self
    }

    /// First header value with the given case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serializes the response to the wire, adding `Content-Length`
    /// and a `Connection` header reflecting `keep_alive`.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the stream.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A buffered HTTP reader over any byte stream.
///
/// Bytes read past the end of one message are retained for the next
/// (pipelining/keep-alive safe).
#[derive(Debug)]
pub struct HttpConn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read> HttpConn<S> {
    /// Wraps a stream with an empty read buffer.
    pub fn new(stream: S) -> Self {
        Self { stream, buf: Vec::new() }
    }

    /// The wrapped stream (for writing responses on the same socket).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads one more chunk from the stream into the buffer.
    ///
    /// Returns `Ok(true)` on progress, `Ok(false)` on clean EOF.
    /// `WouldBlock`/`TimedOut` reads invoke `should_abort`: when it
    /// answers `true` the pending [`ServeError::Timeout`] is returned,
    /// otherwise the read retries.
    fn fill(&mut self, should_abort: &mut dyn FnMut() -> bool) -> Result<bool> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(true);
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut =>
                {
                    if should_abort() {
                        return Err(ServeError::Timeout);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Position just past the `\r\n\r\n` head terminator, if buffered.
    fn head_end(&self) -> Option<usize> {
        self.buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
    }

    /// Reads the next request off the connection.
    ///
    /// Returns `Ok(None)` on clean EOF between messages (the peer hung
    /// up an idle keep-alive connection).
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when `should_abort` fired during a
    /// stalled read, [`ServeError::Closed`] on EOF mid-message,
    /// [`ServeError::TooLarge`] past a limit, and
    /// [`ServeError::Protocol`] for unparseable bytes.
    pub fn read_request(
        &mut self,
        limits: &Limits,
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Option<Request>> {
        let head_end = loop {
            if let Some(end) = self.head_end() {
                if end > limits.max_head {
                    return Err(ServeError::TooLarge {
                        part: "head",
                        limit: limits.max_head,
                    });
                }
                break end;
            }
            if self.buf.len() > limits.max_head {
                return Err(ServeError::TooLarge { part: "head", limit: limits.max_head });
            }
            if !self.fill(should_abort)? {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(ServeError::Closed);
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| ServeError::Protocol("empty request line".into()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| ServeError::Protocol("request line lacks a target".into()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| ServeError::Protocol("request line lacks a version".into()))?;
        let minor_version = match version {
            "HTTP/1.1" => 1,
            "HTTP/1.0" => 0,
            other => {
                return Err(ServeError::Protocol(format!(
                    "unsupported version '{other}'"
                )))
            }
        };
        let headers = parse_header_lines(lines)?;
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _): &&(String, String)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        if header("transfer-encoding").is_some() {
            return Err(ServeError::Protocol(
                "chunked transfer encoding is not supported".into(),
            ));
        }
        let content_length = match header("content-length") {
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| ServeError::Protocol(format!("bad Content-Length '{v}'")))?,
            None => 0,
        };
        if content_length > limits.max_body {
            return Err(ServeError::TooLarge { part: "body", limit: limits.max_body });
        }
        let body = self.read_exact_body(head_end, content_length, should_abort)?;
        Ok(Some(Request {
            method,
            target,
            minor_version,
            headers,
            body,
        }))
    }

    /// Reads the next response off the connection (client side).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HttpConn::read_request`], but EOF before
    /// any byte is also [`ServeError::Closed`] — a client awaits a
    /// response, so silence is an error.
    pub fn read_response(
        &mut self,
        limits: &Limits,
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Response> {
        let head_end = loop {
            if let Some(end) = self.head_end() {
                if end > limits.max_head {
                    return Err(ServeError::TooLarge {
                        part: "head",
                        limit: limits.max_head,
                    });
                }
                break end;
            }
            if self.buf.len() > limits.max_head {
                return Err(ServeError::TooLarge { part: "head", limit: limits.max_head });
            }
            if !self.fill(should_abort)? {
                return Err(ServeError::Closed);
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end - 4]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.split(' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(ServeError::Protocol(format!(
                "bad status line '{status_line}'"
            )));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ServeError::Protocol(format!("bad status line '{status_line}'")))?;
        let headers = parse_header_lines(lines)?;
        let content_length = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| {
                v.trim()
                    .parse::<usize>()
                    .map_err(|_| ServeError::Protocol(format!("bad Content-Length '{v}'")))
            })
            .transpose()?
            .unwrap_or(0);
        if content_length > limits.max_body {
            return Err(ServeError::TooLarge { part: "body", limit: limits.max_body });
        }
        let body = self.read_exact_body(head_end, content_length, should_abort)?;
        Ok(Response { status, headers, body })
    }

    /// Consumes the head plus exactly `content_length` body bytes from
    /// the buffer (filling as needed) and returns the body.
    fn read_exact_body(
        &mut self,
        head_end: usize,
        content_length: usize,
        should_abort: &mut dyn FnMut() -> bool,
    ) -> Result<Vec<u8>> {
        let total = head_end + content_length;
        while self.buf.len() < total {
            if !self.fill(should_abort)? {
                return Err(ServeError::Closed);
            }
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        Ok(body)
    }
}

/// Parses `Name: value` header lines, rejecting malformed ones.
fn parse_header_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::Protocol(format!("malformed header line '{line}'")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ServeError::Protocol(format!("malformed header name '{name}'")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn no_abort() -> impl FnMut() -> bool {
        || false
    }

    fn read_one(raw: &[u8]) -> Result<Option<Request>> {
        let mut conn = HttpConn::new(Cursor::new(raw.to_vec()));
        conn.read_request(&Limits::default(), &mut no_abort())
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let raw = b"POST /v1/propagate HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let req = read_one(raw).expect("parses").expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/propagate");
        assert_eq!(req.header("content-TYPE"), Some("application/json"));
        assert_eq!(req.body, b"{\"a\"");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let mk = |version: &str, conn_header: &str| {
            let raw = format!("GET / {version}\r\n{conn_header}\r\n");
            read_one(raw.as_bytes()).expect("parses").expect("present")
        };
        assert!(mk("HTTP/1.1", "").wants_keep_alive());
        assert!(!mk("HTTP/1.0", "").wants_keep_alive());
        assert!(!mk("HTTP/1.1", "Connection: close\r\n").wants_keep_alive());
        assert!(mk("HTTP/1.0", "Connection: keep-alive\r\n").wants_keep_alive());
    }

    #[test]
    fn two_pipelined_requests_are_both_read() {
        let raw =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let mut conn = HttpConn::new(Cursor::new(raw));
        let limits = Limits::default();
        let a = conn.read_request(&limits, &mut no_abort()).expect("ok").expect("a");
        assert_eq!(a.target, "/a");
        let b = conn.read_request(&limits, &mut no_abort()).expect("ok").expect("b");
        assert_eq!((b.target.as_str(), b.body.as_slice()), ("/b", b"hi".as_slice()));
        assert!(conn.read_request(&limits, &mut no_abort()).expect("ok").is_none());
    }

    #[test]
    fn malformed_messages_are_protocol_errors() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / HTTP/2\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbad header line\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(read_one(raw), Err(ServeError::Protocol(_))),
                "{:?} should be a protocol error",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn truncation_is_closed_and_eof_at_boundary_is_none() {
        assert!(matches!(read_one(b"GET / HTT"), Err(ServeError::Closed)));
        let partial_body = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf";
        assert!(matches!(read_one(partial_body), Err(ServeError::Closed)));
        assert!(read_one(b"").expect("clean eof").is_none());
    }

    #[test]
    fn limits_are_enforced() {
        let limits = Limits { max_head: 32, max_body: 8 };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        let mut conn = HttpConn::new(Cursor::new(long_head.into_bytes()));
        assert!(matches!(
            conn.read_request(&limits, &mut no_abort()),
            Err(ServeError::TooLarge { part: "head", .. })
        ));
        let body_limits = Limits { max_head: 256, max_body: 8 };
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_vec();
        let mut conn = HttpConn::new(Cursor::new(big_body));
        assert!(matches!(
            conn.read_request(&body_limits, &mut no_abort()),
            Err(ServeError::TooLarge { part: "body", .. })
        ));
    }

    #[test]
    fn response_round_trips_through_write_and_read() {
        let resp = Response::new(503)
            .with_header("Retry-After", "1")
            .with_json("{\"error\":\"busy\"}".into());
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).expect("writes");
        let text = String::from_utf8_lossy(&wire).into_owned();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        let mut conn = HttpConn::new(Cursor::new(wire));
        let back = conn
            .read_response(&Limits::default(), &mut no_abort())
            .expect("parses");
        assert_eq!(back.status, 503);
        assert_eq!(back.header("retry-after"), Some("1"));
        assert_eq!(back.body_text(), "{\"error\":\"busy\"}");
    }

    #[test]
    fn timeout_reads_consult_the_abort_callback() {
        struct Stalling {
            handed_out: bool,
        }
        impl Read for Stalling {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.handed_out {
                    self.handed_out = true;
                    let head = b"GET / HTTP";
                    buf[..head.len()].copy_from_slice(head);
                    return Ok(head.len());
                }
                Err(std::io::Error::from(ErrorKind::WouldBlock))
            }
        }
        let mut conn = HttpConn::new(Stalling { handed_out: false });
        let mut polls = 0;
        let out = conn.read_request(&Limits::default(), &mut || {
            polls += 1;
            polls >= 3
        });
        assert!(matches!(out, Err(ServeError::Timeout)));
        assert_eq!(polls, 3);
    }
}
