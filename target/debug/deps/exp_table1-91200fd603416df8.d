/root/repo/target/debug/deps/exp_table1-91200fd603416df8.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-91200fd603416df8: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
