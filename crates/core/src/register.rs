//! The uncertainty register: an engineering artifact that tracks every
//! identified uncertainty source, its type, the means assigned to it and
//! its mitigation status — the "overall strategy" the paper's Secs. I and
//! VI call for ("build a safety argument that uncertainties are properly
//! managed").

use crate::error::{Result, SysuncError};
use crate::taxonomy::{recommend, Means, UncertaintyKind};
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Mitigation status of one registered uncertainty source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationStatus {
    /// Identified but not yet addressed.
    Open,
    /// A means has been assigned but not yet verified effective.
    Assigned,
    /// The assigned means has been verified (analysis or field evidence).
    Verified,
    /// Accepted as residual risk with rationale.
    AcceptedResidual,
}

impl fmt::Display for MitigationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigationStatus::Open => write!(f, "open"),
            MitigationStatus::Assigned => write!(f, "assigned"),
            MitigationStatus::Verified => write!(f, "verified"),
            MitigationStatus::AcceptedResidual => write!(f, "accepted-residual"),
        }
    }
}

/// One registered uncertainty source.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterEntry {
    /// Short identifier (unique in the register).
    pub id: String,
    /// Where in the system the uncertainty lives.
    pub location: String,
    /// What is uncertain.
    pub description: String,
    /// Classified type.
    pub kind: UncertaintyKind,
    /// Assigned means, if any.
    pub assigned_means: Option<Means>,
    /// Current status.
    pub status: MitigationStatus,
}

/// A register of uncertainty sources with status tracking and a release
/// gate.
///
/// # Examples
///
/// ```
/// use sysunc::register::{MitigationStatus, UncertaintyRegister};
/// use sysunc::taxonomy::{Means, UncertaintyKind};
///
/// let mut reg = UncertaintyRegister::new();
/// reg.add("U1", "perception", "CPT accuracy of the classifier",
///         UncertaintyKind::Epistemic)?;
/// reg.assign("U1", Means::Removal)?;
/// reg.set_status("U1", MitigationStatus::Verified)?;
/// assert!(reg.release_ready());
/// # Ok::<(), sysunc::SysuncError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UncertaintyRegister {
    entries: Vec<RegisterEntry>,
}

impl UncertaintyRegister {
    /// Creates an empty register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new uncertainty source (status `Open`).
    ///
    /// # Errors
    ///
    /// Returns [`SysuncError::InvalidInput`] for duplicate ids or empty
    /// fields.
    pub fn add<S1, S2, S3>(
        &mut self,
        id: S1,
        location: S2,
        description: S3,
        kind: UncertaintyKind,
    ) -> Result<()>
    where
        S1: Into<String>,
        S2: Into<String>,
        S3: Into<String>,
    {
        let id = id.into();
        let location = location.into();
        let description = description.into();
        if id.is_empty() || location.is_empty() || description.is_empty() {
            return Err(SysuncError::InvalidInput("register fields must be non-empty".into()));
        }
        if self.entries.iter().any(|e| e.id == id) {
            return Err(SysuncError::InvalidInput(format!("duplicate register id '{id}'")));
        }
        self.entries.push(RegisterEntry {
            id,
            location,
            description,
            kind,
            assigned_means: None,
            status: MitigationStatus::Open,
        });
        Ok(())
    }

    /// Assigns a means to an entry (status becomes `Assigned`).
    ///
    /// # Errors
    ///
    /// Returns [`SysuncError::InvalidInput`] for unknown ids.
    pub fn assign(&mut self, id: &str, means: Means) -> Result<()> {
        let entry = self.entry_mut(id)?;
        entry.assigned_means = Some(means);
        entry.status = MitigationStatus::Assigned;
        Ok(())
    }

    /// Sets an entry's status.
    ///
    /// # Errors
    ///
    /// Returns [`SysuncError::InvalidInput`] for unknown ids, or when
    /// marking an entry `Verified`/`Assigned` without an assigned means.
    pub fn set_status(&mut self, id: &str, status: MitigationStatus) -> Result<()> {
        let entry = self.entry_mut(id)?;
        if matches!(status, MitigationStatus::Verified | MitigationStatus::Assigned)
            && entry.assigned_means.is_none()
        {
            return Err(SysuncError::InvalidInput(format!(
                "entry '{id}' has no assigned means"
            )));
        }
        entry.status = status;
        Ok(())
    }

    fn entry_mut(&mut self, id: &str) -> Result<&mut RegisterEntry> {
        self.entries
            .iter_mut()
            .find(|e| e.id == id)
            .ok_or_else(|| SysuncError::InvalidInput(format!("unknown register id '{id}'")))
    }

    /// All entries.
    pub fn entries(&self) -> &[RegisterEntry] {
        &self.entries
    }

    /// Entries of a given kind.
    pub fn by_kind(&self, kind: UncertaintyKind) -> Vec<&RegisterEntry> {
        self.entries.iter().filter(|e| e.kind == kind).collect()
    }

    /// Entries still open (no means assigned).
    pub fn open_entries(&self) -> Vec<&RegisterEntry> {
        self.entries
            .iter()
            .filter(|e| e.status == MitigationStatus::Open)
            .collect()
    }

    /// Release gate: every entry must be `Verified` or `AcceptedResidual`
    /// (paper Sec. VI: "uncertainties are properly managed and do not pose
    /// an unacceptable level of risk").
    pub fn release_ready(&self) -> bool {
        self.entries.iter().all(|e| {
            matches!(
                e.status,
                MitigationStatus::Verified | MitigationStatus::AcceptedResidual
            )
        })
    }

    /// For each open entry, the top recommended methods from the catalog
    /// (paper Fig. 3 classification).
    pub fn recommendations(&self) -> Vec<(String, Vec<&'static str>)> {
        self.open_entries()
            .iter()
            .map(|e| {
                let names: Vec<&'static str> =
                    recommend(e.kind).iter().take(3).map(|m| m.name).collect();
                (e.id.clone(), names)
            })
            .collect()
    }

    /// Renders the register as a Markdown table for a safety case
    /// appendix.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| id | location | kind | description | means | status |\n|---|---|---|---|---|---|\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                e.id,
                e.location,
                e.kind,
                e.description,
                e.assigned_means.map_or("—".to_string(), |m| m.to_string()),
                e.status
            ));
        }
        out
    }
}

impl ToJson for MitigationStatus {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for MitigationStatus {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        match v.as_str() {
            Some("open") => Ok(MitigationStatus::Open),
            Some("assigned") => Ok(MitigationStatus::Assigned),
            Some("verified") => Ok(MitigationStatus::Verified),
            Some("accepted-residual") => Ok(MitigationStatus::AcceptedResidual),
            _ => Err(JsonError::decode("expected a mitigation status name")),
        }
    }
}

impl ToJson for RegisterEntry {
    fn to_json(&self) -> Json {
        obj([
            ("id", self.id.to_json()),
            ("location", self.location.to_json()),
            ("description", self.description.to_json()),
            ("kind", self.kind.to_json()),
            ("assigned_means", self.assigned_means.to_json()),
            ("status", self.status.to_json()),
        ])
    }
}

impl FromJson for RegisterEntry {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Ok(RegisterEntry {
            id: field(v, "id")?,
            location: field(v, "location")?,
            description: field(v, "description")?,
            kind: field(v, "kind")?,
            assigned_means: field(v, "assigned_means")?,
            status: field(v, "status")?,
        })
    }
}

impl ToJson for UncertaintyRegister {
    fn to_json(&self) -> Json {
        obj([("entries", self.entries.to_json())])
    }
}

impl FromJson for UncertaintyRegister {
    /// Rebuilds the register through its validating lifecycle methods, so
    /// loaded entries obey the same invariants as freshly created ones
    /// (unique non-empty ids, status transitions gated on assignment).
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let entries: Vec<RegisterEntry> = field(v, "entries")?;
        let mut reg = UncertaintyRegister::new();
        for e in entries {
            reg.add(e.id.clone(), e.location, e.description, e.kind)
                .map_err(|err| JsonError::decode(err.to_string()))?;
            if let Some(means) = e.assigned_means {
                reg.assign(&e.id, means).map_err(|err| JsonError::decode(err.to_string()))?;
            }
            if e.status != MitigationStatus::Assigned || e.assigned_means.is_none() {
                reg.set_status(&e.id, e.status)
                    .map_err(|err| JsonError::decode(err.to_string()))?;
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_register() -> UncertaintyRegister {
        let mut reg = UncertaintyRegister::new();
        reg.add("U1", "perception", "classifier confusion rates", UncertaintyKind::Epistemic)
            .unwrap();
        reg.add("U2", "world model", "sensor noise floor", UncertaintyKind::Aleatory).unwrap();
        reg.add("U3", "ODD", "unmodeled object classes", UncertaintyKind::Ontological)
            .unwrap();
        reg
    }

    #[test]
    fn add_and_validation() {
        let mut reg = sample_register();
        assert_eq!(reg.entries().len(), 3);
        assert!(reg.add("U1", "x", "dup", UncertaintyKind::Aleatory).is_err());
        assert!(reg.add("", "x", "y", UncertaintyKind::Aleatory).is_err());
        assert!(reg.assign("U9", Means::Removal).is_err());
    }

    #[test]
    fn lifecycle_and_release_gate() {
        let mut reg = sample_register();
        assert!(!reg.release_ready());
        assert_eq!(reg.open_entries().len(), 3);
        // Cannot verify without an assigned means.
        assert!(reg.set_status("U1", MitigationStatus::Verified).is_err());
        reg.assign("U1", Means::Removal).unwrap();
        reg.set_status("U1", MitigationStatus::Verified).unwrap();
        reg.assign("U2", Means::Tolerance).unwrap();
        reg.set_status("U2", MitigationStatus::Verified).unwrap();
        assert!(!reg.release_ready(), "U3 still open");
        reg.set_status("U3", MitigationStatus::AcceptedResidual).unwrap();
        assert!(reg.release_ready());
    }

    #[test]
    fn kind_filters_and_recommendations() {
        let reg = sample_register();
        assert_eq!(reg.by_kind(UncertaintyKind::Ontological).len(), 1);
        let recs = reg.recommendations();
        assert_eq!(recs.len(), 3);
        let u3 = recs.iter().find(|(id, _)| id == "U3").expect("U3 present");
        assert!(u3.1.iter().any(|n| n.contains("field observation")
            || n.contains("operational design domain")));
    }

    #[test]
    fn markdown_rendering() {
        let mut reg = sample_register();
        reg.assign("U1", Means::Removal).unwrap();
        let md = reg.to_markdown();
        assert!(md.contains("| U1 | perception | epistemic |"));
        assert!(md.contains("| removal |"));
        assert!(md.lines().count() == 5); // header + separator + 3 rows
    }
}
