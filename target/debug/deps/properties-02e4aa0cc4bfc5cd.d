/root/repo/target/debug/deps/properties-02e4aa0cc4bfc5cd.d: tests/properties.rs

/root/repo/target/debug/deps/properties-02e4aa0cc4bfc5cd: tests/properties.rs

tests/properties.rs:
