/root/repo/target/release/deps/exp_tolerance-c988aa1324996cac.d: crates/bench/src/bin/exp_tolerance.rs

/root/repo/target/release/deps/exp_tolerance-c988aa1324996cac: crates/bench/src/bin/exp_tolerance.rs

crates/bench/src/bin/exp_tolerance.rs:
