/root/repo/target/release/deps/sysunc_evidence-64efc93c2c9e2e24.d: crates/evidence/src/lib.rs crates/evidence/src/combination.rs crates/evidence/src/error.rs crates/evidence/src/fuzzy.rs crates/evidence/src/interval.rs crates/evidence/src/mass.rs crates/evidence/src/pbox.rs

/root/repo/target/release/deps/libsysunc_evidence-64efc93c2c9e2e24.rlib: crates/evidence/src/lib.rs crates/evidence/src/combination.rs crates/evidence/src/error.rs crates/evidence/src/fuzzy.rs crates/evidence/src/interval.rs crates/evidence/src/mass.rs crates/evidence/src/pbox.rs

/root/repo/target/release/deps/libsysunc_evidence-64efc93c2c9e2e24.rmeta: crates/evidence/src/lib.rs crates/evidence/src/combination.rs crates/evidence/src/error.rs crates/evidence/src/fuzzy.rs crates/evidence/src/interval.rs crates/evidence/src/mass.rs crates/evidence/src/pbox.rs

crates/evidence/src/lib.rs:
crates/evidence/src/combination.rs:
crates/evidence/src/error.rs:
crates/evidence/src/fuzzy.rs:
crates/evidence/src/interval.rs:
crates/evidence/src/mass.rs:
crates/evidence/src/pbox.rs:
