//! Error types for the orbital simulator.

use std::fmt;

/// Errors from system construction and observation modeling.
#[derive(Debug, Clone, PartialEq)]
pub enum OrbitalError {
    /// A body or system parameter was invalid.
    InvalidBody(String),
    /// An observation-model parameter was invalid.
    InvalidObservation(String),
}

impl fmt::Display for OrbitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrbitalError::InvalidBody(msg) => write!(f, "invalid body: {msg}"),
            OrbitalError::InvalidObservation(msg) => write!(f, "invalid observation: {msg}"),
        }
    }
}

impl std::error::Error for OrbitalError {}

/// Convenience result alias for the orbital crate.
pub type Result<T> = std::result::Result<T, OrbitalError>;
