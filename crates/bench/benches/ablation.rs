//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! alias-method vs inversion categorical sampling, antithetic vs plain
//! Monte Carlo at equal evaluation budget, Sobol' burn-in skip, and p-box
//! condensation caps.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::Rng as _;
use sysunc_prob::rng::SeedableRng;
use sysunc::evidence::DsStructure;
use sysunc::prob::dist::{Categorical, Continuous, Normal};
use sysunc::sampling::{propagate, propagate_antithetic, Design, RandomDesign, SobolDesign};

/// Inversion (linear-scan) categorical sampling, the ablated baseline for
/// the alias method.
fn sample_linear(probs: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

fn bench_ablation(c: &mut Criterion) {
    // ---- categorical sampling: alias vs linear scan ----
    let mut group = c.benchmark_group("categorical_sampling");
    for k in [8usize, 64, 512] {
        let probs: Vec<f64> = {
            let raw: Vec<f64> = (1..=k).map(|i| 1.0 / i as f64).collect();
            let s: f64 = raw.iter().sum();
            raw.iter().map(|p| p / s).collect()
        };
        let cat = Categorical::new(probs.clone()).expect("valid");
        group.bench_with_input(BenchmarkId::new("alias_10k", k), &cat, |b, cat| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..10_000 {
                    acc += cat.sample_index(&mut rng);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_10k", k), &probs, |b, probs| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..10_000 {
                    acc += sample_linear(probs, &mut rng);
                }
                acc
            });
        });
    }
    group.finish();

    // ---- antithetic vs plain at equal model-evaluation budget ----
    let mut group = c.benchmark_group("variance_reduction");
    let x = Normal::new(0.0, 1.0).expect("valid");
    let inputs: Vec<&dyn Continuous> = vec![&x];
    let model = |v: &[f64]| v[0].exp();
    group.bench_function("plain_8k_evals", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            propagate(&inputs, &RandomDesign, &model, 8_192, &mut rng).expect("runs")
        });
    });
    group.bench_function("antithetic_8k_evals", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            propagate_antithetic(&inputs, &model, 4_096, &mut rng).expect("runs")
        });
    });
    group.finish();

    // ---- Sobol' skip ablation (generation cost of burn-in) ----
    let mut group = c.benchmark_group("sobol_skip");
    for skip in [0usize, 1, 1024] {
        group.bench_with_input(BenchmarkId::new("skip", skip), &skip, |b, &skip| {
            let design = SobolDesign { skip };
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| design.generate(4_096, 8, &mut rng).expect("valid"));
        });
    }
    group.finish();

    // ---- p-box condensation cap ----
    let mut group = c.benchmark_group("pbox_condensation");
        let normal = Normal::new(0.0, 1.0).expect("valid");
    let ds = DsStructure::from_distribution(&normal, 60).expect("valid");
    for cap in [20usize, 60, 200] {
        group.bench_with_input(BenchmarkId::new("add_condense", cap), &cap, |b, &cap| {
            b.iter(|| ds.add(&ds).expect("valid").condensed(cap));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_ablation
}
criterion_main!(benches);
