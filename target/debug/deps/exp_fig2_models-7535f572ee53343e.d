/root/repo/target/debug/deps/exp_fig2_models-7535f572ee53343e.d: crates/bench/src/bin/exp_fig2_models.rs

/root/repo/target/debug/deps/exp_fig2_models-7535f572ee53343e: crates/bench/src/bin/exp_fig2_models.rs

crates/bench/src/bin/exp_fig2_models.rs:
