//! E2 — Fig. 2: one physical system (the two-planet universe), two formal
//! models. Model A (deterministic Newton) is validated by conservation
//! laws and orbit-return accuracy; model B (frequentist occupancy) by the
//! total-variation convergence of its epistemic error, which should decay
//! like N^(-1/2).

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::orbital::{Integrator, NBodySystem, ObservationChannel, OccupancyGrid, Vec2};
use sysunc_bench::{header, section};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E2", "Fig. 2 — deterministic model A vs probabilistic model B");
    let (m1, m2, d) = (1.0, 0.4, 2.0);
    let period = NBodySystem::circular_period(m1, m2, d);
    let dt = period / 2_000.0;

    section("Model A: deterministic (Newton + integrators)");
    println!("  {:<18} {:>14} {:>16}", "integrator", "energy drift", "return error");
    for (name, integ) in [
        ("symplectic-euler", Integrator::SymplecticEuler),
        ("velocity-verlet", Integrator::VelocityVerlet),
        ("rk4", Integrator::Rk4),
    ] {
        let mut sys = NBodySystem::two_planets(m1, m2, d)?;
        let e0 = sys.total_energy();
        let start = sys.bodies[0].position;
        integ.propagate(&mut sys, dt, 2_000); // one full orbit
        let drift = ((sys.total_energy() - e0) / e0).abs();
        let ret = sys.bodies[0].position.distance(start);
        println!("  {name:<18} {drift:>14.3e} {ret:>16.3e}");
    }

    section("Model B: frequentist occupancy — epistemic error vs observations");
    let channel = ObservationChannel::new(0.02)?;
    let bounds = (Vec2::new(-2.5, -2.5), Vec2::new(2.5, 2.5));
    let mut rng = StdRng::seed_from_u64(7);
    // Converged reference model.
    let mut reference = OccupancyGrid::new(bounds.0, bounds.1, 24, 24)?;
    {
        let mut sys = NBodySystem::two_planets(m1, m2, d)?;
        for _ in 0..400_000 {
            Integrator::VelocityVerlet.step(&mut sys, dt);
            reference.add(channel.observe(sys.bodies[0].position, &mut rng));
        }
    }
    println!("  {:>8} {:>16} {:>18}", "N", "TV distance", "TV * sqrt(N)");
    let mut prev_tv = f64::INFINITY;
    for n in [100usize, 1_000, 10_000, 100_000] {
        let mut grid = OccupancyGrid::new(bounds.0, bounds.1, 24, 24)?;
        let mut sys = NBodySystem::two_planets(m1, m2, d)?;
        for _ in 0..n {
            Integrator::VelocityVerlet.step(&mut sys, dt);
            grid.add(channel.observe(sys.bodies[0].position, &mut rng));
        }
        let tv = grid.total_variation(&reference)?;
        println!("  {n:>8} {tv:>16.5} {:>18.3}", tv * (n as f64).sqrt());
        assert!(tv < prev_tv, "epistemic error must shrink with N");
        prev_tv = tv;
    }
    println!("  (roughly constant TV*sqrt(N) confirms the N^-1/2 frequentist rate)");

    section("Aleatory residual of model B");
    println!(
        "  occupancy entropy of the converged model: {:.3} nats (irreducible for this grid)",
        reference.entropy()
    );
    Ok(())
}
