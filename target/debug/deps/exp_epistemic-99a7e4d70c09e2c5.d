/root/repo/target/debug/deps/exp_epistemic-99a7e4d70c09e2c5.d: crates/bench/src/bin/exp_epistemic.rs

/root/repo/target/debug/deps/exp_epistemic-99a7e4d70c09e2c5: crates/bench/src/bin/exp_epistemic.rs

crates/bench/src/bin/exp_epistemic.rs:
