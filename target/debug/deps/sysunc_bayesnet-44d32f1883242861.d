/root/repo/target/debug/deps/sysunc_bayesnet-44d32f1883242861.d: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

/root/repo/target/debug/deps/sysunc_bayesnet-44d32f1883242861: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

crates/bayesnet/src/lib.rs:
crates/bayesnet/src/error.rs:
crates/bayesnet/src/evidential.rs:
crates/bayesnet/src/factor.rs:
crates/bayesnet/src/infer.rs:
crates/bayesnet/src/learn.rs:
crates/bayesnet/src/mpe.rs:
crates/bayesnet/src/network.rs:
crates/bayesnet/src/ranked.rs:
crates/bayesnet/src/structure.rs:
