//! Rule `seed-discipline`: library code must not construct an RNG from
//! a hardcoded seed or from an ambient entropy source. Seeds flow in as
//! explicit parameters.
//!
//! Reproducibility is part of this workspace's epistemic contract: a
//! Monte Carlo estimate whose seed is baked into library code cannot be
//! varied by the caller (so convergence cannot be probed), and one
//! drawn from OS entropy cannot be replayed at all — the run stops
//! being evidence. Tests and binaries pick their own seeds freely.
//!
//! The companion workspace rule `seed-discipline-drift` keeps the
//! [`SEEDED`]/[`ENTROPY`] lists honest: it token-scans what
//! `sysunc_prob::rng` *actually* defines and fails the gate when a
//! state-injecting constructor exists that neither list covers — the
//! failure mode where the rng module grows a new constructor and this
//! rule silently stops seeing it.

use crate::lexer::TokenKind;
use crate::symbols::Workspace;
use crate::{FileKind, Lint, SourceFile, Violation, WorkspaceLint};

/// See the module docs.
pub struct SeedDiscipline;

/// RNG constructors that take seed/state material as their first
/// argument. Public so the drift guard (and tests) can assert coverage.
/// `with_seed` is the propcheck runner's replay entry point
/// ([`PROPCHECK_SEEDED`]); a literal seed baked into a library-code
/// call would pin every property run to one case.
pub const SEEDED: &[&str] = &["seed_from_u64", "from_seed", "from_state", "with_seed"];

/// RNG constructors that read ambient entropy (never reproducible).
/// Public so the drift guard (and tests) can assert coverage.
pub const ENTROPY: &[&str] = &["from_entropy", "from_os_rng", "thread_rng"];

/// The seed-reporting entry points of `sysunc_prob::propcheck`: every
/// seed-named function the runner module defines must be listed here,
/// so the drift guard notices when propcheck grows a new way to inject
/// (or leak) seed material that the per-file rule does not know about.
pub const PROPCHECK_SEEDED: &[&str] = &["with_seed", "seed_from_env", "case_seed"];

/// True when the significant token before index `i` is the `fn`
/// keyword — i.e. the identifier at `i` is being *defined*, not called.
fn is_definition(file: &SourceFile, i: usize) -> bool {
    file.tokens()[..i]
        .iter()
        .rev()
        .find(|t| !t.is_comment())
        .map(|t| t.kind == TokenKind::Ident && file.text(t) == "fn")
        .unwrap_or(false)
}

impl Lint for SeedDiscipline {
    fn name(&self) -> &'static str {
        "seed-discipline"
    }

    fn explain(&self) -> &'static str {
        "Library code must not construct an RNG from a hardcoded seed \
         (`seed_from_u64(0xDEAD_BEEF)`) or an ambient entropy source \
         (`from_entropy`, `thread_rng`). Reproducibility is part of the \
         epistemic contract: a Monte Carlo estimate whose seed is baked in \
         cannot be varied to probe convergence, and one drawn from OS entropy \
         cannot be replayed — the run stops being evidence. Take the seed as \
         an explicit parameter; tests and binaries pick seeds freely. A \
         deliberate constant (e.g. remapping a degenerate all-zero state) \
         takes `// tidy: allow(seed-discipline)` with its justification."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            let text = file.text(t);
            let seeded = SEEDED.contains(&text);
            let entropy = ENTROPY.contains(&text);
            if (!seeded && !entropy) || is_definition(file, i) {
                continue;
            }
            let mut c = file.cursor();
            c.seek(i + 1);
            if !c.eat_punct("(") {
                continue; // a mention, not a call
            }
            if entropy {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!(
                        "`{text}` draws ambient entropy in library code; runs \
                         become unreplayable — take a seed parameter instead"
                    ),
                });
                continue;
            }
            // Seeded constructor: hardcoded if the first argument opens
            // with a literal (number, or a literal array like `[0; 4]`).
            c.skip_comments();
            let hardcoded = match c.peek() {
                Some(a) if matches!(a.kind, TokenKind::Int | TokenKind::Float) => true,
                Some(a) if a.kind == TokenKind::Punct && file.text(a) == "[" => true,
                _ => false,
            };
            if hardcoded {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!(
                        "`{text}` called with a hardcoded seed in library code; \
                         take the seed as a parameter so callers control \
                         reproducibility"
                    ),
                });
            }
        }
    }
}

/// Workspace rule `seed-discipline-drift` — see the module docs.
pub struct SeedDisciplineDrift;

/// The crate and modules the constructor lists describe.
const RNG_CRATE: &str = "prob";
const RNG_MODULE: &str = "rng";
const PROPCHECK_MODULE: &str = "propcheck";

/// True when `name` looks like a constructor that injects RNG
/// seed/state material or draws it from the environment. Deliberately
/// a naming heuristic: the rng module's constructors are named for
/// what they consume (`seed_from_u64`, `from_state`, `from_entropy`),
/// and a tripwire on those names is what keeps the lists from rotting.
fn is_state_injecting(name: &str) -> bool {
    name.contains("seed") || name.contains("entropy") || name.contains("state")
}

/// True when the `fn` whose keyword sits at token index `fn_idx`
/// declares `-> Self` before its body (or `;` for a trait method) —
/// the shape of a constructor as opposed to an accessor or mutator.
fn returns_self(file: &SourceFile, fn_idx: usize) -> bool {
    let tokens = file.tokens();
    let mut saw_arrow = false;
    for t in &tokens[fn_idx..] {
        if t.is_comment() {
            continue;
        }
        let text = file.text(t);
        if t.kind == TokenKind::Punct && (text == "{" || text == ";") {
            return false;
        }
        if saw_arrow {
            return t.kind == TokenKind::Ident && text == "Self";
        }
        if t.kind == TokenKind::Punct && text == "->" {
            saw_arrow = true;
        }
    }
    false
}

impl WorkspaceLint for SeedDisciplineDrift {
    fn name(&self) -> &'static str {
        "seed-discipline-drift"
    }

    fn explain(&self) -> &'static str {
        "The `seed-discipline` rule recognizes RNG constructors by name \
         (the SEEDED/ENTROPY lists). This guard token-scans what \
         `sysunc_prob::rng` actually defines and fails when a \
         state-injecting constructor — a non-test `fn` returning `Self` \
         whose name mentions seed, state, or entropy — is covered by \
         neither list. It applies the same tripwire to \
         `sysunc_prob::propcheck` (the PROPCHECK_SEEDED list of seeded \
         runner entry points). Without it, adding a constructor to either \
         module silently blinds the seed gate: callers could hardcode \
         seeds through the new name and nothing would fire. Fix by adding \
         the constructor to the appropriate list (and a test), not by \
         renaming it to dodge the scan."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        let Some(prob) = ws.crate_named(RNG_CRATE) else {
            return; // fixture workspaces without the rng crate have nothing to guard
        };
        let Some(module) = prob.module(&[RNG_MODULE.to_string()]) else {
            let file_idx =
                prob.root().map(|m| m.file_idx).unwrap_or_else(|| prob.modules()[0].file_idx);
            out.push(Violation {
                file: ws.files[file_idx].path.clone(),
                line: 1,
                rule: self.name(),
                resolution: "module-graph",
                message: format!(
                    "crate `{RNG_CRATE}` no longer has a `{RNG_MODULE}` module; the \
                     seed-discipline SEEDED/ENTROPY lists describe constructors \
                     that cannot be located, so the lists cannot be verified"
                ),
            });
            return;
        };
        let file = &ws.files[module.file_idx];
        let tokens = file.tokens();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || file.text(t) != "fn"
                || file.in_test_block(t.line)
            {
                continue;
            }
            let Some(name_tok) = tokens[i + 1..].iter().find(|u| !u.is_comment()) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            let name = file.text(name_tok);
            if !is_state_injecting(name) || !returns_self(file, i) {
                continue;
            }
            if SEEDED.contains(&name) || ENTROPY.contains(&name) {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: name_tok.line,
                rule: self.name(),
                resolution: "module-graph",
                message: format!(
                    "rng constructor `{name}` is covered by neither the SEEDED nor \
                     the ENTROPY list of the seed-discipline rule; hardcoded seeds \
                     passed through it would go unseen — add it to the right list"
                ),
            });
        }

        // The propcheck runner is the other surface seed material flows
        // through (replay via `with_seed`, `PROPCHECK_SEED` via
        // `seed_from_env`, schedule derivation via `case_seed`); every
        // seed-named function it defines must be a known entry point.
        let Some(module) = prob.module(&[PROPCHECK_MODULE.to_string()]) else {
            let file_idx =
                prob.root().map(|m| m.file_idx).unwrap_or_else(|| prob.modules()[0].file_idx);
            out.push(Violation {
                file: ws.files[file_idx].path.clone(),
                line: 1,
                rule: self.name(),
                resolution: "module-graph",
                message: format!(
                    "crate `{RNG_CRATE}` no longer has a `{PROPCHECK_MODULE}` module; \
                     the seed-discipline PROPCHECK_SEEDED list describes entry \
                     points that cannot be located, so the list cannot be verified"
                ),
            });
            return;
        };
        let file = &ws.files[module.file_idx];
        let tokens = file.tokens();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || file.text(t) != "fn"
                || file.in_test_block(t.line)
            {
                continue;
            }
            let Some(name_tok) = tokens[i + 1..].iter().find(|u| !u.is_comment()) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            let name = file.text(name_tok);
            if !name.contains("seed") || PROPCHECK_SEEDED.contains(&name) {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: name_tok.line,
                rule: self.name(),
                resolution: "module-graph",
                message: format!(
                    "propcheck defines seed-named `{name}` which the \
                     PROPCHECK_SEEDED list of the seed-discipline rule does not \
                     cover; seed material flowing through it would go unseen — \
                     add it to the list"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/rng.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        SeedDiscipline.check(&file, &mut out);
        out
    }

    #[test]
    fn hardcoded_seed_fires() {
        let out = run("fn init() -> Rng { Rng::seed_from_u64(0xDEAD_BEEF) }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("hardcoded seed"));
        assert_eq!(run("fn init() -> Rng { Rng::from_seed([0u8; 32]) }\n").len(), 1);
    }

    #[test]
    fn seed_flowing_from_a_parameter_passes() {
        assert!(run("pub fn new(seed: u64) -> Rng { Rng::seed_from_u64(seed) }\n").is_empty());
        assert!(run("fn f(s: u64) -> Rng { Rng::seed_from_u64(s ^ GOLDEN) }\n").is_empty());
    }

    #[test]
    fn entropy_sources_fire_unconditionally() {
        let out = run("fn init() -> Rng { Rng::from_entropy() }\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unreplayable"));
        assert_eq!(run("fn init() -> Rng { thread_rng() }\n").len(), 1);
    }

    #[test]
    fn the_constructor_definition_itself_is_exempt() {
        let src = "\
impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self { Self { s: seed } }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tests_comments_and_strings_are_exempt() {
        let src = "\
// seed_from_u64(7) is fine to discuss
const DOC: &str = \"seed_from_u64(7)\";
#[cfg(test)]
mod tests {
    fn t() { let _ = Rng::seed_from_u64(42); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_files_are_not_checked() {
        assert!(!SeedDiscipline.applies(FileKind::RustTest));
    }

    /// A propcheck stub whose seed-named functions are all listed.
    const COVERED_PROPCHECK: &str =
        "pub fn seed_from_env() -> Option<u64> { None }\npub fn run() {}\n";

    fn run_drift_with(rng_src: &str, propcheck_src: &str) -> Vec<Violation> {
        let files = vec![
            SourceFile::new(
                "crates/prob/src/lib.rs",
                "pub mod rng;\npub mod propcheck;\n",
                FileKind::RustLibrary,
            ),
            SourceFile::new("crates/prob/src/rng.rs", rng_src, FileKind::RustLibrary),
            SourceFile::new(
                "crates/prob/src/propcheck/mod.rs",
                propcheck_src,
                FileKind::RustLibrary,
            ),
        ];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        SeedDisciplineDrift.check(&ws, &mut out);
        out
    }

    fn run_drift(rng_src: &str) -> Vec<Violation> {
        run_drift_with(rng_src, COVERED_PROPCHECK)
    }

    #[test]
    fn covered_constructors_pass_the_drift_guard() {
        let src = "\
impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self { Self { s: seed } }
    pub fn from_state(s: [u64; 4]) -> Self { Self { s } }
    pub fn from_entropy() -> Self { Self { s: 0 } }
    pub fn next_u64(&mut self) -> u64 { 0 }
}
";
        assert!(run_drift(src).is_empty());
    }

    #[test]
    fn an_uncovered_state_injecting_constructor_fires() {
        let src = "\
impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self { Self { s: seed } }
    pub fn from_seed_words(words: &[u64]) -> Self { Self { s: words[0] } }
}
";
        let out = run_drift(src);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert_eq!(out[0].rule, "seed-discipline-drift");
        assert!(out[0].message.contains("from_seed_words"));
        assert!(out[0].file.ends_with("rng.rs"));
    }

    #[test]
    fn trait_declarations_count_as_constructors_too() {
        // `fn seed128(...) -> Self;` in a trait is still a surface
        // callers can hardcode seeds through on any implementor.
        let out = run_drift("pub trait Seeder { fn seed128(s: u128) -> Self; }\n");
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert!(out[0].message.contains("seed128"));
    }

    #[test]
    fn non_constructors_and_test_code_do_not_trip_the_guard() {
        let src = "\
impl Rng {
    fn advance_state(&mut self) -> u64 { 0 }
    pub fn state(&self) -> [u64; 4] { self.s }
}
#[cfg(test)]
mod tests {
    fn from_seed_words(w: &[u64]) -> Rng { Rng { s: w[0] } }
}
";
        assert!(run_drift(src).is_empty());
    }

    #[test]
    fn a_missing_rng_module_is_itself_a_finding() {
        let files = vec![SourceFile::new(
            "crates/prob/src/lib.rs",
            "pub fn p() {}\n",
            FileKind::RustLibrary,
        )];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        SeedDisciplineDrift.check(&ws, &mut out);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert!(out[0].message.contains("cannot be verified"));
    }

    #[test]
    fn an_unlisted_propcheck_seed_fn_fires() {
        let rng = "impl Rng { pub fn seed_from_u64(seed: u64) -> Self { Self { s: seed } } }\n";
        let out = run_drift_with(rng, "pub fn seed_from_args() -> Option<u64> { None }\n");
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert!(out[0].message.contains("seed_from_args"));
        assert!(out[0].message.contains("PROPCHECK_SEEDED"));
        assert!(out[0].file.ends_with("propcheck/mod.rs"));
    }

    #[test]
    fn a_missing_propcheck_module_is_itself_a_finding() {
        let files = vec![
            SourceFile::new("crates/prob/src/lib.rs", "pub mod rng;\n", FileKind::RustLibrary),
            SourceFile::new(
                "crates/prob/src/rng.rs",
                "impl Rng { pub fn seed_from_u64(s: u64) -> Self { Self { s } } }\n",
                FileKind::RustLibrary,
            ),
        ];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        SeedDisciplineDrift.check(&ws, &mut out);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert!(out[0].message.contains("PROPCHECK_SEEDED list describes entry"));
    }

    #[test]
    fn the_lists_match_the_real_rng_module() {
        // The in-tree source of truth: scanning the actual
        // crates/prob/src/rng.rs with the drift guard must be clean.
        // (The gate runs this over the workspace too; this keeps the
        // invariant visible from the unit suite.)
        let src = include_str!("../../../prob/src/rng.rs");
        assert!(run_drift(src).is_empty(), "SEEDED/ENTROPY lists have drifted");
    }

    #[test]
    fn the_lists_match_the_real_propcheck_module() {
        // Same tripwire for the runner: every seed-named fn the real
        // crates/prob/src/propcheck/mod.rs defines is a listed entry
        // point.
        let rng = include_str!("../../../prob/src/rng.rs");
        let propcheck = include_str!("../../../prob/src/propcheck/mod.rs");
        assert!(
            run_drift_with(rng, propcheck).is_empty(),
            "PROPCHECK_SEEDED list has drifted"
        );
    }
}
