//! One supervised `sysunc-serve` shard process: spawn, readiness
//! handshake, liveness checks, forced kill, and graceful drain.
//!
//! The child protocol is the serve binary's own stdin/stdout
//! convention, so no signals are needed anywhere:
//!
//! - **spawn** — the supervisor launches `sysunc-serve --child --addr
//!   127.0.0.1:0 …` with stdin and stdout piped, and waits (bounded)
//!   for the `listening on <addr>` handshake line that carries the
//!   resolved ephemeral port.
//! - **drain** — closing the child's stdin asks it to finish in-flight
//!   requests and exit 0; the supervisor waits out a deadline and only
//!   then falls back to a kill.
//! - **kill** — SIGKILL through [`std::process::Child::kill`], used
//!   for wedged children and by crash-injection tests.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::error::{FleetError, Result};

/// A running shard process and its resolved listen address.
#[derive(Debug)]
pub struct ShardChild {
    child: Child,
    /// Held open while serving; dropping it asks the child to drain.
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
}

impl ShardChild {
    /// Spawns one serve child and completes the readiness handshake:
    /// returns once the child printed `listening on <addr>` (within
    /// `handshake_timeout`), so the returned shard is accepting
    /// connections. `extra_args` follow the built-in
    /// `--child --addr 127.0.0.1:0`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spawn`] when the binary cannot be launched or the
    /// handshake line does not arrive in time (the half-started child
    /// is killed before returning).
    pub fn spawn(
        serve_bin: &Path,
        extra_args: &[String],
        handshake_timeout: Duration,
    ) -> Result<Self> {
        let mut child = Command::new(serve_bin)
            .arg("--child")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| FleetError::Spawn(format!("cannot launch {serve_bin:?}: {e}")))?;
        let stdin = child.stdin.take();
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(FleetError::Spawn("child stdout was not piped".into()));
        };
        // The handshake read happens on its own thread so a child that
        // never prints cannot hang the supervisor; the thread then
        // keeps draining stdout so the pipe can never fill up.
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::Builder::new()
            .name("sysunc-fleet-child-stdout".into())
            .spawn(move || {
                let mut reader = BufReader::new(stdout);
                let mut line = String::new();
                if reader.read_line(&mut line).is_ok() {
                    let _ = tx.send(line);
                }
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                    sink.clear();
                }
            })
            .map_err(|e| FleetError::Spawn(format!("cannot spawn handshake reader: {e}")))?;
        let line = match rx.recv_timeout(handshake_timeout) {
            Ok(line) => line,
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(FleetError::Spawn(format!(
                    "child did not print its handshake line within {handshake_timeout:?}"
                )));
            }
        };
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .and_then(|a| a.parse::<SocketAddr>().ok());
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(FleetError::Spawn(format!(
                "unexpected handshake line '{}'",
                line.trim()
            )));
        };
        Ok(Self { child, stdin, addr })
    }

    /// The address the child is serving on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the process is still running (non-blocking).
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Force-kills the process (SIGKILL) and reaps it — the supervisor
    /// path for wedged children and the crash-injection hook for
    /// fleet-semantics tests.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks the child to drain (closes its stdin) and waits for exit,
    /// killing it if it outlives `deadline`. Returns `true` when the
    /// child exited on its own.
    pub fn drain(mut self, deadline: Duration) -> bool {
        drop(self.stdin.take());
        let end = Instant::now() + deadline;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) if Instant::now() < end => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    self.kill();
                    return false;
                }
            }
        }
    }
}

impl Drop for ShardChild {
    fn drop(&mut self) {
        // Never leak a process: anything not drained explicitly dies
        // with its handle.
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Locates the `sysunc-serve` binary for spawning shards: the
/// `SYSUNC_SERVE_BIN` environment variable wins, then the directory of
/// the current executable and its `target/{release,debug}` siblings —
/// covering supervisors launched from the same build tree.
pub fn locate_serve_bin() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("SYSUNC_SERVE_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let sibling = dir.join("sysunc-serve");
        if sibling.is_file() {
            return Some(sibling);
        }
        for profile in ["release", "debug"] {
            let candidate = dir.join("target").join(profile).join("sysunc-serve");
            if candidate.is_file() {
                return Some(candidate);
            }
        }
    }
    None
}
