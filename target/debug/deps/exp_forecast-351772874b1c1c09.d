/root/repo/target/debug/deps/exp_forecast-351772874b1c1c09.d: crates/bench/src/bin/exp_forecast.rs

/root/repo/target/debug/deps/libexp_forecast-351772874b1c1c09.rmeta: crates/bench/src/bin/exp_forecast.rs

crates/bench/src/bin/exp_forecast.rs:
