//! `sysunc-tidy` — runs the workspace lint gate.
//!
//! Usage: `cargo run -p sysunc-tidy [-- <workspace-root>]`.
//! Prints one `file:line: rule: message` per violation and exits
//! nonzero when any stand. Explicitly allowed violations are counted
//! and summarized so acknowledged exceptions stay visible.

use std::path::PathBuf;
use std::process::ExitCode;

use sysunc_tidy::walk;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1).map(PathBuf::from) {
        Some(p) => p,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("sysunc-tidy: cannot read current dir: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("sysunc-tidy: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match sysunc_tidy::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sysunc-tidy: walk failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    if !report.allowed.is_empty() {
        let mut by_rule: Vec<(&str, usize)> = Vec::new();
        for a in &report.allowed {
            match by_rule.iter_mut().find(|(r, _)| *r == a.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((a.rule, 1)),
            }
        }
        let parts: Vec<String> =
            by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        println!(
            "sysunc-tidy: {} acknowledged exception(s) via `tidy: allow` ({})",
            report.allowed.len(),
            parts.join(", ")
        );
    }
    println!(
        "sysunc-tidy: scanned {} files, {} violation(s)",
        report.files_scanned,
        report.violations.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
