/root/repo/target/debug/examples/perception_chain-7f6dc7799ca39fcd.d: examples/perception_chain.rs

/root/repo/target/debug/examples/perception_chain-7f6dc7799ca39fcd: examples/perception_chain.rs

examples/perception_chain.rs:
