//! Most probable explanation (MPE): the jointly most likely assignment of
//! all unobserved variables given evidence — the diagnostic query a safety
//! engineer actually asks after an incident ("what single story best
//! explains this output?").

use crate::error::{BnError, Result};
use crate::network::BayesNet;

/// Computes the most probable explanation by exhaustive enumeration over
/// the unobserved variables (exact; guarded for tractability).
///
/// Returns the full assignment (indexed by node id, evidence included) and
/// its joint probability.
///
/// # Errors
///
/// Returns [`BnError::InvalidNode`] when the hidden state space exceeds
/// `2^22` configurations, and [`BnError::InconsistentEvidence`] when every
/// completion has zero probability.
///
/// # Examples
///
/// ```
/// use sysunc_bayesnet::{most_probable_explanation, BayesNet};
/// let mut bn = BayesNet::new();
/// let rain = bn.add_root("rain", vec!["yes", "no"], vec![0.2, 0.8])?;
/// bn.add_node("wet", vec!["yes", "no"], vec![rain],
///     vec![vec![0.9, 0.1], vec![0.1, 0.9]])?;
/// let (assignment, p) = most_probable_explanation(&bn, &[(1, 0)])?; // wet = yes
/// assert_eq!(assignment[0], 0, "rain = yes is the best explanation");
/// assert!(p > 0.0);
/// # Ok::<(), sysunc_bayesnet::BnError>(())
/// ```
/// Range: the returned joint probability lies in `[0, 1]`.
pub fn most_probable_explanation(
    bn: &BayesNet,
    evidence: &[(usize, usize)],
) -> Result<(Vec<usize>, f64)> {
    let n = bn.len();
    for &(v, s) in evidence {
        if v >= n {
            return Err(BnError::UnknownNode(format!("id {v}")));
        }
        if s >= bn.nodes()[v].states.len() {
            return Err(BnError::UnknownState(format!("state {s} of node {v}")));
        }
    }
    let ev: std::collections::HashMap<usize, usize> = evidence.iter().copied().collect();
    let hidden: Vec<usize> = (0..n).filter(|v| !ev.contains_key(v)).collect();
    let space: u64 = hidden
        .iter()
        .map(|&v| bn.nodes()[v].states.len() as u64)
        .product();
    if space > (1 << 22) {
        return Err(BnError::InvalidNode(format!(
            "MPE enumeration over {space} configurations exceeds the guard"
        )));
    }
    let mut assignment = vec![0usize; n];
    for (&v, &s) in &ev {
        assignment[v] = s;
    }
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut idx = vec![0usize; hidden.len()];
    loop {
        for (h, &v) in hidden.iter().enumerate() {
            assignment[v] = idx[h];
        }
        // Joint probability of the full assignment.
        let mut p = 1.0;
        for (id, node) in bn.nodes().iter().enumerate() {
            let mut row = 0usize;
            for &parent in &node.parents {
                row = row * bn.nodes()[parent].states.len() + assignment[parent];
            }
            p *= node.cpt[row][assignment[id]];
            if p == 0.0 { // tidy: allow(float-eq)
                break;
            }
        }
        if best.as_ref().is_none_or(|(_, bp)| p > *bp) {
            best = Some((assignment.clone(), p));
        }
        // Odometer.
        let mut h = 0;
        loop {
            if h == hidden.len() {
                let (a, p) = best.expect("at least one configuration visited"); // tidy: allow(panic)
                if p <= 0.0 {
                    return Err(BnError::InconsistentEvidence);
                }
                return Ok((a, p));
            }
            idx[h] += 1;
            if idx[h] < bn.nodes()[hidden[h]].states.len() {
                break;
            }
            idx[h] = 0;
            h += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sprinkler() -> BayesNet {
        let mut bn = BayesNet::new();
        let rain = bn.add_root("rain", vec!["yes", "no"], vec![0.2, 0.8]).unwrap();
        let s = bn
            .add_node(
                "sprinkler",
                vec!["on", "off"],
                vec![rain],
                vec![vec![0.01, 0.99], vec![0.4, 0.6]],
            )
            .unwrap();
        bn.add_node(
            "grass_wet",
            vec!["yes", "no"],
            vec![s, rain],
            vec![vec![0.99, 0.01], vec![0.9, 0.1], vec![0.8, 0.2], vec![0.0, 1.0]],
        )
        .unwrap();
        bn
    }

    #[test]
    fn mpe_matches_brute_force_marginal_story() {
        let bn = sprinkler();
        let wet = bn.node_id("grass_wet").unwrap();
        let (assignment, p) = most_probable_explanation(&bn, &[(wet, 0)]).unwrap();
        // Best single story for wet grass: no rain, sprinkler on
        // (0.8 * 0.4 * 0.9 = 0.288) vs rain, no sprinkler
        // (0.2 * 0.99 * 0.8 = 0.158).
        assert_eq!(assignment[bn.node_id("rain").unwrap()], 1, "no rain");
        assert_eq!(assignment[bn.node_id("sprinkler").unwrap()], 0, "sprinkler on");
        assert!((p - 0.8 * 0.4 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn mpe_without_evidence_is_the_mode() {
        let bn = sprinkler();
        let (assignment, p) = most_probable_explanation(&bn, &[]).unwrap();
        // Mode: no rain (0.8), sprinkler off (0.6), dry (1.0).
        assert_eq!(assignment, vec![1, 1, 1]);
        assert!((p - 0.8 * 0.6 * 1.0).abs() < 1e-12);
    }

    #[test]
    fn mpe_on_paper_network() {
        let mut bn = BayesNet::new();
        let gt = bn
            .add_root("ground_truth", vec!["car", "pedestrian", "unknown"], vec![0.6, 0.3, 0.1])
            .unwrap();
        bn.add_node(
            "perception",
            vec!["car", "pedestrian", "car_pedestrian", "none"],
            vec![gt],
            vec![
                vec![0.9, 0.005, 0.05, 0.045],
                vec![0.005, 0.9, 0.05, 0.045],
                vec![0.0, 0.0, 2.0 / 9.0, 7.0 / 9.0],
            ],
        )
        .unwrap();
        let perc = bn.node_id("perception").unwrap();
        // Best explanation of a "none" output is an unknown object.
        let (assignment, _) = most_probable_explanation(&bn, &[(perc, 3)]).unwrap();
        assert_eq!(assignment[0], 2);
        // Best explanation of "car" output is a car.
        let (assignment, _) = most_probable_explanation(&bn, &[(perc, 0)]).unwrap();
        assert_eq!(assignment[0], 0);
    }

    #[test]
    fn impossible_evidence_and_bad_ids() {
        let mut bn = BayesNet::new();
        let a = bn.add_root("a", vec!["x", "y"], vec![1.0, 0.0]).unwrap();
        bn.add_node("b", vec!["u", "v"], vec![a], vec![vec![1.0, 0.0], vec![0.5, 0.5]])
            .unwrap();
        assert!(matches!(
            most_probable_explanation(&bn, &[(1, 1)]),
            Err(BnError::InconsistentEvidence)
        ));
        assert!(most_probable_explanation(&bn, &[(9, 0)]).is_err());
        assert!(most_probable_explanation(&bn, &[(0, 9)]).is_err());
    }
}
