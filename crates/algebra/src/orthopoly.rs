//! Orthogonal polynomial families with respect to *probability* measures,
//! and Gauss quadrature via Golub–Welsch.
//!
//! These are the building blocks of generalized polynomial chaos (Wiener–
//! Askey scheme): Hermite ↔ normal, Legendre ↔ uniform, Laguerre ↔
//! exponential/gamma, Jacobi ↔ beta. All recurrences are kept in monic form
//! `p_{k+1} = (x - a_k) p_k - b_k p_{k-1}` with `b_0 = 1` (unit total mass),
//! and evaluation produces the **orthonormal** family.

use crate::eigen::tridiagonal_eigen;
use crate::error::{AlgebraError, Result};

/// An orthogonal polynomial family paired with its probability measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolyFamily {
    /// Probabilists' Hermite polynomials — standard normal measure on ℝ.
    Hermite,
    /// Legendre polynomials — uniform measure on `[-1, 1]`.
    Legendre,
    /// Laguerre polynomials — exponential (rate 1) measure on `[0, ∞)`.
    Laguerre,
    /// Jacobi polynomials with parameters `alpha`, `beta` (> -1) — the
    /// measure proportional to `(1-x)^alpha (1+x)^beta` on `[-1, 1]`,
    /// i.e. a Beta(beta+1, alpha+1) law mapped to `[-1, 1]`.
    Jacobi {
        /// Exponent on `(1 - x)`.
        alpha: f64,
        /// Exponent on `(1 + x)`.
        beta: f64,
    },
}

impl PolyFamily {
    /// Monic-recurrence coefficient `a_k` (k = 0, 1, ...).
    pub fn recurrence_a(&self, k: usize) -> f64 {
        match *self {
            PolyFamily::Hermite | PolyFamily::Legendre => 0.0,
            PolyFamily::Laguerre => 2.0 * k as f64 + 1.0,
            PolyFamily::Jacobi { alpha, beta } => {
                let k = k as f64;
                let s = 2.0 * k + alpha + beta;
                if k == 0.0 { // tidy: allow(float-eq)
                    (beta - alpha) / (alpha + beta + 2.0)
                } else {
                    (beta * beta - alpha * alpha) / (s * (s + 2.0))
                }
            }
        }
    }

    /// Monic-recurrence coefficient `b_k` (k = 1, 2, ...); `b_0` is defined
    /// as 1 (probability normalization of the measure).
    pub fn recurrence_b(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let kf = k as f64;
        match *self {
            PolyFamily::Hermite => kf,
            PolyFamily::Legendre => kf * kf / (4.0 * kf * kf - 1.0),
            PolyFamily::Laguerre => kf * kf,
            PolyFamily::Jacobi { alpha, beta } => {
                let s = 2.0 * kf + alpha + beta;
                if k == 1 {
                    4.0 * (1.0 + alpha) * (1.0 + beta)
                        / ((2.0 + alpha + beta).powi(2) * (3.0 + alpha + beta))
                } else {
                    4.0 * kf * (kf + alpha) * (kf + beta) * (kf + alpha + beta)
                        / (s * s * (s + 1.0) * (s - 1.0))
                }
            }
        }
    }

    /// Evaluates the orthonormal polynomials `p_0..=p_degree` at `x`.
    ///
    /// Orthonormal with respect to the family's probability measure:
    /// `E[p_m(X) p_n(X)] = δ_mn`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sysunc_algebra::PolyFamily;
    /// let vals = PolyFamily::Hermite.eval_orthonormal(3, 1.0);
    /// assert!((vals[0] - 1.0).abs() < 1e-15); // p0 = 1
    /// assert!((vals[1] - 1.0).abs() < 1e-15); // he1(x) = x
    /// ```
    pub fn eval_orthonormal(&self, degree: usize, x: f64) -> Vec<f64> {
        // Orthonormal recurrence: sqrt(b_{k+1}) p_{k+1} = (x - a_k) p_k -
        // sqrt(b_k) p_{k-1}.
        let mut out = Vec::with_capacity(degree + 1);
        out.push(1.0);
        if degree == 0 {
            return out;
        }
        let mut prev = 0.0; // p_{-1}
        let mut curr = 1.0; // p_0
        for k in 0..degree {
            let a = self.recurrence_a(k);
            let sqrt_bk = self.recurrence_b(k).sqrt();
            let sqrt_bk1 = self.recurrence_b(k + 1).sqrt();
            let next = ((x - a) * curr - if k == 0 { 0.0 } else { sqrt_bk } * prev) / sqrt_bk1;
            out.push(next);
            prev = curr;
            curr = next;
        }
        out
    }

    /// Evaluates the single orthonormal polynomial of the given degree.
    pub fn eval_one(&self, degree: usize, x: f64) -> f64 {
        *self.eval_orthonormal(degree, x).last().expect("non-empty by construction") // tidy: allow(panic)
    }

    /// `n`-point Gauss quadrature rule for the family's probability measure
    /// (weights sum to 1), computed with Golub–Welsch.
    ///
    /// Exactly integrates polynomials up to degree `2n - 1` against the
    /// measure.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] for `n == 0`; eigensolver
    /// failures propagate as [`AlgebraError::ConvergenceFailure`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sysunc_algebra::PolyFamily;
    /// let rule = PolyFamily::Hermite.gauss_rule(5)?;
    /// // E[X^2] = 1 for the standard normal:
    /// let m2: f64 = rule.nodes.iter().zip(&rule.weights)
    ///     .map(|(x, w)| w * x * x).sum();
    /// assert!((m2 - 1.0).abs() < 1e-12);
    /// # Ok::<(), sysunc_algebra::AlgebraError>(())
    /// ```
    pub fn gauss_rule(&self, n: usize) -> Result<GaussRule> {
        if n == 0 {
            return Err(AlgebraError::DimensionMismatch("gauss_rule: n must be > 0".into()));
        }
        let diag: Vec<f64> = (0..n).map(|k| self.recurrence_a(k)).collect();
        let offdiag: Vec<f64> = (1..n).map(|k| self.recurrence_b(k).sqrt()).collect();
        let eig = tridiagonal_eigen(&diag, &offdiag)?;
        let weights: Vec<f64> = eig.first_components.iter().map(|z| z * z).collect();
        Ok(GaussRule { nodes: eig.values, weights })
    }
}

/// A quadrature rule: nodes and matching weights.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussRule {
    /// Quadrature nodes, ascending.
    pub nodes: Vec<f64>,
    /// Quadrature weights (sum to 1 for probability measures).
    pub weights: Vec<f64>,
}

impl GaussRule {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the rule is empty (never true for constructed rules).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies the rule to a function: `Σ w_i f(x_i)`.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes.iter().zip(&self.weights).map(|(&x, &w)| w * f(x)).sum()
    }
}

/// Clenshaw–Curtis rule with `n + 1` points on `[-1, 1]` for the **uniform
/// probability** measure (weights sum to 1). Nested for `n` doubling —
/// the natural ingredient for Smolyak sparse grids.
///
/// # Errors
///
/// Returns [`AlgebraError::DimensionMismatch`] for `n == 0`.
pub fn clenshaw_curtis(n: usize) -> Result<GaussRule> {
    if n == 0 {
        return Err(AlgebraError::DimensionMismatch("clenshaw_curtis: n must be > 0".into()));
    }
    let nf = n as f64;
    let mut nodes = Vec::with_capacity(n + 1);
    let mut weights = Vec::with_capacity(n + 1);
    for k in 0..=n {
        nodes.push(-(std::f64::consts::PI * k as f64 / nf).cos());
        let ck = if k == 0 || k == n { 1.0 } else { 2.0 };
        let mut sum = 0.0;
        for j in 1..=n / 2 {
            let bj = if 2 * j == n { 1.0 } else { 2.0 };
            sum += bj / (4.0 * (j * j) as f64 - 1.0)
                * (2.0 * std::f64::consts::PI * (j * k) as f64 / nf).cos();
        }
        // Weight for plain Lebesgue measure on [-1,1] is (ck/n)(1-sum);
        // divide by 2 for the uniform probability measure.
        weights.push(ck / nf * (1.0 - sum) / 2.0);
    }
    Ok(GaussRule { nodes, weights })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn hermite_polynomials_match_closed_forms() {
        // he2(x) = (x² - 1)/√2, he3(x) = (x³ - 3x)/√6
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            let v = PolyFamily::Hermite.eval_orthonormal(3, x);
            close(v[2], (x * x - 1.0) / 2.0f64.sqrt(), 1e-12);
            close(v[3], (x * x * x - 3.0 * x) / 6.0f64.sqrt(), 1e-12);
        }
    }

    #[test]
    fn legendre_polynomials_match_closed_forms() {
        // Orthonormal Legendre w.r.t. uniform on [-1,1]:
        // p_n = sqrt(2n+1) P_n, so p2 = sqrt(5)(3x²-1)/2.
        for &x in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            let v = PolyFamily::Legendre.eval_orthonormal(2, x);
            close(v[1], 3.0f64.sqrt() * x, 1e-12);
            close(v[2], 5.0f64.sqrt() * (3.0 * x * x - 1.0) / 2.0, 1e-12);
        }
    }

    #[test]
    fn orthonormality_under_gauss_rule() {
        // For each family, check E[p_m p_n] = δ_mn with a high-order rule.
        let families = [
            PolyFamily::Hermite,
            PolyFamily::Legendre,
            PolyFamily::Laguerre,
            PolyFamily::Jacobi { alpha: 1.5, beta: 0.5 },
        ];
        for fam in families {
            let rule = fam.gauss_rule(20).unwrap();
            for m in 0..=5usize {
                for n in 0..=5usize {
                    let inner: f64 = rule
                        .nodes
                        .iter()
                        .zip(&rule.weights)
                        .map(|(&x, &w)| {
                            let v = fam.eval_orthonormal(5, x);
                            w * v[m] * v[n]
                        })
                        .sum();
                    let expect = if m == n { 1.0 } else { 0.0 };
                    assert!(
                        (inner - expect).abs() < 1e-9,
                        "{fam:?}: <p{m}, p{n}> = {inner}"
                    );
                }
            }
        }
    }

    #[test]
    fn gauss_hermite_matches_normal_moments() {
        let rule = PolyFamily::Hermite.gauss_rule(8).unwrap();
        close(rule.weights.iter().sum::<f64>(), 1.0, 1e-12);
        close(rule.integrate(|x| x), 0.0, 1e-12);
        close(rule.integrate(|x| x * x), 1.0, 1e-12);
        close(rule.integrate(|x| x.powi(4)), 3.0, 1e-10);
        close(rule.integrate(|x| x.powi(6)), 15.0, 1e-9);
    }

    #[test]
    fn gauss_legendre_matches_uniform_moments() {
        let rule = PolyFamily::Legendre.gauss_rule(6).unwrap();
        // E[X^2] = 1/3, E[X^4] = 1/5 for U(-1,1).
        close(rule.integrate(|x| x * x), 1.0 / 3.0, 1e-12);
        close(rule.integrate(|x| x.powi(4)), 0.2, 1e-12);
    }

    #[test]
    fn gauss_laguerre_matches_exponential_moments() {
        let rule = PolyFamily::Laguerre.gauss_rule(10).unwrap();
        // E[X^k] = k! for Exp(1).
        close(rule.integrate(|x| x), 1.0, 1e-9);
        close(rule.integrate(|x| x * x), 2.0, 1e-8);
        close(rule.integrate(|x| x * x * x), 6.0, 1e-7);
    }

    #[test]
    fn gauss_jacobi_matches_beta_moments() {
        // Jacobi(alpha=0, beta=0) is Legendre.
        let j = PolyFamily::Jacobi { alpha: 0.0, beta: 0.0 }.gauss_rule(5).unwrap();
        let l = PolyFamily::Legendre.gauss_rule(5).unwrap();
        for (a, b) in j.nodes.iter().zip(&l.nodes) {
            close(*a, *b, 1e-10);
        }
        // Jacobi(1, 2): X on [-1,1] with density ∝ (1-x)(1+x)².
        // E[X] = (beta - alpha)/(alpha + beta + 2) = 1/5 (monic a_0).
        let rule = PolyFamily::Jacobi { alpha: 1.0, beta: 2.0 }.gauss_rule(8).unwrap();
        close(rule.integrate(|x| x), 0.2, 1e-10);
    }

    #[test]
    fn gauss_rule_exactness_degree() {
        // n-point rule integrates degree 2n-1 exactly: check with n = 3 on
        // Legendre and a degree-5 polynomial.
        let rule = PolyFamily::Legendre.gauss_rule(3).unwrap();
        let exact = |k: u32| if k % 2 == 1 { 0.0 } else { 1.0 / (k as f64 + 1.0) };
        for k in 0..=5u32 {
            close(rule.integrate(|x| x.powi(k as i32)), exact(k), 1e-12);
        }
    }

    #[test]
    fn clenshaw_curtis_integrates_smooth_functions() {
        let rule = clenshaw_curtis(16).unwrap();
        close(rule.weights.iter().sum::<f64>(), 1.0, 1e-12);
        // E[cos(X)] over U(-1,1) = sin(1).
        close(rule.integrate(|x| x.cos()), 1.0f64.sin(), 1e-12);
        close(rule.integrate(|x| x * x), 1.0 / 3.0, 1e-12);
        assert!(clenshaw_curtis(0).is_err());
    }

    #[test]
    fn clenshaw_curtis_nesting() {
        // Nodes of CC(4) are a subset of CC(8).
        let small = clenshaw_curtis(4).unwrap();
        let large = clenshaw_curtis(8).unwrap();
        for ns in &small.nodes {
            assert!(
                large.nodes.iter().any(|nl| (nl - ns).abs() < 1e-12),
                "node {ns} not nested"
            );
        }
    }
}
