//! Static fault tree structure (paper Sec. V-A).

use crate::error::{FtaError, Result};
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};

/// Reference to a node of the fault tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// A basic event by index.
    Basic(usize),
    /// A gate by index.
    Gate(usize),
}

/// The boolean operator of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Output fails iff all inputs fail.
    And,
    /// Output fails iff any input fails.
    Or,
    /// Output fails iff at least `k` inputs fail (voting gate).
    KOfN(usize),
}

/// A basic event: a root cause with a failure probability.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicEvent {
    /// Event name.
    pub name: String,
    /// Failure probability per demand (or at mission time).
    pub probability: f64,
}

/// A gate combining child nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Gate name.
    pub name: String,
    /// Boolean operator.
    pub kind: GateKind,
    /// Input nodes.
    pub inputs: Vec<NodeRef>,
}

/// A static fault tree: basic events, gates and a designated top event.
///
/// Gates must be added after their inputs, so the structure is acyclic by
/// construction. Shared subtrees (repeated events) are allowed.
///
/// # Examples
///
/// ```
/// use sysunc_fta::{FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let a = ft.add_basic_event("sensor A fails", 0.01)?;
/// let b = ft.add_basic_event("sensor B fails", 0.01)?;
/// let top = ft.add_gate("both sensors fail", GateKind::And, vec![a, b])?;
/// ft.set_top(top)?;
/// assert!((ft.top_probability_exact()? - 1e-4).abs() < 1e-12);
/// # Ok::<(), sysunc_fta::FtaError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTree {
    basic: Vec<BasicEvent>,
    gates: Vec<Gate>,
    top: Option<NodeRef>,
}

impl FaultTree {
    /// Creates an empty fault tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a basic event; returns its reference.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidEvent`] for probabilities outside
    /// `[0, 1]` or duplicate names.
    pub fn add_basic_event<S: Into<String>>(
        &mut self,
        name: S,
        probability: f64,
    ) -> Result<NodeRef> {
        let name = name.into();
        if !(0.0..=1.0).contains(&probability) {
            return Err(FtaError::InvalidEvent(format!(
                "probability of '{name}' must be in [0,1], got {probability}"
            )));
        }
        if self.basic.iter().any(|b| b.name == name) {
            return Err(FtaError::InvalidEvent(format!("duplicate basic event '{name}'")));
        }
        self.basic.push(BasicEvent { name, probability });
        Ok(NodeRef::Basic(self.basic.len() - 1))
    }

    /// Adds a gate over existing nodes; returns its reference.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidGate`] for empty inputs, dangling
    /// references, or invalid `k` in a voting gate.
    pub fn add_gate<S: Into<String>>(
        &mut self,
        name: S,
        kind: GateKind,
        inputs: Vec<NodeRef>,
    ) -> Result<NodeRef> {
        let name = name.into();
        if inputs.is_empty() {
            return Err(FtaError::InvalidGate(format!("gate '{name}' has no inputs")));
        }
        for input in &inputs {
            if !self.node_exists(*input) {
                return Err(FtaError::InvalidGate(format!(
                    "gate '{name}' references a missing node"
                )));
            }
        }
        if let GateKind::KOfN(k) = kind {
            if k == 0 || k > inputs.len() {
                return Err(FtaError::InvalidGate(format!(
                    "gate '{name}': k = {k} out of range for {} inputs",
                    inputs.len()
                )));
            }
        }
        self.gates.push(Gate { name, kind, inputs });
        Ok(NodeRef::Gate(self.gates.len() - 1))
    }

    /// Sets the top (undesired) event.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidGate`] for dangling references.
    pub fn set_top(&mut self, node: NodeRef) -> Result<()> {
        if !self.node_exists(node) {
            return Err(FtaError::InvalidGate("top event references a missing node".into()));
        }
        self.top = Some(node);
        Ok(())
    }

    fn node_exists(&self, node: NodeRef) -> bool {
        match node {
            NodeRef::Basic(i) => i < self.basic.len(),
            NodeRef::Gate(i) => i < self.gates.len(),
        }
    }

    /// The top event, if set.
    pub fn top(&self) -> Option<NodeRef> {
        self.top
    }

    /// Basic events in index order.
    pub fn basic_events(&self) -> &[BasicEvent] {
        &self.basic
    }

    /// Gates in index order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a basic event's index by name.
    pub fn basic_index(&self, name: &str) -> Option<usize> {
        self.basic.iter().position(|b| b.name == name)
    }

    /// Replaces a basic event's probability (for sensitivity studies).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidEvent`] for bad indices or probabilities.
    /// Range: `probability` must lie in `[0, 1]` (rejected with `Err` otherwise).
    pub fn set_probability(&mut self, basic: usize, probability: f64) -> Result<()> {
        if basic >= self.basic.len() {
            return Err(FtaError::InvalidEvent(format!("no basic event {basic}")));
        }
        if !(0.0..=1.0).contains(&probability) {
            return Err(FtaError::InvalidEvent(format!(
                "probability must be in [0,1], got {probability}"
            )));
        }
        self.basic[basic].probability = probability;
        Ok(())
    }

    /// Evaluates the boolean structure function for a given basic-event
    /// state vector (`true` = failed).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::NoTopEvent`] when no top is set and
    /// [`FtaError::InvalidEvent`] for wrong state-vector length.
    pub fn structure_function(&self, failed: &[bool]) -> Result<bool> {
        if failed.len() != self.basic.len() {
            return Err(FtaError::InvalidEvent(format!(
                "state vector has {} entries, expected {}",
                failed.len(),
                self.basic.len()
            )));
        }
        let top = self.top.ok_or(FtaError::NoTopEvent)?;
        Ok(self.eval_node(top, failed))
    }

    fn eval_node(&self, node: NodeRef, failed: &[bool]) -> bool {
        match node {
            NodeRef::Basic(i) => failed[i],
            NodeRef::Gate(g) => {
                let gate = &self.gates[g];
                let count =
                    gate.inputs.iter().filter(|&&inp| self.eval_node(inp, failed)).count();
                match gate.kind {
                    GateKind::And => count == gate.inputs.len(),
                    GateKind::Or => count >= 1,
                    GateKind::KOfN(k) => count >= k,
                }
            }
        }
    }

    /// Exact top-event probability by full enumeration over the basic
    /// events (independent events). Exponential in the number of basic
    /// events; guarded at 24.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::TooLarge`] beyond 24 basic events and
    /// [`FtaError::NoTopEvent`] when no top is set.
    /// Range: `[0, 1]` — an exact top-event probability.
    pub fn top_probability_exact(&self) -> Result<f64> {
        let n = self.basic.len();
        if n > 24 {
            return Err(FtaError::TooLarge(n));
        }
        self.top.ok_or(FtaError::NoTopEvent)?;
        let mut total = 0.0;
        let mut failed = vec![false; n];
        for mask in 0u64..(1 << n) {
            let mut p = 1.0;
            for (i, f) in failed.iter_mut().enumerate() {
                *f = mask & (1 << i) != 0;
                p *= if *f { self.basic[i].probability } else { 1.0 - self.basic[i].probability };
            }
            if p > 0.0 && self.structure_function(&failed)? {
                total += p;
            }
        }
        Ok(total)
    }

    /// Whether the structure function is coherent in each component
    /// (monotone: a failure can never fix the system). Checked by
    /// enumeration; same size guard as [`FaultTree::top_probability_exact`].
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::TooLarge`] beyond 24 basic events and
    /// [`FtaError::NoTopEvent`] when no top is set.
    pub fn is_coherent(&self) -> Result<bool> {
        let n = self.basic.len();
        if n > 24 {
            return Err(FtaError::TooLarge(n));
        }
        self.top.ok_or(FtaError::NoTopEvent)?;
        let mut failed = vec![false; n];
        // Monotonicity check: for every state, failing one more component
        // must not turn a failed system into a working one.
        for mask in 0u64..(1 << n) {
            for (i, f) in failed.iter_mut().enumerate() {
                *f = mask & (1 << i) != 0;
            }
            if !self.structure_function(&failed)? {
                continue;
            }
            for i in 0..n {
                if !failed[i] {
                    failed[i] = true;
                    let more = self.structure_function(&failed)?;
                    failed[i] = false;
                    if !more {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

impl ToJson for NodeRef {
    fn to_json(&self) -> Json {
        match self {
            NodeRef::Basic(i) => obj([("basic", i.to_json())]),
            NodeRef::Gate(i) => obj([("gate", i.to_json())]),
        }
    }
}

impl FromJson for NodeRef {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        if let Some(i) = v.get("basic") {
            return usize::from_json(i).map(NodeRef::Basic);
        }
        if let Some(i) = v.get("gate") {
            return usize::from_json(i).map(NodeRef::Gate);
        }
        Err(JsonError::decode("node ref must be {\"basic\": i} or {\"gate\": i}"))
    }
}

impl ToJson for GateKind {
    fn to_json(&self) -> Json {
        match self {
            GateKind::And => Json::Str("and".into()),
            GateKind::Or => Json::Str("or".into()),
            GateKind::KOfN(k) => obj([("k_of_n", k.to_json())]),
        }
    }
}

impl FromJson for GateKind {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        match v.as_str() {
            Some("and") => return Ok(GateKind::And),
            Some("or") => return Ok(GateKind::Or),
            Some(other) => return Err(JsonError::decode(format!("unknown gate kind '{other}'"))),
            None => {}
        }
        if let Some(k) = v.get("k_of_n") {
            return usize::from_json(k).map(GateKind::KOfN);
        }
        Err(JsonError::decode("gate kind must be \"and\", \"or\" or {\"k_of_n\": k}"))
    }
}

impl ToJson for BasicEvent {
    fn to_json(&self) -> Json {
        obj([("name", self.name.to_json()), ("probability", Json::Num(self.probability))])
    }
}

impl ToJson for Gate {
    fn to_json(&self) -> Json {
        obj([
            ("name", self.name.to_json()),
            ("kind", self.kind.to_json()),
            ("inputs", self.inputs.to_json()),
        ])
    }
}

impl ToJson for FaultTree {
    fn to_json(&self) -> Json {
        obj([
            ("basic", self.basic.to_json()),
            ("gates", self.gates.to_json()),
            ("top", self.top.to_json()),
        ])
    }
}

impl FromJson for FaultTree {
    /// Rebuilds the tree through the validating constructors, so malformed
    /// or adversarial JSON cannot produce a structurally invalid tree.
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let mut ft = FaultTree::new();
        let basic = v.get("basic").and_then(Json::as_arr).ok_or_else(|| JsonError::missing("basic"))?;
        for b in basic {
            let name: String = field(b, "name")?;
            let probability: f64 = field(b, "probability")?;
            ft.add_basic_event(name, probability)
                .map_err(|e| JsonError::decode(e.to_string()))?;
        }
        let gates = v.get("gates").and_then(Json::as_arr).ok_or_else(|| JsonError::missing("gates"))?;
        for g in gates {
            let name: String = field(g, "name")?;
            let kind: GateKind = field(g, "kind")?;
            let inputs: Vec<NodeRef> = field(g, "inputs")?;
            ft.add_gate(name, kind, inputs).map_err(|e| JsonError::decode(e.to_string()))?;
        }
        let top: Option<NodeRef> = field(v, "top")?;
        if let Some(top) = top {
            ft.set_top(top).map_err(|e| JsonError::decode(e.to_string()))?;
        }
        Ok(ft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut ft = FaultTree::new();
        assert!(ft.add_basic_event("a", 1.5).is_err());
        let a = ft.add_basic_event("a", 0.1).unwrap();
        assert!(ft.add_basic_event("a", 0.1).is_err());
        assert!(ft.add_gate("g", GateKind::And, vec![]).is_err());
        assert!(ft.add_gate("g", GateKind::And, vec![NodeRef::Basic(7)]).is_err());
        assert!(ft.add_gate("g", GateKind::KOfN(3), vec![a, a]).is_err());
        assert!(ft.set_top(NodeRef::Gate(0)).is_err());
        assert!(ft.top_probability_exact().is_err()); // no top
    }

    #[test]
    fn and_or_probabilities() {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.2).unwrap();
        let and = ft.add_gate("and", GateKind::And, vec![a, b]).unwrap();
        ft.set_top(and).unwrap();
        assert!((ft.top_probability_exact().unwrap() - 0.02).abs() < 1e-12);
        let mut ft2 = ft.clone();
        let a2 = NodeRef::Basic(0);
        let b2 = NodeRef::Basic(1);
        let or = ft2.add_gate("or", GateKind::Or, vec![a2, b2]).unwrap();
        ft2.set_top(or).unwrap();
        assert!((ft2.top_probability_exact().unwrap() - 0.28).abs() < 1e-12);
    }

    #[test]
    fn two_out_of_three_voting() {
        let mut ft = FaultTree::new();
        let p = 0.1;
        let events: Vec<NodeRef> =
            (0..3).map(|i| ft.add_basic_event(format!("e{i}"), p).unwrap()).collect();
        let vote = ft.add_gate("2oo3", GateKind::KOfN(2), events).unwrap();
        ft.set_top(vote).unwrap();
        // P = 3 p² (1-p) + p³.
        let expect = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((ft.top_probability_exact().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn repeated_events_handled_exactly() {
        // top = (A AND B) OR (A AND C): repeated A. Exact: P(A)(P(B ∪ C)).
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.5).unwrap();
        let b = ft.add_basic_event("b", 0.5).unwrap();
        let c = ft.add_basic_event("c", 0.5).unwrap();
        let g1 = ft.add_gate("g1", GateKind::And, vec![a, b]).unwrap();
        let g2 = ft.add_gate("g2", GateKind::And, vec![a, c]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![g1, g2]).unwrap();
        ft.set_top(top).unwrap();
        // P = P(A) * (1 - (1-0.5)(1-0.5)) = 0.5 * 0.75.
        assert!((ft.top_probability_exact().unwrap() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn structure_function_and_coherence() {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.1).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![a, b]).unwrap();
        ft.set_top(top).unwrap();
        assert!(!ft.structure_function(&[false, false]).unwrap());
        assert!(ft.structure_function(&[true, false]).unwrap());
        assert!(ft.structure_function(&[false, true]).unwrap());
        assert!(ft.is_coherent().unwrap());
        assert!(ft.structure_function(&[true]).is_err());
    }

    #[test]
    fn set_probability_updates_quantification() {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        ft.set_top(a).unwrap();
        assert!((ft.top_probability_exact().unwrap() - 0.1).abs() < 1e-15);
        ft.set_probability(0, 0.4).unwrap();
        assert!((ft.top_probability_exact().unwrap() - 0.4).abs() < 1e-15);
        assert!(ft.set_probability(5, 0.1).is_err());
        assert!(ft.set_probability(0, 2.0).is_err());
    }
}
