//! `sysunc-tidy` — runs the workspace lint gate.
//!
//! ```text
//! cargo run -p sysunc-tidy -- [OPTIONS] [workspace-root]
//!
//!   --json               emit the sysunc-tidy/3 JSON findings object
//!   --serial             check files serially (default: parallel)
//!   --baseline <path>    apply a ratchet file (default: <root>/tidy.baseline
//!                        when it exists)
//!   --write-baseline     regenerate the baseline from the standing
//!                        findings (to --baseline or <root>/tidy.baseline)
//!                        instead of gating, then exit
//!   --explain [rule]     print what a rule enforces and why, then exit;
//!                        with no rule, list every rule one per line
//!                        (unknown rules exit 2)
//!   --dump-modules       print the resolved module tree, item
//!                        reachability and re-exports per crate, then exit
//!   --dump-cfg           print every function's control-flow graph
//!                        (basic blocks, token ranges, successor edges),
//!                        then exit
//! ```
//!
//! Prints one `file:line: rule: message` per violation and exits
//! nonzero when any stand. Explicitly allowed violations are counted
//! and summarized so acknowledged exceptions stay visible; baselined
//! violations likewise. See `sysunc_tidy::report` for the JSON schema
//! and the baseline format.

use std::path::PathBuf;
use std::process::ExitCode;

use sysunc_tidy::report::{to_json, Baseline};
use sysunc_tidy::{rules, walk};

/// What `--explain` was asked to do.
enum ExplainMode {
    /// Bare `--explain`: list every rule with its one-line summary.
    All,
    /// `--explain <rule>`: print that rule's full explanation.
    Rule(String),
}

/// Parsed command line.
struct Options {
    root: Option<PathBuf>,
    json: bool,
    serial: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    explain: Option<ExplainMode>,
    dump_modules: bool,
    dump_cfg: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        serial: false,
        baseline: None,
        write_baseline: false,
        explain: None,
        dump_modules: false,
        dump_cfg: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        match arg.as_str() {
            "--json" => opts.json = true,
            "--serial" => opts.serial = true,
            "--baseline" => {
                let path = args.get(i).ok_or("--baseline needs a path argument")?;
                opts.baseline = Some(PathBuf::from(path));
                i += 1;
            }
            "--write-baseline" => opts.write_baseline = true,
            "--explain" => {
                // The rule name is optional: a following token that
                // looks like a flag (or nothing at all) means "list
                // every rule".
                opts.explain = Some(match args.get(i) {
                    Some(next) if !next.starts_with('-') => {
                        i += 1;
                        ExplainMode::Rule(next.clone())
                    }
                    _ => ExplainMode::All,
                });
            }
            "--dump-modules" => opts.dump_modules = true,
            "--dump-cfg" => opts.dump_cfg = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path if opts.root.is_none() => opts.root = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    Ok(opts)
}

/// Renders the resolved module trees behind `--dump-modules`: per
/// crate, every module with its declaration status and namespace
/// reachability, each public item with whether a root `pub` chain
/// reaches it, and each `use` declaration.
fn dump_modules(ws: &sysunc_tidy::symbols::Workspace<'_>) -> String {
    let mut out = String::new();
    for krate in &ws.crates {
        out.push_str(&format!("crate {}\n", krate.name));
        let mut order: Vec<usize> = (0..krate.modules().len()).collect();
        order.sort_by(|&a, &b| krate.modules()[a].path.cmp(&krate.modules()[b].path));
        for mi in order {
            let m = &krate.modules()[mi];
            let indent = "  ".repeat(m.path.len() + 1);
            let label = if m.path.is_empty() { "(root)" } else { m.name.as_str() };
            let status = if m.path.is_empty() {
                "root"
            } else if !m.declared {
                "UNDECLARED"
            } else if krate.reach.module_ns[mi] {
                "reachable"
            } else {
                "private"
            };
            out.push_str(&format!(
                "{indent}mod {label} [{status}] — {}\n",
                ws.files[m.file_idx].path.display()
            ));
            for (ii, item) in m.items.iter().enumerate() {
                if !item.vis.is_pub() {
                    continue;
                }
                let mark = if krate.reach.items[mi][ii] { "+" } else { "-" };
                out.push_str(&format!(
                    "{indent}  {mark} pub {} {} (line {})\n",
                    item.kind, item.name, item.line
                ));
            }
            for u in &m.uses {
                let vis = if u.vis.is_pub() { "pub use" } else { "use" };
                let glob = if u.glob { "::*" } else { "" };
                let alias = u.alias.as_deref().map(|a| format!(" as {a}")).unwrap_or_default();
                out.push_str(&format!(
                    "{indent}  {vis} {}{glob}{alias} (line {})\n",
                    u.path.join("::"),
                    u.line
                ));
            }
        }
        if !krate.reach.unresolved_names.is_empty() {
            let mut names: Vec<&String> = krate.reach.unresolved_names.iter().collect();
            names.sort();
            out.push_str(&format!(
                "  unresolved pub-use fallback names: {}\n",
                names.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    out
}

/// Renders every function's control-flow graph behind `--dump-cfg`:
/// per file, per function, each basic block with the source-line span
/// of its token ranges and its successor edges. Bodiless functions
/// (trait methods, extern decls) are skipped.
fn dump_cfg(files: &[sysunc_tidy::SourceFile]) -> String {
    let mut out = String::new();
    for file in files {
        let facts = sysunc_tidy::resolve::parse_facts(file);
        let with_bodies: Vec<_> = facts.fns.iter().filter(|f| f.body.is_some()).collect();
        if with_bodies.is_empty() {
            continue;
        }
        out.push_str(&format!("{}\n", file.path.display()));
        for f in with_bodies {
            let Some(body) = f.body else { continue };
            let graph = sysunc_tidy::cfg::build(file, body);
            let exit = graph.exit.map(|e| e.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  fn {} (line {}): {} block(s), exit {exit}\n",
                f.name,
                f.line,
                graph.blocks.len()
            ));
            for (bi, block) in graph.blocks.iter().enumerate() {
                let tokens = file.tokens();
                let lines: Vec<String> = block
                    .ranges
                    .iter()
                    .filter(|(s, e)| e > s)
                    .map(|&(s, e)| {
                        let first = tokens[s].line;
                        let last = tokens[e - 1].line;
                        if first == last {
                            format!("L{first}")
                        } else {
                            format!("L{first}-{last}")
                        }
                    })
                    .collect();
                let span = if lines.is_empty() { "(empty)".into() } else { lines.join(",") };
                let succs: Vec<String> =
                    block.succs.iter().map(|s| s.to_string()).collect();
                let arrow =
                    if succs.is_empty() { String::new() } else { format!(" -> {}", succs.join(",")) };
                out.push_str(&format!("    b{bi} {span}{arrow}\n"));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sysunc-tidy: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(mode) = &opts.explain {
        return match mode {
            ExplainMode::All => {
                let sums = rules::summaries();
                let width = sums.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
                for (name, line) in sums {
                    println!("{name:width$}  {line}");
                }
                ExitCode::SUCCESS
            }
            ExplainMode::Rule(rule) => match rules::explain(rule) {
                Some(text) => {
                    println!("{rule}\n\n{text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!(
                        "sysunc-tidy: unknown rule `{rule}`; known rules: {}",
                        rules::rule_names().join(", ")
                    );
                    ExitCode::from(2)
                }
            },
        };
    }

    let root = match opts.root.clone() {
        Some(p) => p,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("sysunc-tidy: cannot read current dir: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("sysunc-tidy: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let files = match walk::collect(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sysunc-tidy: walk failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if opts.dump_modules {
        let ws = sysunc_tidy::symbols::Workspace::build(&files);
        print!("{}", dump_modules(&ws));
        return ExitCode::SUCCESS;
    }

    if opts.dump_cfg {
        print!("{}", dump_cfg(&files));
        return ExitCode::SUCCESS;
    }

    let mut report = if opts.serial {
        sysunc_tidy::check_files_serial(&files)
    } else {
        sysunc_tidy::check_files(&files)
    };

    // --write-baseline regenerates the ratchet from the pre-ratchet
    // findings: the freshly written file absorbs exactly what stands
    // today, so the very next gate run is clean with zero stale
    // entries (the round-trip the report tests pin down).
    if opts.write_baseline {
        let path = opts.baseline.clone().unwrap_or_else(|| root.join("tidy.baseline"));
        let baseline = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&path, baseline.render()) {
            eprintln!("sysunc-tidy: cannot write baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "sysunc-tidy: wrote {} budgeting {} standing finding(s)",
            path.display(),
            report.violations.len()
        );
        return ExitCode::SUCCESS;
    }

    // Apply the ratchet: an explicit --baseline path must exist; the
    // default <root>/tidy.baseline applies only when present.
    let baseline_path = opts.baseline.clone().or_else(|| {
        let default = root.join("tidy.baseline");
        default.exists().then_some(default)
    });
    let mut stale = Vec::new();
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sysunc-tidy: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => stale = b.apply(&mut report),
            Err(e) => {
                eprintln!("sysunc-tidy: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.json {
        println!("{}", to_json(&report));
        return if report.clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    for v in &report.violations {
        println!("{v}");
    }
    if !report.allowed.is_empty() {
        let mut by_rule: Vec<(&str, usize)> = Vec::new();
        for a in &report.allowed {
            match by_rule.iter_mut().find(|(r, _)| *r == a.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((a.rule, 1)),
            }
        }
        let parts: Vec<String> =
            by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
        println!(
            "sysunc-tidy: {} acknowledged exception(s) via `tidy: allow` ({})",
            report.allowed.len(),
            parts.join(", ")
        );
    }
    if !report.baselined.is_empty() {
        println!(
            "sysunc-tidy: {} baselined finding(s) absorbed by the ratchet",
            report.baselined.len()
        );
    }
    for s in &stale {
        println!(
            "sysunc-tidy: stale baseline entry {}\t{}\t{} (only {} fired; ratchet down)",
            s.entry.file, s.entry.rule, s.entry.count, s.actual
        );
    }
    println!(
        "sysunc-tidy: scanned {} files, {} violation(s)",
        report.files_scanned,
        report.violations.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
