/root/repo/target/debug/deps/bn_inference-37f0104dfd953df6.d: crates/bench/benches/bn_inference.rs

/root/repo/target/debug/deps/bn_inference-37f0104dfd953df6: crates/bench/benches/bn_inference.rs

crates/bench/benches/bn_inference.rs:
