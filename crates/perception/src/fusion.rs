//! Redundant diverse sensor fusion — uncertainty *tolerance* through
//! "redundant architectures with diverse uncertainties" (paper Sec. IV)
//! and the evidence-theoretic fusion the paper's Sec. V-B points to.

use crate::classifier::ClassifierModel;
use crate::error::{PerceptionError, Result};
use crate::world::Truth;
use sysunc_prob::rng::RngCore;
use sysunc_evidence::{Frame, MassFunction};

/// The fused verdict over known classes plus an explicit `unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedVerdict {
    /// A known class (index).
    Known(usize),
    /// The fusion concluded the object is not confidently any known class.
    Unknown,
}

/// A redundant architecture of independent classifiers over the same known
/// classes.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionSystem {
    channels: Vec<ClassifierModel>,
    /// Prior over known classes + unknown (length `known + 1`).
    prior: Vec<f64>,
    /// Per-channel reliability for evidential fusion, in `[0, 1]`.
    reliabilities: Vec<f64>,
}

impl FusionSystem {
    /// Creates a fusion system.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidFusion`] for empty channels,
    /// inconsistent label sets, bad priors, or reliabilities outside
    /// `[0, 1]`.
    pub fn new(
        channels: Vec<ClassifierModel>,
        prior: Vec<f64>,
        reliabilities: Vec<f64>,
    ) -> Result<Self> {
        if channels.is_empty() {
            return Err(PerceptionError::InvalidFusion("no channels".into()));
        }
        let k = channels[0].known_len();
        if channels.iter().any(|c| c.known_len() != k) {
            return Err(PerceptionError::InvalidFusion("channels disagree on classes".into()));
        }
        if prior.len() != k + 1 {
            return Err(PerceptionError::InvalidFusion(format!(
                "prior needs {} entries (known + unknown), got {}",
                k + 1,
                prior.len()
            )));
        }
        let total: f64 = prior.iter().sum();
        if (total - 1.0).abs() > 1e-9 || prior.iter().any(|&p| p < 0.0) {
            return Err(PerceptionError::InvalidFusion(format!(
                "prior must be a distribution, sums to {total}"
            )));
        }
        if reliabilities.len() != channels.len()
            || reliabilities.iter().any(|r| !(0.0..=1.0).contains(r))
        {
            return Err(PerceptionError::InvalidFusion(
                "one reliability in [0,1] per channel required".into(),
            ));
        }
        Ok(Self { channels, prior, reliabilities })
    }

    /// Number of known classes.
    pub fn known_len(&self) -> usize {
        self.channels[0].known_len()
    }

    /// Lets every channel observe the encounter; returns the raw labels.
    pub fn observe(&self, truth: Truth, rng: &mut dyn RngCore) -> Vec<usize> {
        self.channels.iter().map(|c| c.classify(truth, rng).label).collect()
    }

    /// Bayesian fusion: posterior over `known + unknown` from independent
    /// channel likelihoods; the verdict is the MAP class, or `Unknown`
    /// when the unknown hypothesis wins.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidFusion`] for a label count
    /// mismatch.
    pub fn fuse_bayes(&self, labels: &[usize]) -> Result<(FusedVerdict, Vec<f64>)> {
        if labels.len() != self.channels.len() {
            return Err(PerceptionError::InvalidFusion(format!(
                "expected {} labels, got {}",
                self.channels.len(),
                labels.len()
            )));
        }
        let k = self.known_len();
        let mut post = self.prior.clone();
        for (channel, &label) in self.channels.iter().zip(labels) {
            for (class, p) in post.iter_mut().enumerate() {
                let like = if class < k {
                    channel.likelihood(class, label)
                } else {
                    channel.novel_likelihood(label)
                };
                *p *= like;
            }
        }
        let total: f64 = post.iter().sum();
        if total <= 0.0 {
            // All hypotheses excluded: the observation is outside the
            // model — report unknown with a flat posterior.
            let flat = vec![1.0 / (k + 1) as f64; k + 1];
            return Ok((FusedVerdict::Unknown, flat));
        }
        for p in &mut post {
            *p /= total;
        }
        let (best, _) = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite posteriors")) // tidy: allow(panic)
            .expect("non-empty"); // tidy: allow(panic)
        let verdict = if best < k { FusedVerdict::Known(best) } else { FusedVerdict::Unknown };
        Ok((verdict, post))
    }

    /// Dempster–Shafer fusion: each channel report becomes a discounted
    /// simple mass function (label → singleton, `none` → `{unknown}`),
    /// combined by Dempster's rule. Returns the combined mass and the
    /// pignistic-MAP verdict.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidFusion`] on label mismatch or
    /// total conflict.
    pub fn fuse_dempster(&self, labels: &[usize]) -> Result<(FusedVerdict, MassFunction)> {
        if labels.len() != self.channels.len() {
            return Err(PerceptionError::InvalidFusion(format!(
                "expected {} labels, got {}",
                self.channels.len(),
                labels.len()
            )));
        }
        let k = self.known_len();
        let mut names: Vec<String> =
            self.channels[0].labels()[..k].iter().cloned().collect();
        names.push("unknown".into());
        let frame =
            Frame::new(names).map_err(|e| PerceptionError::InvalidFusion(e.to_string()))?;
        let mut combined = MassFunction::vacuous(&frame);
        for ((channel, &label), &rel) in self.channels.iter().zip(labels).zip(&self.reliabilities)
        {
            // The channel asserts its label (or unknown for `none`).
            let target = if label < k { 1u64 << label } else { 1u64 << k };
            let report = MassFunction::from_focal(&frame, vec![(target, 1.0)])
                .and_then(|m| m.discount(rel))
                .map_err(|e| PerceptionError::InvalidFusion(e.to_string()))?;
            let _ = channel;
            combined = combined
                .combine_dempster(&report)
                .map_err(|e| PerceptionError::InvalidFusion(e.to_string()))?;
        }
        let bet = combined.pignistic();
        let (best, _) = bet
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite pignistic")) // tidy: allow(panic)
            .expect("non-empty frame"); // tidy: allow(panic)
        let verdict = if best < k { FusedVerdict::Known(best) } else { FusedVerdict::Unknown };
        Ok((verdict, combined))
    }

    /// Majority vote (ties → `Unknown`). The baseline fusion rule.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidFusion`] on label mismatch.
    pub fn fuse_vote(&self, labels: &[usize]) -> Result<FusedVerdict> {
        if labels.len() != self.channels.len() {
            return Err(PerceptionError::InvalidFusion(format!(
                "expected {} labels, got {}",
                self.channels.len(),
                labels.len()
            )));
        }
        let k = self.known_len();
        let mut counts = vec![0usize; k + 1];
        for &l in labels {
            counts[l.min(k)] += 1;
        }
        let max = *counts.iter().max().expect("non-empty"); // tidy: allow(panic)
        let winners: Vec<usize> =
            counts.iter().enumerate().filter(|(_, &c)| c == max).map(|(i, _)| i).collect();
        if winners.len() != 1 || winners[0] == k {
            Ok(FusedVerdict::Unknown)
        } else {
            Ok(FusedVerdict::Known(winners[0]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2025)
    }

    /// Camera + radar with *diverse* confusion structures: the camera
    /// confuses car/pedestrian, the radar misses pedestrians but never
    /// confuses them with cars.
    fn diverse_pair() -> FusionSystem {
        let camera = ClassifierModel::paper_camera().unwrap();
        let radar = ClassifierModel::new(
            vec!["car".into(), "pedestrian".into()],
            vec![vec![0.95, 0.0, 0.05], vec![0.0, 0.8, 0.2]],
            vec![0.05, 0.05, 0.9],
        )
        .unwrap();
        FusionSystem::new(
            vec![camera, radar],
            vec![0.6, 0.3, 0.1],
            vec![0.9, 0.9],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let cam = ClassifierModel::paper_camera().unwrap();
        assert!(FusionSystem::new(vec![], vec![0.5, 0.5], vec![]).is_err());
        assert!(FusionSystem::new(vec![cam.clone()], vec![0.5, 0.5], vec![0.9]).is_err()); // prior len
        assert!(
            FusionSystem::new(vec![cam.clone()], vec![0.6, 0.3, 0.2], vec![0.9]).is_err()
        ); // prior sum
        assert!(FusionSystem::new(vec![cam], vec![0.6, 0.3, 0.1], vec![1.5]).is_err());
    }

    #[test]
    fn agreeing_channels_give_confident_known_verdict() {
        let sys = diverse_pair();
        let (v, post) = sys.fuse_bayes(&[0, 0]).unwrap();
        assert_eq!(v, FusedVerdict::Known(0));
        assert!(post[0] > 0.95);
        let (vd, mass) = sys.fuse_dempster(&[0, 0]).unwrap();
        assert_eq!(vd, FusedVerdict::Known(0));
        let frame_car = 0b001;
        assert!(mass.belief(frame_car) > 0.9);
        assert_eq!(sys.fuse_vote(&[0, 0]).unwrap(), FusedVerdict::Known(0));
    }

    #[test]
    fn double_none_is_evidence_of_unknown() {
        let sys = diverse_pair();
        let none = 2;
        let (v, post) = sys.fuse_bayes(&[none, none]).unwrap();
        assert_eq!(v, FusedVerdict::Unknown, "posterior {post:?}");
        assert!(post[2] > 0.5);
        assert_eq!(sys.fuse_vote(&[none, none]).unwrap(), FusedVerdict::Unknown);
    }

    #[test]
    fn disagreement_widens_dempster_ignorance() {
        let sys = diverse_pair();
        let (_, agree) = sys.fuse_dempster(&[0, 0]).unwrap();
        let (_, conflict) = sys.fuse_dempster(&[0, 1]).unwrap();
        let frame_theta = 0b111;
        assert!(
            conflict.mass(frame_theta) >= agree.mass(frame_theta),
            "conflict must not shrink ignorance"
        );
        // Conflicting singletons leave wide Bel/Pl gaps on car.
        let car = 0b001;
        assert!(conflict.interval(car).width() > agree.interval(car).width());
    }

    #[test]
    fn fusion_beats_single_channel_on_misclassification() {
        // The paper's tolerance claim: redundant diverse sensors reduce
        // hazardous misclassification.
        let sys = diverse_pair();
        let single = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let n = 30_000;
        let mut single_wrong = 0u64;
        let mut fused_wrong = 0u64;
        for _ in 0..n {
            // Pedestrian misdetected as car is the hazardous case.
            let truth = Truth::Known(1);
            if single.classify(truth, &mut r).label == 0 {
                single_wrong += 1;
            }
            let labels = sys.observe(truth, &mut r);
            if sys.fuse_bayes(&labels).unwrap().0 == FusedVerdict::Known(0) {
                fused_wrong += 1;
            }
        }
        assert!(
            fused_wrong * 3 < single_wrong.max(1) * 2,
            "fusion {fused_wrong} should cut single-channel {single_wrong}"
        );
    }

    #[test]
    fn conservative_fusion_raises_novel_detection_rate() {
        // Agreement-based (voting) fusion accepts a known class only when
        // the diverse channels concur — novel objects almost never pass.
        let sys = diverse_pair();
        let single = ClassifierModel::paper_camera().unwrap();
        let mut r = rng();
        let n = 30_000;
        let mut single_flagged = 0u64;
        let mut vote_flagged = 0u64;
        for _ in 0..n {
            let truth = Truth::Novel(2);
            if single.classify(truth, &mut r).label == single.none_label() {
                single_flagged += 1;
            }
            let labels = sys.observe(truth, &mut r);
            if sys.fuse_vote(&labels).unwrap() == FusedVerdict::Unknown {
                vote_flagged += 1;
            }
        }
        assert!(
            vote_flagged > single_flagged,
            "voting fusion {vote_flagged} should flag more novelties than {single_flagged}"
        );
        assert!(vote_flagged as f64 / n as f64 > 0.95);
    }

    #[test]
    fn bayes_fusion_trades_novelty_flagging_for_availability() {
        // With a strong known-class prior, Bayesian fusion accepts *more*
        // novel objects as known than the raw camera — a real design
        // tension the means-comparison experiment (E5/E8) quantifies.
        let sys = diverse_pair();
        let mut r = rng();
        let n = 20_000;
        let mut bayes_unknown = 0u64;
        for _ in 0..n {
            let labels = sys.observe(Truth::Novel(2), &mut r);
            if sys.fuse_bayes(&labels).unwrap().0 == FusedVerdict::Unknown {
                bayes_unknown += 1;
            }
        }
        let rate = bayes_unknown as f64 / n as f64;
        assert!((rate - 0.72).abs() < 0.03, "expected ~0.72 (both-none), got {rate}");
    }

    #[test]
    fn label_count_mismatch_errors() {
        let sys = diverse_pair();
        assert!(sys.fuse_bayes(&[0]).is_err());
        assert!(sys.fuse_dempster(&[0, 1, 2]).is_err());
        assert!(sys.fuse_vote(&[0]).is_err());
    }
}
