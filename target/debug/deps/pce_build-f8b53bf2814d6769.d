/root/repo/target/debug/deps/pce_build-f8b53bf2814d6769.d: crates/bench/benches/pce_build.rs

/root/repo/target/debug/deps/pce_build-f8b53bf2814d6769: crates/bench/benches/pce_build.rs

crates/bench/benches/pce_build.rs:
