//! Discrete factors (potentials) and their algebra — the computational
//! core of exact Bayesian-network inference.

use crate::error::{BnError, Result};

/// A factor over a set of discrete variables, identified by `usize` ids.
///
/// Values are stored row-major with the *first* variable varying slowest.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<usize>,
    card: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InvalidFactor`] when shapes disagree, a
    /// cardinality is zero, variables repeat, or a value is negative.
    pub fn new(vars: Vec<usize>, card: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if vars.len() != card.len() {
            return Err(BnError::InvalidFactor(format!(
                "{} vars but {} cardinalities",
                vars.len(),
                card.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        if !vars.iter().all(|v| seen.insert(*v)) {
            return Err(BnError::InvalidFactor("repeated variable".into()));
        }
        if card.iter().any(|&c| c == 0) {
            return Err(BnError::InvalidFactor("zero cardinality".into()));
        }
        let size: usize = card.iter().product();
        if values.len() != size {
            return Err(BnError::InvalidFactor(format!(
                "expected {size} values, got {}",
                values.len()
            )));
        }
        if values.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(BnError::InvalidFactor("negative or non-finite value".into()));
        }
        Ok(Self { vars, card, values })
    }

    /// The scalar unit factor (empty scope, value 1).
    pub fn unit() -> Self {
        Self { vars: vec![], card: vec![], values: vec![1.0] }
    }

    /// Variables in scope.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Cardinalities aligned with [`Factor::vars`].
    pub fn cardinalities(&self) -> &[usize] {
        &self.card
    }

    /// Raw values (row-major, first variable slowest).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Converts a flat index into a per-variable assignment.
    fn unflatten(&self, mut idx: usize) -> Vec<usize> {
        let mut asg = vec![0; self.vars.len()];
        for i in (0..self.vars.len()).rev() {
            asg[i] = idx % self.card[i];
            idx /= self.card[i];
        }
        asg
    }

    /// Converts an assignment to a flat index.
    fn flatten(card: &[usize], asg: &[usize]) -> usize {
        let mut idx = 0;
        for (c, a) in card.iter().zip(asg) {
            idx = idx * c + a;
        }
        idx
    }

    /// Factor product: the scope is the union of scopes.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InvalidFactor`] if a shared variable has
    /// conflicting cardinalities.
    pub fn product(&self, other: &Factor) -> Result<Factor> {
        // Union scope: self vars, then other's new vars.
        let mut vars = self.vars.clone();
        let mut card = self.card.clone();
        for (v, c) in other.vars.iter().zip(&other.card) {
            match self.vars.iter().position(|sv| sv == v) {
                Some(pos) => {
                    if self.card[pos] != *c {
                        return Err(BnError::InvalidFactor(format!(
                            "variable {v} has conflicting cardinalities {} vs {c}",
                            self.card[pos]
                        )));
                    }
                }
                None => {
                    vars.push(*v);
                    card.push(*c);
                }
            }
        }
        let size: usize = card.iter().product();
        let mut values = vec![0.0; size];
        // Positions of self/other vars in the union scope.
        let self_pos: Vec<usize> =
            self.vars.iter().map(|v| vars.iter().position(|u| u == v).expect("in union")).collect(); // tidy: allow(panic)
        let other_pos: Vec<usize> = other
            .vars
            .iter()
            .map(|v| vars.iter().position(|u| u == v).expect("in union")) // tidy: allow(panic)
            .collect();
        let mut asg = vec![0usize; vars.len()];
        for (flat, value) in values.iter_mut().enumerate() {
            // Unflatten into the union assignment.
            let mut idx = flat;
            for i in (0..vars.len()).rev() {
                asg[i] = idx % card[i];
                idx /= card[i];
            }
            let a_idx = Factor::flatten(
                &self.card,
                &self_pos.iter().map(|&p| asg[p]).collect::<Vec<_>>(),
            );
            let b_idx = Factor::flatten(
                &other.card,
                &other_pos.iter().map(|&p| asg[p]).collect::<Vec<_>>(),
            );
            *value = self.values[a_idx] * other.values[b_idx];
        }
        Ok(Factor { vars, card, values })
    }

    /// Sums out (marginalizes) a variable.
    ///
    /// Returns the factor unchanged if the variable is not in scope.
    pub fn sum_out(&self, var: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut card = self.card.clone();
        vars.remove(pos);
        let k = card.remove(pos);
        let size: usize = card.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        for (flat, &v) in self.values.iter().enumerate() {
            let mut asg = self.unflatten(flat);
            asg.remove(pos);
            let _ = k; // cardinality folded into the sum below
            let idx = Factor::flatten(&card, &asg);
            values[idx] += v;
        }
        Factor { vars, card, values }
    }

    /// Restricts a variable to a fixed state (evidence), removing it from
    /// the scope.
    ///
    /// Returns the factor unchanged if the variable is not in scope.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InvalidFactor`] when the state is out of range.
    pub fn reduce(&self, var: usize, state: usize) -> Result<Factor> {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return Ok(self.clone());
        };
        if state >= self.card[pos] {
            return Err(BnError::InvalidFactor(format!(
                "state {state} out of range for variable {var} (cardinality {})",
                self.card[pos]
            )));
        }
        let mut vars = self.vars.clone();
        let mut card = self.card.clone();
        vars.remove(pos);
        card.remove(pos);
        let size: usize = card.iter().product::<usize>().max(1);
        let mut values = vec![0.0; size];
        for (flat, &v) in self.values.iter().enumerate() {
            let asg = self.unflatten(flat);
            if asg[pos] != state {
                continue;
            }
            let mut rest = asg;
            rest.remove(pos);
            values[Factor::flatten(&card, &rest)] = v;
        }
        Ok(Factor { vars, card, values })
    }

    /// Normalizes values to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InconsistentEvidence`] when the total is zero
    /// (the evidence has probability zero under the model — the BN
    /// signature of an ontological event).
    pub fn normalized(&self) -> Result<Factor> {
        let total: f64 = self.values.iter().sum();
        if total <= 0.0 {
            return Err(BnError::InconsistentEvidence);
        }
        Ok(Factor {
            vars: self.vars.clone(),
            card: self.card.clone(),
            values: self.values.iter().map(|v| v / total).collect(),
        })
    }

    /// Sum of all values (the partition function / evidence probability).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Factor::new(vec![0], vec![2], vec![0.5, 0.5]).is_ok());
        assert!(Factor::new(vec![0], vec![2], vec![0.5]).is_err());
        assert!(Factor::new(vec![0, 0], vec![2, 2], vec![0.25; 4]).is_err());
        assert!(Factor::new(vec![0], vec![0], vec![]).is_err());
        assert!(Factor::new(vec![0], vec![2], vec![-0.1, 1.1]).is_err());
    }

    #[test]
    fn product_of_disjoint_scopes() {
        let a = Factor::new(vec![0], vec![2], vec![0.3, 0.7]).unwrap();
        let b = Factor::new(vec![1], vec![2], vec![0.6, 0.4]).unwrap();
        let p = a.product(&b).unwrap();
        assert_eq!(p.vars(), &[0, 1]);
        assert!((p.values()[0] - 0.18).abs() < 1e-15); // (0,0)
        assert!((p.values()[3] - 0.28).abs() < 1e-15); // (1,1)
        assert!((p.total() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn product_with_shared_variable() {
        // P(A) * P(B|A) laid out as factor over (A, B).
        let pa = Factor::new(vec![0], vec![2], vec![0.6, 0.4]).unwrap();
        let pba = Factor::new(vec![0, 1], vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        let joint = pa.product(&pba).unwrap();
        assert!((joint.values()[0] - 0.54).abs() < 1e-15);
        assert!((joint.values()[3] - 0.32).abs() < 1e-15);
        // Conflicting cardinalities.
        let bad = Factor::new(vec![0], vec![3], vec![0.2, 0.3, 0.5]).unwrap();
        assert!(pa.product(&bad).is_err());
    }

    #[test]
    fn sum_out_recovers_marginal() {
        let joint =
            Factor::new(vec![0, 1], vec![2, 2], vec![0.54, 0.06, 0.08, 0.32]).unwrap();
        let pb = joint.sum_out(0);
        assert_eq!(pb.vars(), &[1]);
        assert!((pb.values()[0] - 0.62).abs() < 1e-15);
        assert!((pb.values()[1] - 0.38).abs() < 1e-15);
        // Summing out a variable not in scope is a no-op.
        assert_eq!(joint.sum_out(9), joint);
    }

    #[test]
    fn reduce_conditions_on_evidence() {
        let joint =
            Factor::new(vec![0, 1], vec![2, 2], vec![0.54, 0.06, 0.08, 0.32]).unwrap();
        let given_b1 = joint.reduce(1, 1).unwrap();
        assert_eq!(given_b1.vars(), &[0]);
        assert!((given_b1.values()[0] - 0.06).abs() < 1e-15);
        let post = given_b1.normalized().unwrap();
        assert!((post.values()[0] - 0.06 / 0.38).abs() < 1e-12);
        assert!(joint.reduce(1, 5).is_err());
    }

    #[test]
    fn normalize_zero_factor_is_inconsistent_evidence() {
        let z = Factor::new(vec![0], vec![2], vec![0.0, 0.0]).unwrap();
        assert!(matches!(z.normalized(), Err(BnError::InconsistentEvidence)));
    }

    #[test]
    fn product_commutes_up_to_scope_order() {
        let a = Factor::new(vec![0, 1], vec![2, 3], (1..=6).map(f64::from).collect()).unwrap();
        let b = Factor::new(vec![1, 2], vec![3, 2], (1..=6).map(f64::from).collect()).unwrap();
        let ab = a.product(&b).unwrap();
        let ba = b.product(&a).unwrap();
        // Same totals and same marginal over variable 2.
        assert!((ab.total() - ba.total()).abs() < 1e-12);
        let m1 = ab.sum_out(0).sum_out(1);
        let m2 = ba.sum_out(0).sum_out(1);
        for (x, y) in m1.values().iter().zip(m2.values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
