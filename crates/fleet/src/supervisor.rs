//! The fleet supervisor: spawns N serve shards, probes them, restarts
//! what crashes or wedges, and drains everything on shutdown.
//!
//! Lifecycle, per shard, on its own monitor thread:
//!
//! 1. **Liveness** — `try_wait` catches a child that exited or was
//!    killed (crash tolerance: the failure is *detected*, then
//!    *handled* by a respawn — the paper's tolerance/removal pair at
//!    process granularity).
//! 2. **Health** — a `GET /healthz` probe (answered by the child off
//!    its connection thread, never a worker slot) catches a process
//!    that is alive but wedged; `unhealthy_after` consecutive failures
//!    demote the shard and force a kill + respawn.
//! 3. **Restart** — respawns back off exponentially
//!    (`restart_backoff` doubling up to `max_backoff`) so a child
//!    that dies on boot cannot hot-loop the supervisor; a successful
//!    respawn reinstalls the shard under a new generation, which tells
//!    the router to drop its pooled connections to the dead process.
//!
//! Shutdown is ordered so in-flight client work finishes: the front
//! stops accepting and its connection threads drain first, then the
//! monitors stop, and only then are the children asked to drain
//! (stdin close), with a kill fallback after `drain_timeout`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sysunc_serve::http::Limits;
use sysunc_serve::{HttpClient, ShutdownSignal};

use crate::child::{locate_serve_bin, ShardChild};
use crate::error::{FleetError, Result};
use crate::metrics::FleetMetrics;
use crate::router::acceptor_loop;
use crate::shard::ShardTable;

/// Tunables of a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard (child process) count; placement is `hash % shards`.
    pub shards: usize,
    /// The `sysunc-serve` binary to spawn; `None` resolves via
    /// [`locate_serve_bin`] at start.
    pub serve_bin: Option<PathBuf>,
    /// Front bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads per child.
    pub child_workers: usize,
    /// Propagate queue slots per child.
    pub child_queue: usize,
    /// Response-cache entries per child.
    pub child_cache_capacity: usize,
    /// Response-cache entry TTL per child; `None` never expires.
    pub child_cache_ttl: Option<Duration>,
    /// Delay between health probes of one shard.
    pub probe_interval: Duration,
    /// Budget for one probe (connect + healthz response).
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a live child is declared
    /// wedged and recycled.
    pub unhealthy_after: u32,
    /// First respawn backoff; doubles per consecutive failure.
    pub restart_backoff: Duration,
    /// Ceiling for the doubled respawn backoff.
    pub max_backoff: Duration,
    /// How long a draining child may take before being killed.
    pub drain_timeout: Duration,
    /// Budget for a child's startup handshake line.
    pub handshake_timeout: Duration,
    /// Concurrent front connections before 503-and-close.
    pub max_connections: usize,
    /// End-to-end deadline for routing one request, covering retries
    /// across a shard restart.
    pub request_timeout: Duration,
    /// Front socket read poll interval; bounds shutdown latency.
    pub poll_interval: Duration,
    /// HTTP message size limits at the front.
    pub limits: Limits,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            serve_bin: None,
            addr: "127.0.0.1:0".into(),
            child_workers: 2,
            child_queue: 64,
            child_cache_capacity: 1024,
            child_cache_ttl: None,
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(500),
            unhealthy_after: 2,
            restart_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(10),
            max_connections: 128,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            limits: Limits::default(),
        }
    }
}

impl FleetConfig {
    /// The child argv (after `--child --addr 127.0.0.1:0`) this config
    /// asks for.
    fn child_args(&self) -> Vec<String> {
        let mut args = vec![
            "--workers".into(),
            self.child_workers.max(1).to_string(),
            "--queue".into(),
            self.child_queue.max(1).to_string(),
            "--cache-capacity".into(),
            self.child_cache_capacity.to_string(),
        ];
        if let Some(ttl) = self.child_cache_ttl {
            args.push("--cache-ttl-ms".into());
            args.push(ttl.as_millis().to_string());
        }
        args
    }
}

/// State shared between the router, the monitors, and the handle.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) table: ShardTable,
    pub(crate) metrics: Arc<FleetMetrics>,
    pub(crate) signal: ShutdownSignal,
    pub(crate) config: FleetConfig,
    /// Rotates discovery (`any shard`) placement across shards.
    pub(crate) rotor: AtomicU64,
    pub(crate) started: Instant,
}

type ChildSlots = Arc<Vec<Mutex<Option<ShardChild>>>>;

/// The fleet: construct with [`Fleet::start`].
#[derive(Debug)]
pub struct Fleet;

impl Fleet {
    /// Spawns the shards (each must complete its readiness handshake),
    /// binds the front, and starts the monitor threads. On return the
    /// fleet accepts and routes traffic.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when no serve binary can be located,
    /// [`FleetError::Spawn`] when a shard fails to start, and
    /// [`FleetError::Io`] for front bind failures. Any children
    /// already spawned are killed before the error returns.
    pub fn start(config: FleetConfig) -> Result<FleetHandle> {
        let serve_bin = match &config.serve_bin {
            Some(path) => path.clone(),
            None => locate_serve_bin().ok_or_else(|| {
                FleetError::Config(
                    "cannot locate the sysunc-serve binary; set FleetConfig::serve_bin \
                     or the SYSUNC_SERVE_BIN environment variable"
                    .into(),
                )
            })?,
        };
        let shards = config.shards.max(1);
        let table = ShardTable::new(shards);
        let metrics = Arc::new(FleetMetrics::new(shards));
        let child_args = config.child_args();
        let children: ChildSlots =
            Arc::new((0..shards).map(|_| Mutex::new(None)).collect());
        for slot in 0..shards {
            let child = ShardChild::spawn(&serve_bin, &child_args, config.handshake_timeout)?;
            table.install(slot, child.addr());
            if let Some(m) = children.get(slot) {
                *lock_child(m) = Some(child);
            }
        }

        let listener = std::net::TcpListener::bind(&config.addr)
            .map_err(|e| FleetError::Io(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener.local_addr()?;
        let signal = ShutdownSignal::new();
        let shared = Arc::new(Shared {
            table,
            metrics: Arc::clone(&metrics),
            signal: signal.clone(),
            config,
            rotor: AtomicU64::new(0),
            started: Instant::now(),
        });

        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sysunc-fleet-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_shared))
            .map_err(|e| FleetError::Io(e.to_string()))?;

        let mut monitors = Vec::with_capacity(shards);
        for slot in 0..shards {
            let shared = Arc::clone(&shared);
            let children = Arc::clone(&children);
            let serve_bin = serve_bin.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sysunc-fleet-monitor-{slot}"))
                .spawn(move || monitor_loop(slot, &shared, &children, &serve_bin))
                .map_err(|e| FleetError::Io(e.to_string()))?;
            monitors.push(handle);
        }

        Ok(FleetHandle {
            addr,
            shared,
            children,
            metrics,
            acceptor: Some(acceptor),
            monitors,
        })
    }
}

/// Locks a child slot, recovering from poisoning (a dead monitor must
/// not wedge shutdown).
fn lock_child(m: &Mutex<Option<ShardChild>>) -> std::sync::MutexGuard<'_, Option<ShardChild>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running fleet: front address, metrics, crash-injection and
/// shutdown control.
#[derive(Debug)]
pub struct FleetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    children: ChildSlots,
    metrics: Arc<FleetMetrics>,
    acceptor: Option<JoinHandle<()>>,
    monitors: Vec<JoinHandle<()>>,
}

impl FleetHandle {
    /// The front's bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet-level metrics registry.
    pub fn metrics(&self) -> Arc<FleetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Number of shards (fixed).
    pub fn shards(&self) -> usize {
        self.shared.table.len()
    }

    /// Number of currently healthy shards.
    pub fn healthy_shards(&self) -> usize {
        self.shared.table.healthy_count()
    }

    /// The shard addresses as currently installed (tests use this to
    /// compare routed answers against direct single-shard serving).
    pub fn shard_addrs(&self) -> Vec<Option<SocketAddr>> {
        self.shared.table.views().iter().map(|v| v.addr).collect()
    }

    /// Crash injection for fleet-semantics tests: SIGKILLs the shard's
    /// process. The monitor notices, demotes the shard, and respawns
    /// it with backoff. Returns `false` when the slot holds no child.
    pub fn kill_shard(&self, slot: usize) -> bool {
        let Some(m) = self.children.get(slot) else { return false };
        let mut guard = lock_child(m);
        match guard.as_mut() {
            Some(child) => {
                child.kill();
                true
            }
            None => false,
        }
    }

    /// Waits until `want` shards are healthy or `timeout` passes;
    /// returns whether the target was reached. Test/ops helper.
    pub fn await_healthy(&self, want: usize, timeout: Duration) -> bool {
        let end = Instant::now() + timeout;
        while Instant::now() < end {
            if self.shared.table.healthy_count() >= want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.table.healthy_count() >= want
    }

    fn shutdown_inner(&mut self) {
        // 1. Stop the front: no new connections; in-flight requests on
        //    connection threads finish against still-running children.
        self.shared.signal.trigger_and_wake(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // 2. Stop the monitors so nothing respawns what we drain next.
        for handle in self.monitors.drain(..) {
            let _ = handle.join();
        }
        // 3. Drain the children (stdin close), kill stragglers.
        for m in self.children.iter() {
            if let Some(child) = lock_child(m).take() {
                child.drain(self.shared.config.drain_timeout);
            }
        }
    }

    /// Gracefully stops the fleet: front drains first, then monitors,
    /// then every child (in-flight requests complete before any child
    /// is asked to exit).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl Drop for FleetHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Sleeps `total` in short steps, returning early when the fleet is
/// shutting down. Returns `false` on early exit.
fn sleep_unless_shutdown(shared: &Shared, total: Duration) -> bool {
    let end = Instant::now() + total;
    while Instant::now() < end {
        if shared.signal.is_triggered() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10).min(total));
    }
    !shared.signal.is_triggered()
}

/// One `GET /healthz` probe against a shard.
fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    match HttpClient::connect_with_timeout(addr, timeout) {
        Ok(mut client) => matches!(client.get("/healthz"), Ok(r) if r.status == 200),
        Err(_) => false,
    }
}

/// Respawns the shard in `slot`, backing off on failure, until it
/// succeeds or shutdown begins. Returns whether a child was installed.
fn respawn(
    slot: usize,
    shared: &Shared,
    children: &ChildSlots,
    serve_bin: &std::path::Path,
) -> bool {
    let args = shared.config.child_args();
    let mut backoff = shared.config.restart_backoff;
    loop {
        if shared.signal.is_triggered() {
            return false;
        }
        if !sleep_unless_shutdown(shared, backoff) {
            return false;
        }
        match ShardChild::spawn(serve_bin, &args, shared.config.handshake_timeout) {
            Ok(child) => {
                shared.table.install(slot, child.addr());
                if let Some(m) = children.get(slot) {
                    *lock_child(m) = Some(child);
                }
                shared.metrics.restarted(slot);
                return true;
            }
            Err(_) => {
                backoff = (backoff * 2).min(shared.config.max_backoff);
            }
        }
    }
}

/// The per-shard monitor: liveness via `try_wait`, health via periodic
/// `/healthz` probes, recycle on crash or wedge.
fn monitor_loop(
    slot: usize,
    shared: &Arc<Shared>,
    children: &ChildSlots,
    serve_bin: &std::path::Path,
) {
    let mut failed_probes = 0u32;
    while sleep_unless_shutdown(shared, shared.config.probe_interval) {
        let alive = match children.get(slot) {
            Some(m) => lock_child(m).as_mut().map(ShardChild::is_alive).unwrap_or(false),
            None => return,
        };
        if !alive {
            // Crashed (or killed): demote, reap, respawn with backoff.
            shared.table.mark_unhealthy(slot);
            if let Some(m) = children.get(slot) {
                lock_child(m).take();
            }
            failed_probes = 0;
            if !respawn(slot, shared, children, serve_bin) {
                return; // shutdown began mid-respawn
            }
            continue;
        }
        let addr = shared.table.view(slot).addr;
        let healthy =
            addr.map(|a| probe(a, shared.config.probe_timeout)).unwrap_or(false);
        if healthy {
            failed_probes = 0;
            shared.table.mark_healthy(slot);
        } else {
            shared.metrics.probe_failed();
            failed_probes += 1;
            if failed_probes >= shared.config.unhealthy_after.max(1) {
                // Alive but wedged: recycle the process.
                shared.table.mark_unhealthy(slot);
                if let Some(m) = children.get(slot) {
                    if let Some(mut child) = lock_child(m).take() {
                        child.kill();
                    }
                }
                failed_probes = 0;
                if !respawn(slot, shared, children, serve_bin) {
                    return;
                }
            }
        }
    }
}
