/root/repo/target/debug/deps/sysunc_bayesnet-30b2287ed76b08e1.d: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

/root/repo/target/debug/deps/libsysunc_bayesnet-30b2287ed76b08e1.rmeta: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

crates/bayesnet/src/lib.rs:
crates/bayesnet/src/error.rs:
crates/bayesnet/src/evidential.rs:
crates/bayesnet/src/factor.rs:
crates/bayesnet/src/infer.rs:
crates/bayesnet/src/learn.rs:
crates/bayesnet/src/mpe.rs:
crates/bayesnet/src/network.rs:
crates/bayesnet/src/ranked.rs:
crates/bayesnet/src/structure.rs:
