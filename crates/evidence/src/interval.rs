//! Closed-interval arithmetic — the simplest representation of *epistemic*
//! uncertainty about a scalar (paper Sec. III-B: a quantity we could know
//! but do not).

use crate::error::{EvidenceError, Result};
use std::fmt;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed real interval `[lo, hi]`.
///
/// Arithmetic follows the usual conservative (worst-case) rules, so results
/// always *enclose* the true value — the containment guarantee that makes
/// intervals sound for safety analysis.
///
/// # Examples
///
/// ```
/// use sysunc_evidence::Interval;
/// let a = Interval::new(1.0, 2.0)?;
/// let b = Interval::new(-1.0, 1.0)?;
/// let c = a * b;
/// assert_eq!(c.lo(), -2.0);
/// assert_eq!(c.hi(), 2.0);
/// # Ok::<(), sysunc_evidence::EvidenceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates an interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidInterval`] when `lo > hi` or either
    /// endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Err(EvidenceError::InvalidInterval(format!("[{lo}, {hi}]")));
        }
        Ok(Self { lo, hi })
    }

    /// The degenerate interval `[x, x]`.
    pub fn degenerate(x: f64) -> Self {
        Self { lo: x, hi: x }
    }

    /// The unit interval `[0, 1]` — total epistemic ignorance about a
    /// probability.
    pub fn unit() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo` — the scalar amount of epistemic uncertainty.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Whether `other` is entirely inside `self`.
    pub fn encloses(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Clamps to `[0, 1]`, the valid range of probabilities.
    pub fn clamp_unit(&self) -> Interval {
        Interval { lo: self.lo.clamp(0.0, 1.0), hi: self.hi.clamp(0.0, 1.0) }
    }

    /// Applies a monotone non-decreasing function to both endpoints.
    pub fn map_monotone<F: Fn(f64) -> f64>(&self, f: F) -> Interval {
        Interval { lo: f(self.lo), hi: f(self.hi) }
    }

    /// `1 - [lo, hi]` — the complement of a probability interval.
    /// Range: both endpoints of the result lie in `[0, 1]`.
    pub fn complement_probability(&self) -> Interval {
        Interval { lo: 1.0 - self.hi, hi: 1.0 - self.lo }
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval { lo: self.lo + rhs.lo, hi: self.hi + rhs.hi }
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval { lo: self.lo - rhs.hi, hi: self.hi - rhs.lo }
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        let c = [self.lo * rhs.lo, self.lo * rhs.hi, self.hi * rhs.lo, self.hi * rhs.hi];
        Interval {
            lo: c.iter().copied().fold(f64::INFINITY, f64::min),
            hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl Div for Interval {
    type Output = Interval;

    /// # Panics
    ///
    /// Panics when the divisor interval contains zero.
    fn div(self, rhs: Interval) -> Interval {
        assert!(
            !rhs.contains(0.0),
            "interval division by an interval containing zero: [{}, {}]",
            rhs.lo,
            rhs.hi
        );
        self * Interval { lo: 1.0 / rhs.hi, hi: 1.0 / rhs.lo }
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval { lo: -self.hi, hi: -self.lo }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl ToJson for Interval {
    fn to_json(&self) -> Json {
        obj([("lo", Json::Num(self.lo)), ("hi", Json::Num(self.hi))])
    }
}

impl FromJson for Interval {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        Interval::new(field(v, "lo")?, field(v, "hi")?)
            .map_err(|e| JsonError::decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_inverted_or_nan() {
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn arithmetic_containment_property() {
        // For any points inside the operands, the op result is inside the
        // interval result.
        let a = Interval::new(-1.5, 2.0).unwrap();
        let b = Interval::new(0.5, 3.0).unwrap();
        let xs = [-1.5, -0.3, 0.0, 1.0, 2.0];
        let ys = [0.5, 1.1, 2.9, 3.0];
        for &x in &xs {
            if !a.contains(x) {
                continue;
            }
            for &y in &ys {
                assert!((a + b).contains(x + y));
                assert!((a - b).contains(x - y));
                assert!((a * b).contains(x * y));
                assert!((a / b).contains(x / y));
            }
        }
    }

    #[test]
    fn multiplication_sign_cases() {
        let neg = Interval::new(-3.0, -1.0).unwrap();
        let pos = Interval::new(2.0, 4.0).unwrap();
        let prod = neg * pos;
        assert_eq!(prod.lo(), -12.0);
        assert_eq!(prod.hi(), -2.0);
    }

    #[test]
    #[should_panic(expected = "containing zero")]
    fn division_by_zero_interval_panics() {
        let a = Interval::new(1.0, 2.0).unwrap();
        let b = Interval::new(-1.0, 1.0).unwrap();
        let _ = a / b;
    }

    #[test]
    fn set_operations() {
        let a = Interval::new(0.0, 2.0).unwrap();
        let b = Interval::new(1.0, 3.0).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!((i.lo(), i.hi()), (1.0, 2.0));
        let h = a.hull(&b);
        assert_eq!((h.lo(), h.hi()), (0.0, 3.0));
        let c = Interval::new(5.0, 6.0).unwrap();
        assert!(a.intersect(&c).is_none());
        assert!(h.encloses(&a));
        assert!(!a.encloses(&h));
    }

    #[test]
    fn probability_helpers() {
        let p = Interval::new(0.2, 0.5).unwrap();
        let q = p.complement_probability();
        assert_eq!((q.lo(), q.hi()), (0.5, 0.8));
        let wide = Interval::new(-0.5, 1.5).unwrap();
        let cl = wide.clamp_unit();
        assert_eq!((cl.lo(), cl.hi()), (0.0, 1.0));
        assert_eq!(Interval::unit().width(), 1.0);
        assert_eq!(Interval::degenerate(3.0).width(), 0.0);
    }

    #[test]
    fn monotone_map() {
        let a = Interval::new(0.0, 1.0).unwrap();
        let e = a.map_monotone(|x| x.exp());
        assert_eq!(e.lo(), 1.0);
        assert!((e.hi() - std::f64::consts::E).abs() < 1e-15);
    }
}
