//! In-tree pseudo-random number generation — the workspace's only source
//! of randomness, replacing the external `rand` crate so that offline
//! self-containedness is a property of the code base itself (an
//! uncertainty-*prevention* means in the paper's taxonomy: a toolchain
//! that cannot fail dependency resolution has no epistemic uncertainty
//! about whether it builds).
//!
//! The layout deliberately mirrors `rand`'s public surface
//! ([`RngCore`], [`SeedableRng`], [`Rng`], [`rngs::StdRng`]) so call
//! sites read identically to idiomatic Rust found elsewhere.
//!
//! The default generator is **xoshiro256++** (Blackman & Vigna), seeded
//! through **SplitMix64** — a standard, well-tested combination with a
//! 2^256-1 period, far beyond anything the experiment harness needs.
//!
//! ```
//! use sysunc_prob::rng::{Rng as _, SeedableRng, StdRng};
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.random();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// A stream of pseudo-random bits.
///
/// Object-safe so heterogeneous code can take `&mut dyn RngCore`, exactly
/// like the `rand` trait of the same name.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed, deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for ergonomic sampling of primitive values.
///
/// Blanket-implemented for every [`RngCore`], including `&mut dyn RngCore`
/// trait objects.
pub trait Rng: RngCore {
    /// Draws a value of a primitive type from its standard distribution
    /// (uniform on `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn from an RNG's standard distribution.
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// SplitMix64: expands a 64-bit seed into a sequence of well-mixed words.
///
/// Used for seeding here and for the propcheck runner's per-case seed
/// derivation; see Vigna, "Further scramblings of Marsaglia's xorshift
/// generators".
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: **xoshiro256++**.
///
/// Deterministic given its seed, `Send + Sync`-friendly (plain data), and
/// fast (a handful of xor/shift/rotate ops per draw). Not cryptographic —
/// fine for Monte Carlo, never for secrets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator from four raw state words.
    ///
    /// At least one word must be non-zero; an all-zero state is replaced by
    /// a fixed non-zero constant state to keep the generator well-defined.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the transition
            // function; remap it to a fixed non-zero state (the SplitMix64
            // expansion of 0xDEAD_BEEF, precomputed so the remap is pure
            // data, not a seeded constructor call). Any caller-supplied
            // seed already avoids this branch, so reproducibility is
            // unaffected.
            return Self {
                s: [
                    0x4adf_b90f_68c9_eb9b,
                    0xde58_6a31_41a1_0922,
                    0x021f_bc2f_8e1c_fc1d,
                    0x7466_ce73_7be1_6790,
                ],
            };
        }
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs` so imports stay familiar.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_draws_lie_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min of 10k uniforms should be tiny, got {lo}");
        assert!(hi > 0.99, "max of 10k uniforms should approach 1, got {hi}");
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        // Standard error is 1/sqrt(12 n) ~ 9e-4; allow five sigma.
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn works_through_trait_objects() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.random();
        assert!((0.0..1.0).contains(&u));
        assert!(dynrng.next_u32() as u64 <= u32::MAX as u64);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} stayed zero");
            }
        }
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn zero_state_remap_matches_its_documented_expansion() {
        // The precomputed constant state is the SplitMix64 expansion of
        // 0xDEAD_BEEF — the remapped stream is unchanged from when the
        // remap was written as a seeded constructor call.
        assert_eq!(StdRng::from_state([0; 4]), StdRng::seed_from_u64(0xDEAD_BEEF));
    }

    #[test]
    fn bool_draws_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}
