//! Parameter estimation: fitting parametric models to observations.
//!
//! This is the constructive step of the paper's frequentist modeling
//! (Fig. 2 model B / Sec. III-B): turning repeated observations into a
//! probabilistic model, with the epistemic quality of the fit made
//! explicit through log-likelihoods and information criteria.

use crate::dist::{Continuous, Exponential, LogNormal, Normal, Uniform, Weibull};
use crate::error::{ProbError, Result};

/// Maximum-likelihood fit of a normal distribution.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for fewer than two observations and
/// [`ProbError::InvalidParameter`] for degenerate (constant) samples.
pub fn fit_normal(xs: &[f64]) -> Result<Normal> {
    if xs.len() < 2 {
        return Err(ProbError::EmptyData);
    }
    let mean = crate::stats::mean(xs)?;
    // MLE uses the biased (1/n) variance.
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    if var <= 0.0 {
        return Err(ProbError::InvalidParameter("constant sample".into()));
    }
    Normal::new(mean, var.sqrt())
}

/// Maximum-likelihood fit of an exponential distribution.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for empty input and
/// [`ProbError::InvalidParameter`] for non-positive observations or a
/// zero mean.
pub fn fit_exponential(xs: &[f64]) -> Result<Exponential> {
    if xs.is_empty() {
        return Err(ProbError::EmptyData);
    }
    if xs.iter().any(|&x| x < 0.0) {
        return Err(ProbError::InvalidParameter("negative observation".into()));
    }
    let mean = crate::stats::mean(xs)?;
    if mean <= 0.0 {
        return Err(ProbError::InvalidParameter("zero mean".into()));
    }
    Exponential::new(1.0 / mean)
}

/// Maximum-likelihood fit of a log-normal distribution (normal MLE on the
/// logarithms).
///
/// # Errors
///
/// Returns [`ProbError::InvalidParameter`] for non-positive observations;
/// otherwise as [`fit_normal`].
pub fn fit_lognormal(xs: &[f64]) -> Result<LogNormal> {
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(ProbError::InvalidParameter(
            "log-normal fit requires strictly positive data".into(),
        ));
    }
    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let base = fit_normal(&logs)?;
    LogNormal::new(base.mu(), base.sigma())
}

/// Maximum-likelihood fit of the uniform distribution (the sample range).
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for fewer than two observations and
/// [`ProbError::InvalidParameter`] for constant samples.
pub fn fit_uniform(xs: &[f64]) -> Result<Uniform> {
    if xs.len() < 2 {
        return Err(ProbError::EmptyData);
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Uniform::new(lo, hi)
}

/// Maximum-likelihood fit of a Weibull distribution (Newton iteration on
/// the shape profile likelihood).
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for fewer than two observations,
/// [`ProbError::InvalidParameter`] for non-positive data, and propagates a
/// convergence failure as an invalid-parameter error.
pub fn fit_weibull(xs: &[f64]) -> Result<Weibull> {
    if xs.len() < 2 {
        return Err(ProbError::EmptyData);
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(ProbError::InvalidParameter(
            "Weibull fit requires strictly positive data".into(),
        ));
    }
    let n = xs.len() as f64;
    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let mean_log: f64 = logs.iter().sum::<f64>() / n;
    // Profile likelihood equation:
    // f(k) = Σ x^k ln x / Σ x^k − 1/k − mean_log = 0, increasing in k.
    let f = |k: f64| -> f64 {
        let mut s_xk = 0.0;
        let mut s_xk_lx = 0.0;
        for (&x, &lx) in xs.iter().zip(&logs) {
            let xk = x.powf(k);
            s_xk += xk;
            s_xk_lx += xk * lx;
        }
        s_xk_lx / s_xk - 1.0 / k - mean_log
    };
    // Bracket then bisect (robust; the equation is monotone in k).
    let mut lo = 1e-3;
    let mut hi = 1.0;
    while f(hi) < 0.0 {
        hi *= 2.0;
        if hi > 1e4 {
            return Err(ProbError::InvalidParameter(
                "Weibull shape estimation did not bracket".into(),
            ));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi {
            break;
        }
    }
    let k = 0.5 * (lo + hi);
    let scale = (xs.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Weibull::new(k, scale)
}

/// Total log-likelihood of a sample under a distribution.
pub fn log_likelihood<D: Continuous + ?Sized>(dist: &D, xs: &[f64]) -> f64 {
    xs.iter().map(|&x| dist.ln_pdf(x)).sum()
}

/// Akaike information criterion `2k - 2 ln L` for a fitted model with
/// `n_params` free parameters — the standard epistemic penalty for model
/// complexity when choosing between candidate model families.
pub fn aic<D: Continuous + ?Sized>(dist: &D, xs: &[f64], n_params: usize) -> f64 {
    2.0 * n_params as f64 - 2.0 * log_likelihood(dist, xs)
}

/// Candidate families for automatic model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FittedFamily {
    /// Normal distribution (2 parameters).
    Normal,
    /// Exponential distribution (1 parameter).
    Exponential,
    /// Log-normal distribution (2 parameters).
    LogNormal,
    /// Weibull distribution (2 parameters).
    Weibull,
    /// Uniform distribution (2 parameters).
    Uniform,
}

/// Fits all applicable candidate families and returns them with AIC
/// scores, best first. Positive-only families are skipped for data with
/// non-positive values.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when no family could be fitted.
pub fn select_model(xs: &[f64]) -> Result<Vec<(FittedFamily, Box<dyn Continuous>, f64)>> {
    let mut out: Vec<(FittedFamily, Box<dyn Continuous>, f64)> = Vec::new();
    if let Ok(d) = fit_normal(xs) {
        let score = aic(&d, xs, 2);
        out.push((FittedFamily::Normal, Box::new(d), score));
    }
    if let Ok(d) = fit_uniform(xs) {
        let score = aic(&d, xs, 2);
        out.push((FittedFamily::Uniform, Box::new(d), score));
    }
    if xs.iter().all(|&x| x > 0.0) {
        if let Ok(d) = fit_exponential(xs) {
            let score = aic(&d, xs, 1);
            out.push((FittedFamily::Exponential, Box::new(d), score));
        }
        if let Ok(d) = fit_lognormal(xs) {
            let score = aic(&d, xs, 2);
            out.push((FittedFamily::LogNormal, Box::new(d), score));
        }
        if let Ok(d) = fit_weibull(xs) {
            let score = aic(&d, xs, 2);
            out.push((FittedFamily::Weibull, Box::new(d), score));
        }
    }
    if out.is_empty() {
        return Err(ProbError::EmptyData);
    }
    out.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite AIC")); // tidy: allow(panic)
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;
    use crate::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(314)
    }

    #[test]
    fn normal_fit_recovers_parameters() {
        let truth = Normal::new(3.0, 1.5).unwrap();
        let xs = truth.sample_n(&mut rng(), 50_000);
        let fit = fit_normal(&xs).unwrap();
        assert!((fit.mu() - 3.0).abs() < 0.03);
        assert!((fit.sigma() - 1.5).abs() < 0.03);
        assert!(fit_normal(&[1.0]).is_err());
        assert!(fit_normal(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let truth = Exponential::new(2.5).unwrap();
        let xs = truth.sample_n(&mut rng(), 50_000);
        let fit = fit_exponential(&xs).unwrap();
        assert!((fit.rate() - 2.5).abs() < 0.05);
        assert!(fit_exponential(&[]).is_err());
        assert!(fit_exponential(&[-1.0]).is_err());
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::new(0.5, 0.8).unwrap();
        let xs = truth.sample_n(&mut rng(), 50_000);
        let fit = fit_lognormal(&xs).unwrap();
        assert!((fit.mu() - 0.5).abs() < 0.02);
        assert!((fit.sigma() - 0.8).abs() < 0.02);
        assert!(fit_lognormal(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let truth = Weibull::new(2.2, 1.7).unwrap();
        let xs = truth.sample_n(&mut rng(), 50_000);
        let fit = fit_weibull(&xs).unwrap();
        assert!((fit.shape() - 2.2).abs() < 0.05, "shape {}", fit.shape());
        assert!((fit.scale() - 1.7).abs() < 0.03, "scale {}", fit.scale());
        assert!(fit_weibull(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn weibull_fit_shape_one_is_exponential() {
        let truth = Exponential::new(1.0).unwrap();
        let xs = truth.sample_n(&mut rng(), 50_000);
        let fit = fit_weibull(&xs).unwrap();
        assert!((fit.shape() - 1.0).abs() < 0.03);
    }

    #[test]
    fn aic_prefers_the_true_family() {
        // Weibull(3, 2) data: the Weibull fit must beat normal and
        // exponential on AIC.
        let truth = Weibull::new(3.0, 2.0).unwrap();
        let xs = truth.sample_n(&mut rng(), 5_000);
        let ranking = select_model(&xs).unwrap();
        assert_eq!(ranking[0].0, FittedFamily::Weibull, "ranking: {:?}",
            ranking.iter().map(|(f, _, a)| (*f, *a)).collect::<Vec<_>>());
    }

    #[test]
    fn aic_prefers_exponential_for_exponential_data() {
        let truth = Exponential::new(1.3).unwrap();
        let xs = truth.sample_n(&mut rng(), 5_000);
        let ranking = select_model(&xs).unwrap();
        // Exponential or Weibull (which contains it) must win; the 1-param
        // exponential should edge out on the AIC penalty.
        assert!(
            matches!(ranking[0].0, FittedFamily::Exponential | FittedFamily::Weibull),
            "{:?}",
            ranking[0].0
        );
    }

    #[test]
    fn select_model_skips_positive_families_for_signed_data() {
        let truth = Normal::new(0.0, 1.0).unwrap();
        let xs = truth.sample_n(&mut rng(), 2_000);
        let ranking = select_model(&xs).unwrap();
        assert!(ranking.iter().all(|(f, _, _)| matches!(
            f,
            FittedFamily::Normal | FittedFamily::Uniform
        )));
        assert_eq!(ranking[0].0, FittedFamily::Normal);
    }

    #[test]
    fn log_likelihood_is_maximized_at_fit() {
        let truth = Normal::new(1.0, 2.0).unwrap();
        let xs = truth.sample_n(&mut rng(), 10_000);
        let fit = fit_normal(&xs).unwrap();
        let ll_fit = log_likelihood(&fit, &xs);
        let ll_off = log_likelihood(&Normal::new(1.5, 2.0).unwrap(), &xs);
        assert!(ll_fit > ll_off);
    }
}
