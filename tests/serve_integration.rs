//! End-to-end tests of the propagation server: wire fidelity under
//! concurrency, the content-addressed response cache (bit-identical
//! hits, LRU eviction), batch propagation with intra-batch dedup,
//! backpressure (`503` from both the job queue and the accept-side
//! connection cap), deadlines (`408`), graceful shutdown, and the
//! loadgen summary format — all over real TCP connections against an
//! ephemeral-port server.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sysunc::prob::json::{self, Json};
use sysunc::{engine_by_name, ModelRegistry, UncertainInput, WireRequest, ENGINE_NAMES};
use sysunc_serve::{HttpClient, Server, ServerConfig};

fn standard_inputs() -> Vec<UncertainInput> {
    vec![
        UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
        UncertainInput::Uniform { a: 0.0, b: 2.0 },
    ]
}

/// The acceptance bar for the serving layer: at least 8 concurrent
/// client threads, each comparing every report byte the server returns
/// against the same propagation run directly in-process. Serving must
/// not perturb results — not by a ULP.
#[test]
fn concurrent_clients_get_bit_identical_reports() {
    let server = Server::start(
        ServerConfig { workers: 4, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let addr = server.addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let local = ModelRegistry::standard().expect("registry builds");
                let mut client = HttpClient::connect(addr).expect("connects");
                for call in 0..3 {
                    let engine_name = ENGINE_NAMES[(t + call) % ENGINE_NAMES.len()];
                    let mut wire =
                        WireRequest::new(engine_name, "linear-2x3y", standard_inputs());
                    wire.budget = 512;
                    wire.seed = (t as u64) * 1000 + call as u64;
                    wire.threshold = Some(2.5);
                    let served = client.propagate(&wire).expect("server propagates");

                    let model = local.get("linear-2x3y").expect("registered");
                    let request = wire.to_request(model).expect("valid");
                    let engine = wire.resolve_engine().expect("known engine");
                    let direct = engine.propagate(&request).expect("runs in-process");
                    assert_eq!(
                        served, direct,
                        "served report differs from in-process run \
                         (engine {engine_name}, thread {t}, call {call})"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread succeeds");
    }
    server.shutdown();
}

/// A registry whose single model blocks until `release` flips,
/// letting tests hold the worker pool at a known occupancy.
fn blocking_registry(release: Arc<AtomicBool>) -> ModelRegistry {
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "blocker",
            Box::new(move |x: &[f64]| {
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                x.iter().sum::<f64>()
            }),
        )
        .expect("registers");
    registry
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            request_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
        blocking_registry(Arc::clone(&release)),
    )
    .expect("server starts");
    let addr = server.addr();

    let wire = WireRequest::new("monte-carlo", "blocker", standard_inputs());
    let body = json::to_string(&wire);

    // Occupy the single worker, then the single queue slot.
    let in_flight: Vec<_> = (0..2)
        .map(|_| {
            let wire = wire.clone();
            let handle = std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connects");
                client.propagate(&wire)
            });
            // Stagger so the first request reaches the worker before
            // the second claims the queue slot.
            std::thread::sleep(Duration::from_millis(150));
            handle
        })
        .collect();

    // Worker busy + queue full: the next request must be refused
    // immediately with backpressure advice, not queued or dropped.
    let mut client = HttpClient::connect(addr).expect("connects");
    let refused = client
        .request("POST", "/v1/propagate", Some(&body))
        .expect("response arrives");
    assert_eq!(refused.status, 503, "body: {}", refused.body_text());
    assert_eq!(refused.header("Retry-After"), Some("1"));

    // Releasing the blocker lets both accepted requests finish
    // normally: 503 shed load without corrupting in-flight work.
    release.store(true, Ordering::Release);
    for handle in in_flight {
        let report = handle.join().expect("joins").expect("accepted request completes");
        assert_eq!(report.evaluations, wire.budget);
    }
    server.shutdown();
}

#[test]
fn deadline_exceeded_answers_408() {
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "slow",
            Box::new(|x: &[f64]| {
                std::thread::sleep(Duration::from_millis(2));
                x.iter().sum::<f64>()
            }),
        )
        .expect("registers");
    let server = Server::start(
        ServerConfig {
            workers: 1,
            request_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("server starts");

    // 4096 evaluations at 2 ms each can never meet an 80 ms deadline.
    let wire = WireRequest::new("monte-carlo", "slow", standard_inputs());
    let mut client = HttpClient::connect(server.addr()).expect("connects");
    let response = client
        .request("POST", "/v1/propagate", Some(&json::to_string(&wire)))
        .expect("response arrives");
    assert_eq!(response.status, 408, "body: {}", response.body_text());

    // The cancel token turns the abandoned job into fast no-ops: the
    // same connection answers a cheap request promptly afterwards.
    let engines = client.get("/v1/engines").expect("keep-alive survives");
    assert_eq!(engines.status, 200);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let mut registry = ModelRegistry::new();
    registry
        .register(
            "gentle",
            Box::new(|x: &[f64]| {
                std::thread::sleep(Duration::from_millis(1));
                x.iter().sum::<f64>()
            }),
        )
        .expect("registers");
    let server = Server::start(ServerConfig::default(), registry).expect("server starts");
    let addr = server.addr();

    // ~300 ms of work, comfortably in flight when shutdown triggers.
    let mut wire = WireRequest::new("monte-carlo", "gentle", standard_inputs());
    wire.budget = 300;
    let worker = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connects");
        client.propagate(&wire)
    });
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    // Shutdown returned only after the acceptor, connections and pool
    // drained — so the in-flight request has a complete answer.
    let report = worker.join().expect("joins").expect("in-flight request completes");
    assert_eq!(report.evaluations, 300);

    // And the listener really is gone.
    assert!(
        HttpClient::connect(addr).is_err()
            || HttpClient::connect(addr)
                .and_then(|mut c| c.get("/v1/engines"))
                .is_err(),
        "server still serving after shutdown"
    );
}

#[test]
fn loadgen_summary_is_well_formed_bench_json() {
    let server = Server::start(
        ServerConfig::default(),
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let config = sysunc_bench::loadgen::LoadgenConfig {
        clients: 4,
        requests_per_client: 5,
        budget: 256,
        ..sysunc_bench::loadgen::LoadgenConfig::default()
    };
    let result = sysunc_bench::loadgen::run(server.addr(), &config).expect("load runs");
    server.shutdown();

    assert_eq!(result.ok, 20, "every request succeeds");
    assert_eq!(result.failed, 0);

    let summary = result.to_json(&config).expect("renders");
    let doc = json::parse(&summary).expect("summary is valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("sysunc-bench-serve/1"));
    assert_eq!(doc.get("requests").and_then(Json::as_u64), Some(20));
    let throughput = doc
        .get("throughput_rps")
        .and_then(Json::as_f64)
        .expect("throughput present");
    assert!(throughput > 0.0);
    let latency = doc.get("latency_micros").expect("latency block");
    for key in ["min", "p50", "p90", "p99", "max", "mean"] {
        let v = latency.get(key).and_then(Json::as_f64).expect("latency field");
        assert!(v >= 0.0, "{key} must be non-negative");
    }
    let p50 = latency.get("p50").and_then(Json::as_f64).expect("p50");
    let p99 = latency.get("p99").and_then(Json::as_f64).expect("p99");
    assert!(p50 <= p99, "percentiles must be ordered");
}

#[test]
fn discovery_and_metrics_routes_reflect_served_traffic() {
    let server = Server::start(
        ServerConfig::default(),
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let mut client = HttpClient::connect(server.addr()).expect("connects");

    let engines = client.get("/v1/engines").expect("engines route");
    assert_eq!(engines.status, 200);
    let doc = json::parse(&engines.body_text()).expect("engines JSON");
    let listed = doc.get("engines").and_then(Json::as_arr).expect("array");
    assert_eq!(listed.len(), ENGINE_NAMES.len());

    let models = client.get("/v1/models").expect("models route");
    let doc = json::parse(&models.body_text()).expect("models JSON");
    let listed = doc.get("models").and_then(Json::as_arr).expect("array");
    assert!(listed.iter().any(|m| m.as_str() == Some("linear-2x3y")));

    let wire = WireRequest::new("sobol-qmc", "sum", standard_inputs());
    client.propagate(&wire).expect("propagates");

    let text = client.scrape_metrics().expect("metrics scrape");
    assert!(text.contains("sysunc_http_requests_total{route=\"/v1/propagate\",status=\"200\"} 1"));
    assert!(text.contains("sysunc_engine_runs_total{engine=\"sobol-qmc\"} 1"));
    assert!(text.contains("sysunc_http_request_duration_micros_bucket"));

    // Bad requests get typed JSON errors, not connection drops.
    let bad = client
        .request("POST", "/v1/propagate", Some("{\"engine\":\"nope\"}"))
        .expect("response arrives");
    assert_eq!(bad.status, 400);
    let doc = json::parse(&bad.body_text()).expect("error JSON");
    assert_eq!(doc.get("status").and_then(Json::as_u64), Some(400));
    assert!(doc.get("error").and_then(Json::as_str).is_some());
    server.shutdown();
}

/// First value of a non-comment exposition line whose metric name
/// matches exactly.
fn metric_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(name)).then(|| parts.next())?
        })
        .and_then(|v| v.parse().ok())
}

/// Cache hits must be *byte*-identical to recomputation — eight
/// concurrent clients hammer one request and every response body is
/// compared against the same propagation run directly in-process.
#[test]
fn cache_hits_are_bit_identical_under_concurrency() {
    let server = Server::start(
        ServerConfig { workers: 4, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let addr = server.addr();

    let mut wire = WireRequest::new("monte-carlo", "sum", standard_inputs());
    wire.budget = 512;
    wire.seed = 777;
    let local = ModelRegistry::standard().expect("registry builds");
    let model = local.get("sum").expect("registered");
    let request = wire.to_request(model).expect("valid");
    let direct = wire.resolve_engine().expect("known").propagate(&request).expect("runs");
    let expected = json::to_string(&direct);
    let body = json::to_string(&wire);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connects");
                for _ in 0..4 {
                    let response = client
                        .request("POST", "/v1/propagate", Some(&body))
                        .expect("response arrives");
                    assert_eq!(response.status, 200, "body: {}", response.body_text());
                    let verdict = response.header("X-Sysunc-Cache").expect("cache header");
                    assert!(
                        verdict == "hit" || verdict == "miss",
                        "unexpected verdict '{verdict}'"
                    );
                    assert_eq!(
                        response.body_text(),
                        expected,
                        "cached response differs from in-process run ({verdict})"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread succeeds");
    }

    let mut client = HttpClient::connect(addr).expect("connects");
    let text = client.scrape_metrics().expect("metrics scrape");
    let hits = metric_value(&text, "sysunc_cache_hits_total").expect("hits gauge");
    let misses = metric_value(&text, "sysunc_cache_misses_total").expect("misses gauge");
    assert_eq!(hits + misses, 32, "every request was either a hit or a miss");
    // Concurrent first requests may race to a miss each, but every
    // client's later calls find the inserted entry.
    assert!(hits >= 8, "expected mostly hits, got {hits} hits / {misses} misses");
    server.shutdown();
}

/// With a two-entry single-shard cache, touching A keeps it resident
/// while C evicts the least-recently-used B.
#[test]
fn cache_evicts_least_recently_used_at_capacity() {
    let server = Server::start(
        ServerConfig { cache_capacity: 2, cache_shards: 1, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let mut client = HttpClient::connect(server.addr()).expect("connects");

    let request_with_seed = |seed: u64| {
        let mut wire = WireRequest::new("monte-carlo", "sum", standard_inputs());
        wire.budget = 128;
        wire.seed = seed;
        wire
    };
    let verdict = |client: &mut HttpClient, seed: u64| {
        let (_, verdict) = client
            .propagate_traced(&request_with_seed(seed))
            .expect("propagates");
        verdict.expect("cache header present")
    };

    assert_eq!(verdict(&mut client, 1), "miss", "A enters the cache");
    assert_eq!(verdict(&mut client, 2), "miss", "B enters the cache");
    assert_eq!(verdict(&mut client, 1), "hit", "A refreshed");
    assert_eq!(verdict(&mut client, 3), "miss", "C evicts the stale B");
    assert_eq!(verdict(&mut client, 2), "miss", "B was evicted");
    assert_eq!(verdict(&mut client, 3), "hit", "C survived B's reinsertion");

    let text = client.scrape_metrics().expect("metrics scrape");
    let evictions =
        metric_value(&text, "sysunc_cache_evictions_total").expect("evictions gauge");
    assert!(evictions >= 1, "eviction must be counted, got {evictions}");
    server.shutdown();
}

/// N identical jobs in one batch run the engine once and still yield N
/// identical reports — and the whole batch is served from cache on the
/// second round-trip.
#[test]
fn batch_requests_dedup_identical_jobs_and_reuse_the_cache() {
    let evals = Arc::new(AtomicUsize::new(0));
    let registry_with_counter = |evals: Arc<AtomicUsize>| {
        let mut registry = ModelRegistry::new();
        registry
            .register(
                "counted",
                Box::new(move |x: &[f64]| {
                    evals.fetch_add(1, Ordering::SeqCst);
                    x.iter().sum::<f64>()
                }),
            )
            .expect("registers");
        registry
    };
    let server = Server::start(
        ServerConfig::default(),
        registry_with_counter(Arc::clone(&evals)),
    )
    .expect("server starts");
    let mut client = HttpClient::connect(server.addr()).expect("connects");

    let mut wire = WireRequest::new("monte-carlo", "counted", standard_inputs());
    wire.budget = 64;
    wire.seed = 4242;

    // Reference: the model-evaluation cost and report of ONE run,
    // measured against a sibling registry sharing the same counter.
    let local = registry_with_counter(Arc::clone(&evals));
    let model = local.get("counted").expect("registered");
    let request = wire.to_request(model).expect("valid");
    let direct = wire.resolve_engine().expect("known").propagate(&request).expect("runs");
    let single_run_evals = evals.swap(0, Ordering::SeqCst);
    assert!(single_run_evals > 0, "the engine must evaluate the model");

    let jobs = vec![wire.clone(); 6];
    let outcome = client.propagate_batch(&jobs).expect("batch runs");
    assert_eq!(outcome.reports.len(), 6, "one report per submitted job");
    assert_eq!(outcome.cache_hits, 0);
    assert_eq!(outcome.cache_misses, 1, "six identical jobs are one unique job");
    assert_eq!(
        evals.load(Ordering::SeqCst),
        single_run_evals,
        "identical jobs must collapse to one engine run"
    );
    for report in &outcome.reports {
        assert_eq!(
            json::to_string(report),
            json::to_string(&direct),
            "batch report must be bit-identical to the in-process run"
        );
    }

    // The same batch again: answered wholly from the response cache.
    let again = client.propagate_batch(&jobs).expect("batch runs");
    assert_eq!(again.cache_hits, 1);
    assert_eq!(again.cache_misses, 0);
    assert_eq!(again.reports, outcome.reports);
    assert_eq!(
        evals.load(Ordering::SeqCst),
        single_run_evals,
        "a fully cached batch runs no engine at all"
    );

    let text = client.scrape_metrics().expect("metrics scrape");
    assert_eq!(metric_value(&text, "sysunc_batch_jobs_total"), Some(12));
    server.shutdown();
}

/// Beyond `max_connections` concurrent connections the acceptor
/// answers `503 + Retry-After` before reading a request; closing a
/// connection frees the slot.
#[test]
fn connection_cap_rejects_excess_connections_with_503() {
    let server = Server::start(
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let addr = server.addr();

    // Hold both slots with live keep-alive connections — a completed
    // request on each proves the server really accepted them.
    let mut first = HttpClient::connect(addr).expect("connects");
    let mut second = HttpClient::connect(addr).expect("connects");
    assert_eq!(first.get("/v1/engines").expect("served").status, 200);
    assert_eq!(second.get("/v1/engines").expect("served").status, 200);

    // The third connection is refused before its request is read.
    let mut third = HttpClient::connect(addr).expect("TCP connects");
    let refused = third.get("/v1/engines").expect("rejection arrives");
    assert_eq!(refused.status, 503, "body: {}", refused.body_text());
    assert_eq!(refused.header("Retry-After"), Some("1"));

    // Freeing a slot readmits new connections (the acceptor notices
    // the close asynchronously, so poll briefly).
    drop(first);
    drop(third);
    let mut readmitted = None;
    for _ in 0..100 {
        if let Ok(mut client) = HttpClient::connect(addr) {
            if let Ok(response) = client.get("/v1/engines") {
                if response.status == 200 {
                    readmitted = Some(client);
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut client = readmitted.expect("slot reusable after close");
    let text = client.scrape_metrics().expect("metrics scrape");
    let rejected =
        metric_value(&text, "sysunc_connections_rejected_total").expect("gauge");
    assert!(rejected >= 1, "rejection must be counted, got {rejected}");
    server.shutdown();
}

/// The three loadgen modes all complete against one server, and the
/// suite document nests one well-formed summary per mode.
#[test]
fn loadgen_modes_drive_cache_and_batch_paths() {
    use sysunc_bench::loadgen::{suite_to_json, LoadMode, LoadgenConfig};

    let server = Server::start(
        ServerConfig::default(),
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let base = LoadgenConfig {
        clients: 2,
        requests_per_client: 4,
        budget: 128,
        batch_size: 3,
        ..LoadgenConfig::default()
    };
    let mut entries = Vec::new();
    for mode in LoadMode::ALL {
        let config = base.with_mode(mode);
        let result =
            sysunc_bench::loadgen::run(server.addr(), &config).expect("mode runs");
        assert_eq!(result.failed, 0, "mode {} had failures", mode.name());
        assert_eq!(result.ok, (8 * config.jobs_per_call()) as u64);
        entries.push((config, result));
    }

    let mut client = HttpClient::connect(server.addr()).expect("connects");
    let text = client.scrape_metrics().expect("metrics scrape");
    let hits = metric_value(&text, "sysunc_cache_hits_total").expect("hits gauge");
    assert!(hits >= 1, "cache-hot traffic must produce hits");
    assert_eq!(metric_value(&text, "sysunc_batch_jobs_total"), Some(24));
    server.shutdown();

    let doc = json::parse(&suite_to_json(&entries).expect("renders")).expect("parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("sysunc-bench-serve/2"));
    for mode in LoadMode::ALL {
        let nested = doc.get("modes").and_then(|m| m.get(mode.name())).expect("mode doc");
        assert!(nested.get("throughput_rps").and_then(Json::as_f64).is_some());
    }
}

/// The in-process propagation the wire path is compared against also
/// matches `engine_by_name` resolution — guarding against the catalog
/// and the registry drifting apart.
#[test]
fn engine_catalog_and_wire_resolution_agree() {
    for name in ENGINE_NAMES {
        let by_name = engine_by_name(name);
        assert!(by_name.is_some(), "`{name}` missing from engine_by_name");
        let wire = WireRequest::new(*name, "sum", standard_inputs());
        assert!(wire.resolve_engine().is_ok(), "`{name}` not resolvable from wire");
    }
    assert!(engine_by_name("no-such-engine").is_none());
}

/// Propcheck-driven cache bit-identity: for arbitrary engine / model /
/// budget / seed combinations, the first response and an immediate
/// repeat (a cache hit) are both byte-identical to the same propagation
/// run in-process. One server is reused across all generated cases; a
/// divergence shrinks toward the smallest budget and seed showing it.
#[test]
fn cache_responses_bit_identical_for_arbitrary_requests() {
    use std::cell::RefCell;
    use sysunc::prob::propcheck::{self, u64_range, usize_range};

    let server = Server::start(
        ServerConfig { workers: 2, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("server starts");
    let client = RefCell::new(HttpClient::connect(server.addr()).expect("connects"));
    let local = ModelRegistry::standard().expect("registry builds");
    const MODELS: &[&str] = &["sum", "linear-2x3y", "product"];

    propcheck::check(
        "cache_responses_bit_identical_for_arbitrary_requests",
        24,
        (
            usize_range(0..ENGINE_NAMES.len()),
            usize_range(0..MODELS.len()),
            usize_range(16..256),
            u64_range(0..1_000_000),
        ),
        |&(e, m, budget, seed)| {
            let mut wire = WireRequest::new(ENGINE_NAMES[e], MODELS[m], standard_inputs());
            wire.budget = budget;
            wire.seed = seed;
            let model = local.get(MODELS[m]).expect("registered");
            let request = wire.to_request(model).expect("valid");
            let direct =
                wire.resolve_engine().expect("known").propagate(&request).expect("runs");
            let expected = json::to_string(&direct);
            let body = json::to_string(&wire);
            let mut client = client.borrow_mut();
            for round in 0..2 {
                let response = client
                    .request("POST", "/v1/propagate", Some(&body))
                    .expect("response arrives");
                assert_eq!(response.status, 200, "body: {}", response.body_text());
                let verdict = response.header("X-Sysunc-Cache").expect("cache header");
                if round == 1 {
                    assert_eq!(verdict, "hit", "repeat of an identical request hits");
                }
                assert_eq!(
                    response.body_text(),
                    expected,
                    "served response differs from in-process run \
                     (engine {}, model {}, {verdict})",
                    ENGINE_NAMES[e],
                    MODELS[m]
                );
            }
        },
    );
    server.shutdown();
}
