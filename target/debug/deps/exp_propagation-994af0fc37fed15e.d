/root/repo/target/debug/deps/exp_propagation-994af0fc37fed15e.d: crates/bench/src/bin/exp_propagation.rs

/root/repo/target/debug/deps/exp_propagation-994af0fc37fed15e: crates/bench/src/bin/exp_propagation.rs

crates/bench/src/bin/exp_propagation.rs:
