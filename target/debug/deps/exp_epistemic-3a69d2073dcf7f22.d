/root/repo/target/debug/deps/exp_epistemic-3a69d2073dcf7f22.d: crates/bench/src/bin/exp_epistemic.rs

/root/repo/target/debug/deps/libexp_epistemic-3a69d2073dcf7f22.rmeta: crates/bench/src/bin/exp_epistemic.rs

crates/bench/src/bin/exp_epistemic.rs:
