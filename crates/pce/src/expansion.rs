//! Polynomial chaos expansions: construction (projection and regression)
//! and post-processing (moments, Sobol' sensitivity indices).

use crate::error::{PceError, Result};
use crate::input::PceInput;
use crate::multiindex::{total_degree_set, MultiIndex};
use crate::quadrature::{sparse_grid, tensor_grid};
use sysunc_prob::rng::RngCore;
use sysunc_algebra::{lstsq, Matrix, PolyFamily};
use sysunc_sampling::{Design, LatinHypercubeDesign};

/// A fitted polynomial chaos expansion
/// `Y ≈ Σ_α c_α Ψ_α(ξ)` over orthonormal multivariate polynomials of the
/// germ vector `ξ`.
///
/// Because the basis is orthonormal, the mean is `c_0`, the variance is
/// `Σ_{α≠0} c_α²`, and Sobol' sensitivity indices are partial sums of
/// squared coefficients — uncertainty *forecasting* for free once the
/// expansion is built.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosExpansion {
    inputs: Vec<PceInput>,
    indices: Vec<MultiIndex>,
    coefficients: Vec<f64>,
    /// Number of model evaluations spent building the expansion.
    evaluations: usize,
}

impl ChaosExpansion {
    /// Fits by spectral projection on a full tensor Gauss grid with
    /// `degree + 1` points per dimension (exact for polynomial models up to
    /// `degree`).
    ///
    /// The model is evaluated in *physical* space: the germ nodes are mapped
    /// through each input's transform before the call.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidSpec`] for empty inputs and propagates
    /// quadrature failures.
    pub fn fit_projection<F: FnMut(&[f64]) -> f64>(
        inputs: &[PceInput],
        degree: usize,
        mut model: F,
    ) -> Result<Self> {
        if inputs.is_empty() {
            return Err(PceError::InvalidSpec("at least one input required".into()));
        }
        let families: Vec<PolyFamily> = inputs.iter().map(|i| i.family()).collect();
        let grid = tensor_grid(&families, degree + 1)?;
        Self::project_on_grid(inputs, degree, &grid.nodes, &grid.weights, &mut model)
    }

    /// Fits by spectral projection on a Smolyak sparse grid of the given
    /// level — far fewer model evaluations in higher dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidSpec`] for empty inputs or zero level.
    pub fn fit_sparse_projection<F: FnMut(&[f64]) -> f64>(
        inputs: &[PceInput],
        degree: usize,
        level: usize,
        mut model: F,
    ) -> Result<Self> {
        if inputs.is_empty() {
            return Err(PceError::InvalidSpec("at least one input required".into()));
        }
        let families: Vec<PolyFamily> = inputs.iter().map(|i| i.family()).collect();
        let grid = sparse_grid(&families, level)?;
        Self::project_on_grid(inputs, degree, &grid.nodes, &grid.weights, &mut model)
    }

    fn project_on_grid<F: FnMut(&[f64]) -> f64>(
        inputs: &[PceInput],
        degree: usize,
        nodes: &[Vec<f64>],
        weights: &[f64],
        model: &mut F,
    ) -> Result<Self> {
        let dim = inputs.len();
        let indices = total_degree_set(dim, degree);
        let mut coefficients = vec![0.0; indices.len()];
        let families: Vec<PolyFamily> = inputs.iter().map(|i| i.family()).collect();
        for (node, &w) in nodes.iter().zip(weights) {
            let x: Vec<f64> =
                node.iter().zip(inputs).map(|(&xi, inp)| inp.to_physical(xi)).collect();
            let y = model(&x);
            // Evaluate all univariate polynomials once per node.
            let uni: Vec<Vec<f64>> = families
                .iter()
                .zip(node)
                .map(|(f, &xi)| f.eval_orthonormal(degree, xi))
                .collect();
            for (c, alpha) in coefficients.iter_mut().zip(&indices) {
                let psi: f64 = alpha.iter().enumerate().map(|(d, &a)| uni[d][a]).product();
                *c += w * y * psi;
            }
        }
        Ok(Self {
            inputs: inputs.to_vec(),
            indices,
            coefficients,
            evaluations: nodes.len(),
        })
    }

    /// Fits by ordinary least-squares regression on `n` Latin-hypercube
    /// germ samples (`n` should be 2–3× the basis size).
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidSpec`] when `n` is smaller than the basis
    /// size, and propagates design/linear-algebra failures.
    pub fn fit_regression<F: FnMut(&[f64]) -> f64>(
        inputs: &[PceInput],
        degree: usize,
        n: usize,
        rng: &mut dyn RngCore,
        mut model: F,
    ) -> Result<Self> {
        if inputs.is_empty() {
            return Err(PceError::InvalidSpec("at least one input required".into()));
        }
        let dim = inputs.len();
        let indices = total_degree_set(dim, degree);
        if n < indices.len() {
            return Err(PceError::InvalidSpec(format!(
                "regression needs n >= {} basis terms, got n = {n}",
                indices.len()
            )));
        }
        let families: Vec<PolyFamily> = inputs.iter().map(|i| i.family()).collect();
        let design = LatinHypercubeDesign;
        let points = design
            .generate(n, dim, rng)
            .map_err(|e| PceError::InvalidSpec(e.to_string()))?;
        let mut a = Matrix::zeros(n, indices.len());
        let mut b = vec![0.0; n];
        for (row, u) in points.iter().enumerate() {
            let germ: Vec<f64> = u
                .iter()
                .zip(inputs)
                .map(|(&ui, inp)| inp.germ_quantile(ui.clamp(1e-12, 1.0 - 1e-12)))
                .collect();
            let x: Vec<f64> =
                germ.iter().zip(inputs).map(|(&xi, inp)| inp.to_physical(xi)).collect();
            b[row] = model(&x);
            let uni: Vec<Vec<f64>> = families
                .iter()
                .zip(&germ)
                .map(|(f, &xi)| f.eval_orthonormal(degree, xi))
                .collect();
            for (col, alpha) in indices.iter().enumerate() {
                a[(row, col)] = alpha.iter().enumerate().map(|(d, &k)| uni[d][k]).product();
            }
        }
        let coefficients = lstsq(&a, &b)?;
        Ok(Self { inputs: inputs.to_vec(), indices, coefficients, evaluations: n })
    }

    /// The multi-index set of the basis.
    pub fn indices(&self) -> &[MultiIndex] {
        &self.indices
    }

    /// The fitted coefficients, aligned with [`ChaosExpansion::indices`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Number of model evaluations used for the fit.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Number of input dimensions.
    pub fn dim(&self) -> usize {
        self.inputs.len()
    }

    /// The input specifications the expansion was fitted over.
    pub fn inputs(&self) -> &[PceInput] {
        &self.inputs
    }

    /// Evaluates the surrogate at a unit-hypercube point: each coordinate
    /// `u_i ∈ (0, 1)` is mapped through the germ quantile of input `i`.
    /// This is the bridge that lets any design-of-experiment engine (LHS,
    /// Sobol', ...) sample the fitted surrogate.
    ///
    /// # Panics
    ///
    /// Panics if `u.len()` differs from the input dimension.
    pub fn eval_u(&self, u: &[f64]) -> f64 {
        assert_eq!(u.len(), self.inputs.len(), "eval_u: dimension mismatch");
        let germ: Vec<f64> = u
            .iter()
            .zip(&self.inputs)
            .map(|(&ui, inp)| inp.germ_quantile(ui.clamp(1e-12, 1.0 - 1e-12)))
            .collect();
        self.eval_germ(&germ)
    }

    /// Evaluates the surrogate at a germ point.
    ///
    /// # Panics
    ///
    /// Panics if `germ.len()` differs from the input dimension.
    pub fn eval_germ(&self, germ: &[f64]) -> f64 {
        assert_eq!(germ.len(), self.inputs.len(), "eval_germ: dimension mismatch");
        let degree = self.indices.iter().map(|a| a.iter().sum::<usize>()).max().unwrap_or(0);
        let uni: Vec<Vec<f64>> = self
            .inputs
            .iter()
            .zip(germ)
            .map(|(inp, &xi)| inp.family().eval_orthonormal(degree, xi))
            .collect();
        self.indices
            .iter()
            .zip(&self.coefficients)
            .map(|(alpha, &c)| {
                c * alpha.iter().enumerate().map(|(d, &k)| uni[d][k]).product::<f64>()
            })
            .sum()
    }

    /// Mean of the surrogate output (`c_0` by orthonormality).
    pub fn mean(&self) -> f64 {
        self.coefficients[0]
    }

    /// Variance of the surrogate output (`Σ_{α≠0} c_α²`).
    pub fn variance(&self) -> f64 {
        self.coefficients[1..].iter().map(|c| c * c).sum()
    }

    /// Standard deviation of the surrogate output.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// First-order Sobol' index of input `i`: the fraction of output
    /// variance explained by terms involving *only* `ξ_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sobol_first(&self, i: usize) -> f64 {
        assert!(i < self.inputs.len(), "sobol_first: input index out of range");
        let var = self.variance();
        if var == 0.0 { // tidy: allow(float-eq)
            return 0.0;
        }
        self.indices
            .iter()
            .zip(&self.coefficients)
            .filter(|(alpha, _)| {
                alpha[i] > 0 && alpha.iter().enumerate().all(|(d, &a)| d == i || a == 0)
            })
            .map(|(_, &c)| c * c)
            .sum::<f64>()
            / var
    }

    /// Total Sobol' index of input `i`: the fraction of output variance in
    /// terms involving `ξ_i` at all (including interactions).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sobol_total(&self, i: usize) -> f64 {
        assert!(i < self.inputs.len(), "sobol_total: input index out of range");
        let var = self.variance();
        if var == 0.0 { // tidy: allow(float-eq)
            return 0.0;
        }
        self.indices
            .iter()
            .zip(&self.coefficients)
            .filter(|(alpha, _)| alpha[i] > 0)
            .map(|(_, &c)| c * c)
            .sum::<f64>()
            / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn projection_exact_for_linear_model() {
        // Y = 3 + 2 X1 - X2, X1 ~ N(1, 0.5), X2 ~ U(0, 4).
        let inputs = [
            PceInput::Normal { mu: 1.0, sigma: 0.5 },
            PceInput::Uniform { a: 0.0, b: 4.0 },
        ];
        let pce =
            ChaosExpansion::fit_projection(&inputs, 1, |x| 3.0 + 2.0 * x[0] - x[1]).unwrap();
        // E[Y] = 3 + 2 - 2 = 3; Var[Y] = 4*0.25 + 16/12 = 1 + 4/3.
        assert!((pce.mean() - 3.0).abs() < 1e-10);
        assert!((pce.variance() - (1.0 + 4.0 / 3.0)).abs() < 1e-10);
    }

    #[test]
    fn projection_exact_for_quadratic_model() {
        // Y = X², X ~ N(0, 1): mean 1, variance 2.
        let inputs = [PceInput::Normal { mu: 0.0, sigma: 1.0 }];
        let pce = ChaosExpansion::fit_projection(&inputs, 2, |x| x[0] * x[0]).unwrap();
        assert!((pce.mean() - 1.0).abs() < 1e-10);
        assert!((pce.variance() - 2.0).abs() < 1e-9);
        // Surrogate reproduces the model pointwise.
        for &xi in &[-2.0, -0.5, 0.0, 1.0, 2.3] {
            assert!((pce.eval_germ(&[xi]) - xi * xi).abs() < 1e-9);
        }
    }

    #[test]
    fn exp_of_normal_converges_with_degree() {
        // Y = exp(X), X ~ N(0, 0.5²): E[Y] = exp(0.125).
        let inputs = [PceInput::Normal { mu: 0.0, sigma: 0.5 }];
        let truth = (0.125f64).exp();
        let mut prev = f64::INFINITY;
        for degree in [1usize, 3, 6] {
            let pce = ChaosExpansion::fit_projection(&inputs, degree, |x| x[0].exp()).unwrap();
            let err = (pce.mean() - truth).abs();
            assert!(err < prev, "degree {degree}: {err} !< {prev}");
            prev = err;
        }
        assert!(prev < 1e-8);
    }

    #[test]
    fn regression_matches_projection_on_polynomials() {
        let inputs = [
            PceInput::Uniform { a: -1.0, b: 1.0 },
            PceInput::Uniform { a: -1.0, b: 1.0 },
        ];
        let model = |x: &[f64]| 1.0 + x[0] + 0.5 * x[0] * x[1];
        let proj = ChaosExpansion::fit_projection(&inputs, 2, model).unwrap();
        let reg = ChaosExpansion::fit_regression(&inputs, 2, 60, &mut rng(), model).unwrap();
        for (a, b) in proj.coefficients().iter().zip(reg.coefficients()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert!(ChaosExpansion::fit_regression(&inputs, 2, 3, &mut rng(), model).is_err());
    }

    #[test]
    fn eval_u_matches_eval_germ_through_quantiles() {
        let inputs = [
            PceInput::Normal { mu: 1.0, sigma: 0.5 },
            PceInput::Uniform { a: 0.0, b: 4.0 },
        ];
        let pce =
            ChaosExpansion::fit_projection(&inputs, 2, |x| x[0] * x[1] + x[0]).unwrap();
        for &(u0, u1) in &[(0.1, 0.9), (0.5, 0.5), (0.73, 0.21)] {
            let germ = [inputs[0].germ_quantile(u0), inputs[1].germ_quantile(u1)];
            assert!((pce.eval_u(&[u0, u1]) - pce.eval_germ(&germ)).abs() < 1e-12);
        }
        assert_eq!(pce.inputs().len(), 2);
    }

    #[test]
    fn sobol_indices_additive_model() {
        // Y = X1 + 2 X2 with unit-variance inputs: S1 = 1/5, S2 = 4/5.
        let inputs = [
            PceInput::Normal { mu: 0.0, sigma: 1.0 },
            PceInput::Normal { mu: 0.0, sigma: 1.0 },
        ];
        let pce = ChaosExpansion::fit_projection(&inputs, 2, |x| x[0] + 2.0 * x[1]).unwrap();
        assert!((pce.sobol_first(0) - 0.2).abs() < 1e-9);
        assert!((pce.sobol_first(1) - 0.8).abs() < 1e-9);
        assert!((pce.sobol_total(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sobol_indices_interaction_model() {
        // Y = X1 * X2 (pure interaction): S1 = S2 = 0, totals = 1.
        let inputs = [
            PceInput::Uniform { a: -1.0, b: 1.0 },
            PceInput::Uniform { a: -1.0, b: 1.0 },
        ];
        let pce = ChaosExpansion::fit_projection(&inputs, 2, |x| x[0] * x[1]).unwrap();
        assert!(pce.sobol_first(0).abs() < 1e-9);
        assert!(pce.sobol_first(1).abs() < 1e-9);
        assert!((pce.sobol_total(0) - 1.0).abs() < 1e-9);
        assert!((pce.sobol_total(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ishigami_sobol_indices_match_analytic() {
        // Ishigami with a = 7, b = 0.1 over U(-π, π)³.
        let a = 7.0;
        let b = 0.1;
        let pi = std::f64::consts::PI;
        let inputs = [PceInput::Uniform { a: -pi, b: pi }; 3];
        let model = |x: &[f64]| x[0].sin() + a * x[1].sin().powi(2) + b * x[2].powi(4) * x[0].sin();
        let pce = ChaosExpansion::fit_projection(&inputs, 10, model).unwrap();
        // Analytic values.
        let v1 = 0.5 * (1.0 + b * pi.powi(4) / 5.0).powi(2);
        let v2 = a * a / 8.0;
        let v13 = b * b * pi.powi(8) * (1.0 / 18.0 - 1.0 / 50.0);
        let v = v1 + v2 + v13;
        assert!((pce.variance() - v).abs() / v < 0.02, "var {} vs {v}", pce.variance());
        assert!((pce.sobol_first(0) - v1 / v).abs() < 0.02);
        assert!((pce.sobol_first(1) - v2 / v).abs() < 0.02);
        assert!(pce.sobol_first(2).abs() < 0.02);
        assert!((pce.sobol_total(2) - v13 / v).abs() < 0.02);
    }

    #[test]
    fn sparse_projection_close_to_tensor_for_smooth_model() {
        let inputs = [PceInput::Uniform { a: -1.0, b: 1.0 }; 4];
        let model = |x: &[f64]| (x.iter().sum::<f64>() / 2.0).cos();
        let tensor = ChaosExpansion::fit_projection(&inputs, 3, model).unwrap();
        let sparse = ChaosExpansion::fit_sparse_projection(&inputs, 3, 4, model).unwrap();
        assert!(
            sparse.evaluations() < tensor.evaluations(),
            "sparse {} vs tensor {}",
            sparse.evaluations(),
            tensor.evaluations()
        );
        assert!((tensor.mean() - sparse.mean()).abs() < 1e-4);
        assert!((tensor.variance() - sparse.variance()).abs() < 1e-3);
    }
}
