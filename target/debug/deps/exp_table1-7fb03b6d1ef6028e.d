/root/repo/target/debug/deps/exp_table1-7fb03b6d1ef6028e.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/libexp_table1-7fb03b6d1ef6028e.rmeta: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
