/root/repo/target/debug/deps/exp_propagation-440b65145b9f71ba.d: crates/bench/src/bin/exp_propagation.rs

/root/repo/target/debug/deps/exp_propagation-440b65145b9f71ba: crates/bench/src/bin/exp_propagation.rs

crates/bench/src/bin/exp_propagation.rs:
