/root/repo/target/debug/deps/sysunc_evidence-c6707d7fcb593616.d: crates/evidence/src/lib.rs crates/evidence/src/combination.rs crates/evidence/src/error.rs crates/evidence/src/fuzzy.rs crates/evidence/src/interval.rs crates/evidence/src/mass.rs crates/evidence/src/pbox.rs

/root/repo/target/debug/deps/libsysunc_evidence-c6707d7fcb593616.rmeta: crates/evidence/src/lib.rs crates/evidence/src/combination.rs crates/evidence/src/error.rs crates/evidence/src/fuzzy.rs crates/evidence/src/interval.rs crates/evidence/src/mass.rs crates/evidence/src/pbox.rs

crates/evidence/src/lib.rs:
crates/evidence/src/combination.rs:
crates/evidence/src/error.rs:
crates/evidence/src/fuzzy.rs:
crates/evidence/src/interval.rs:
crates/evidence/src/mass.rs:
crates/evidence/src/pbox.rs:
