//! Probability boxes via Dempster–Shafer structures on the real line.
//!
//! A DS structure is a finite set of interval focal elements with masses; it
//! induces lower/upper CDF envelopes (a p-box). This is the standard way to
//! propagate *mixed* aleatory + epistemic uncertainty: the intervals carry
//! the epistemic part, the masses the aleatory part (Ferson-style
//! probability bounds analysis, as used by the paper's Sec. V uncertainty-
//! aware safety analysis).

use crate::error::{EvidenceError, Result};
use crate::interval::Interval;
use sysunc_prob::dist::Continuous;

/// A Dempster–Shafer structure on ℝ: interval focal elements with masses
/// summing to 1.
///
/// # Examples
///
/// ```
/// use sysunc_evidence::{DsStructure, Interval};
/// // "X is in [0, 1] with 50% chance, in [2, 3] with 50%"
/// let ds = DsStructure::new(vec![
///     (Interval::new(0.0, 1.0)?, 0.5),
///     (Interval::new(2.0, 3.0)?, 0.5),
/// ])?;
/// let mean = ds.mean_bounds();
/// assert_eq!(mean.lo(), 1.0);  // (0 + 2) / 2
/// assert_eq!(mean.hi(), 2.0);  // (1 + 3) / 2
/// # Ok::<(), sysunc_evidence::EvidenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DsStructure {
    focal: Vec<(Interval, f64)>,
}

impl DsStructure {
    /// Builds a DS structure from interval/mass pairs.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for empty input, negative
    /// masses, or totals away from 1 (renormalized exactly inside).
    pub fn new(focal: Vec<(Interval, f64)>) -> Result<Self> {
        if focal.is_empty() {
            return Err(EvidenceError::InvalidMass("empty DS structure".into()));
        }
        if focal.iter().any(|(_, m)| *m < 0.0 || !m.is_finite()) {
            return Err(EvidenceError::InvalidMass("negative focal mass".into()));
        }
        let total: f64 = focal.iter().map(|(_, m)| m).sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(EvidenceError::InvalidMass(format!(
                "focal masses sum to {total}, expected 1"
            )));
        }
        let focal = focal
            .into_iter()
            .filter(|(_, m)| *m > 0.0)
            .map(|(i, m)| (i, m / total))
            .collect();
        Ok(Self { focal })
    }

    /// A single interval with mass 1 — pure epistemic ignorance inside
    /// known bounds.
    pub fn from_interval(interval: Interval) -> Self {
        Self { focal: vec![(interval, 1.0)] }
    }

    /// Discretizes a precise distribution into `n` equal-mass interval
    /// focal elements `[q((i)/n), q((i+1)/n)]` (outer discretization).
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for `n == 0`.
    pub fn from_distribution(dist: &dyn Continuous, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(EvidenceError::InvalidMass("discretization needs n > 0".into()));
        }
        let mass = 1.0 / n as f64;
        let eps = 1e-9;
        let focal = (0..n)
            .map(|i| {
                let lo = dist.quantile(((i as f64) / n as f64).max(eps));
                let hi = dist.quantile((((i + 1) as f64) / n as f64).min(1.0 - eps));
                (Interval::new(lo, hi).expect("quantile is monotone"), mass) // tidy: allow(panic)
            })
            .collect();
        Ok(Self { focal })
    }

    /// Focal elements (interval, mass).
    pub fn focal_elements(&self) -> &[(Interval, f64)] {
        &self.focal
    }

    /// Number of focal elements.
    pub fn len(&self) -> usize {
        self.focal.len()
    }

    /// Whether the structure is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.focal.is_empty()
    }

    /// Lower CDF (belief of `(-inf, x]`): mass of intervals entirely ≤ x.
    /// Range: `[0, 1]`, monotone non-decreasing in `x`.
    pub fn cdf_lower(&self, x: f64) -> f64 {
        // `+ 0.0` normalizes the empty-sum negative zero.
        self.focal.iter().filter(|(i, _)| i.hi() <= x).map(|(_, m)| m).sum::<f64>() + 0.0
    }

    /// Upper CDF (plausibility of `(-inf, x]`): mass of intervals touching
    /// `(-inf, x]`.
    /// Range: `[0, 1]`, monotone non-decreasing in `x`.
    pub fn cdf_upper(&self, x: f64) -> f64 {
        self.focal.iter().filter(|(i, _)| i.lo() <= x).map(|(_, m)| m).sum::<f64>() + 0.0
    }

    /// The `[lower, upper]` CDF bounds at `x` — the p-box envelope.
    /// Range: both bounds lie in `[0, 1]` with lower <= upper.
    pub fn cdf_bounds(&self, x: f64) -> Interval {
        Interval::new(self.cdf_lower(x), self.cdf_upper(x))
            .expect("lower CDF <= upper CDF") // tidy: allow(panic)
    }

    /// Bounds on the mean.
    pub fn mean_bounds(&self) -> Interval {
        let lo: f64 = self.focal.iter().map(|(i, m)| i.lo() * m).sum();
        let hi: f64 = self.focal.iter().map(|(i, m)| i.hi() * m).sum();
        Interval::new(lo, hi).expect("lo <= hi by construction") // tidy: allow(panic)
    }

    /// Bounds on `P(X > threshold)` — the exceedance (failure) probability
    /// query under epistemic uncertainty.
    pub fn exceedance_bounds(&self, threshold: f64) -> Interval {
        // P(X > t) in [1 - upper_cdf(t), 1 - lower_cdf(t)].
        self.cdf_bounds(threshold).complement_probability().clamp_unit()
    }

    /// Bounds on the `p`-quantile: the generalized inverses of the upper
    /// CDF (lower bound) and the lower CDF (upper bound).
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for `p` outside `[0, 1]`.
    pub fn quantile_bounds(&self, p: f64) -> Result<Interval> {
        if !(0.0..=1.0).contains(&p) {
            return Err(EvidenceError::InvalidMass(format!(
                "quantile level must be in [0, 1], got {p}"
            )));
        }
        // cdf_upper steps up at lo endpoints, cdf_lower at hi endpoints;
        // the inverses are cumulative-mass scans over each sorted endpoint
        // list. cdf_upper >= cdf_lower pointwise, so its inverse is <=.
        let scan = |endpoints: &mut Vec<(f64, f64)>| -> f64 {
            endpoints.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut acc = 0.0;
            for &(x, m) in endpoints.iter() {
                acc += m;
                if acc >= p - 1e-12 {
                    return x;
                }
            }
            endpoints.last().map(|&(x, _)| x).unwrap_or(f64::NAN)
        };
        let mut los: Vec<(f64, f64)> = self.focal.iter().map(|(i, m)| (i.lo(), *m)).collect();
        let mut his: Vec<(f64, f64)> = self.focal.iter().map(|(i, m)| (i.hi(), *m)).collect();
        Interval::new(scan(&mut los), scan(&mut his))
    }

    /// Variance of the pignistic (midpoint) approximation — the point
    /// summary used when a downstream consumer needs a single number for
    /// the spread of a DS structure. The epistemic width lives in
    /// [`DsStructure::mean_bounds`], not here.
    pub fn variance_pignistic(&self) -> f64 {
        let mean: f64 = self.focal.iter().map(|(i, m)| i.midpoint() * m).sum();
        self.focal
            .iter()
            .map(|(i, m)| m * (i.midpoint() - mean) * (i.midpoint() - mean))
            .sum()
    }

    /// Binary operation under independence: the Cartesian product of focal
    /// elements with interval arithmetic on each pair.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] only on internal degeneracy
    /// (not expected for valid inputs).
    fn combine<F: Fn(Interval, Interval) -> Interval>(
        &self,
        other: &DsStructure,
        op: F,
    ) -> Result<DsStructure> {
        let mut focal = Vec::with_capacity(self.focal.len() * other.focal.len());
        for (ia, ma) in &self.focal {
            for (ib, mb) in &other.focal {
                focal.push((op(*ia, *ib), ma * mb));
            }
        }
        DsStructure::new(focal)
    }

    /// Sum of two independent uncertain quantities.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] on internal degeneracy (not
    /// expected for valid inputs).
    pub fn add(&self, other: &DsStructure) -> Result<DsStructure> {
        self.combine(other, |a, b| a + b)
    }

    /// Difference of two independent uncertain quantities.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] on internal degeneracy (not
    /// expected for valid inputs).
    pub fn sub(&self, other: &DsStructure) -> Result<DsStructure> {
        self.combine(other, |a, b| a - b)
    }

    /// Product of two independent uncertain quantities.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] on internal degeneracy (not
    /// expected for valid inputs).
    pub fn mul(&self, other: &DsStructure) -> Result<DsStructure> {
        self.combine(other, |a, b| a * b)
    }

    /// Condenses to at most `max_focal` elements by merging adjacent focal
    /// elements (sorted by midpoint), bounding the combinatorial growth of
    /// repeated arithmetic.
    pub fn condensed(&self, max_focal: usize) -> DsStructure {
        if self.focal.len() <= max_focal.max(1) {
            return self.clone();
        }
        let mut sorted = self.focal.clone();
        sorted.sort_by(|a, b| {
            a.0.midpoint().partial_cmp(&b.0.midpoint()).expect("finite midpoints") // tidy: allow(panic)
        });
        let per_group = sorted.len().div_ceil(max_focal.max(1));
        let mut focal = Vec::new();
        for chunk in sorted.chunks(per_group) {
            let mass: f64 = chunk.iter().map(|(_, m)| m).sum();
            let mut hull = chunk[0].0;
            for (i, _) in &chunk[1..] {
                hull = hull.hull(i);
            }
            focal.push((hull, mass));
        }
        DsStructure { focal }
    }
}

/// Propagates independent DS-structure inputs through a black-box scalar
/// model `y = f(x)`, returning the output structure and the number of
/// model evaluations spent.
///
/// For each combination of focal elements (one interval per input) the
/// output interval is estimated by evaluating the model at the `2^dim`
/// box corners plus the midpoint — exact for componentwise-monotone
/// models, a sampling approximation otherwise. Inputs are condensed first
/// so the focal product stays within `max_focal` combinations.
///
/// # Errors
///
/// Returns [`EvidenceError::InvalidMass`] for empty input or more than 12
/// dimensions (the corner count is exponential in the dimension).
pub fn propagate_model<F: Fn(&[f64]) -> f64>(
    inputs: &[DsStructure],
    model: F,
    max_focal: usize,
) -> Result<(DsStructure, usize)> {
    if inputs.is_empty() {
        return Err(EvidenceError::InvalidMass("no DS inputs to propagate".into()));
    }
    let dim = inputs.len();
    if dim > 12 {
        return Err(EvidenceError::InvalidMass(format!(
            "corner propagation supports at most 12 dimensions, got {dim}"
        )));
    }
    // Condense each input to the dim-th root of the budget so the
    // Cartesian product holds roughly max_focal combinations.
    let cap = max_focal.max(1) as f64;
    let per_input = cap.powf(1.0 / dim as f64).floor().max(2.0) as usize;
    let condensed: Vec<DsStructure> = inputs.iter().map(|d| d.condensed(per_input)).collect();
    let sizes: Vec<usize> = condensed.iter().map(DsStructure::len).collect();

    let mut evaluations = 0usize;
    let mut focal = Vec::new();
    let mut idx = vec![0usize; dim];
    loop {
        let mut mass = 1.0;
        let cells: Vec<Interval> = idx
            .iter()
            .zip(&condensed)
            .map(|(&i, d)| {
                let (iv, m) = d.focal_elements()[i];
                mass *= m;
                iv
            })
            .collect();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut x = vec![0.0; dim];
        for corner in 0..(1usize << dim) {
            for (d2, cell) in cells.iter().enumerate() {
                x[d2] = if (corner >> d2) & 1 == 1 { cell.hi() } else { cell.lo() };
            }
            let y = model(&x);
            evaluations += 1;
            lo = lo.min(y);
            hi = hi.max(y);
        }
        for (d2, cell) in cells.iter().enumerate() {
            x[d2] = cell.midpoint();
        }
        let y = model(&x);
        evaluations += 1;
        lo = lo.min(y);
        hi = hi.max(y);
        focal.push((Interval::new(lo, hi)?, mass));

        // Odometer increment over the focal product.
        let mut d2 = 0;
        loop {
            idx[d2] += 1;
            if idx[d2] < sizes[d2] {
                break;
            }
            idx[d2] = 0;
            d2 += 1;
            if d2 == dim {
                return Ok((DsStructure::new(focal)?, evaluations));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::dist::Normal;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn validation() {
        assert!(DsStructure::new(vec![]).is_err());
        assert!(DsStructure::new(vec![(iv(0.0, 1.0), 0.5)]).is_err());
        assert!(DsStructure::new(vec![(iv(0.0, 1.0), -1.0), (iv(0.0, 1.0), 2.0)]).is_err());
    }

    #[test]
    fn cdf_envelopes_bracket() {
        let ds = DsStructure::new(vec![(iv(0.0, 2.0), 0.5), (iv(1.0, 3.0), 0.5)]).unwrap();
        for x in [-1.0, 0.5, 1.5, 2.5, 4.0] {
            let b = ds.cdf_bounds(x);
            assert!(b.lo() <= b.hi());
            assert!((0.0..=1.0).contains(&b.lo()));
        }
        assert_eq!(ds.cdf_lower(2.0), 0.5);
        assert_eq!(ds.cdf_upper(0.0), 0.5);
        assert_eq!(ds.cdf_upper(1.0), 1.0);
    }

    #[test]
    fn degenerate_intervals_recover_precise_cdf() {
        // Point focal elements = an ordinary discrete distribution.
        let ds = DsStructure::new(vec![
            (Interval::degenerate(1.0), 0.3),
            (Interval::degenerate(2.0), 0.7),
        ])
        .unwrap();
        let b = ds.cdf_bounds(1.5);
        assert!((b.lo() - 0.3).abs() < 1e-12);
        assert!((b.hi() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn discretized_distribution_brackets_true_cdf() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let ds = DsStructure::from_distribution(&n, 100).unwrap();
        for x in [-2.0, -0.5, 0.0, 1.0, 2.0] {
            let b = ds.cdf_bounds(x);
            let truth = n.cdf(x);
            assert!(
                b.lo() <= truth + 1e-9 && truth <= b.hi() + 1e-9,
                "x={x}: [{}, {}] vs {truth}",
                b.lo(),
                b.hi()
            );
            // Discretization with 100 cells: envelope width <= 1/100 + eps.
            assert!(b.width() <= 0.011);
        }
    }

    #[test]
    fn mean_bounds_and_exceedance() {
        let ds = DsStructure::new(vec![(iv(0.0, 1.0), 0.5), (iv(2.0, 3.0), 0.5)]).unwrap();
        let m = ds.mean_bounds();
        assert_eq!((m.lo(), m.hi()), (1.0, 2.0));
        let e = ds.exceedance_bounds(1.5);
        // P(X > 1.5): the [2,3] interval surely exceeds; [0,1] surely not.
        assert!((e.lo() - 0.5).abs() < 1e-12);
        assert!((e.hi() - 0.5).abs() < 1e-12);
        let e2 = ds.exceedance_bounds(0.5);
        assert!((e2.lo() - 0.5).abs() < 1e-12);
        assert!((e2.hi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_containment() {
        // [0,1] + [1,2] ⊆ [1,3] with all mass.
        let a = DsStructure::from_interval(iv(0.0, 1.0));
        let b = DsStructure::from_interval(iv(1.0, 2.0));
        let s = a.add(&b).unwrap();
        let m = s.mean_bounds();
        assert_eq!((m.lo(), m.hi()), (1.0, 3.0));
        let p = a.mul(&b).unwrap();
        assert_eq!((p.mean_bounds().lo(), p.mean_bounds().hi()), (0.0, 2.0));
        let d = b.sub(&a).unwrap();
        assert_eq!((d.mean_bounds().lo(), d.mean_bounds().hi()), (0.0, 2.0));
    }

    #[test]
    fn sum_of_discretized_normals_brackets_convolution() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let a = DsStructure::from_distribution(&n, 40).unwrap();
        let s = a.add(&a).unwrap();
        // X + Y ~ N(0, 2) for independent standard normals.
        let conv = Normal::new(0.0, 2.0f64.sqrt()).unwrap();
        for x in [-2.0, 0.0, 1.5] {
            let b = s.cdf_bounds(x);
            let truth = sysunc_prob::dist::Continuous::cdf(&conv, x);
            assert!(
                b.lo() <= truth + 0.02 && truth <= b.hi() + 0.02,
                "x={x}: [{}, {}] vs {truth}",
                b.lo(),
                b.hi()
            );
        }
    }

    #[test]
    fn quantile_bounds_bracket_and_order() {
        let ds = DsStructure::new(vec![(iv(0.0, 1.0), 0.5), (iv(2.0, 3.0), 0.5)]).unwrap();
        let q = ds.quantile_bounds(0.5).unwrap();
        assert!((q.lo() - 0.0).abs() < 1e-12);
        assert!((q.hi() - 1.0).abs() < 1e-12);
        let q9 = ds.quantile_bounds(0.9).unwrap();
        assert!((q9.lo() - 2.0).abs() < 1e-12);
        assert!((q9.hi() - 3.0).abs() < 1e-12);
        assert!(ds.quantile_bounds(1.5).is_err());
        // Discretized normal: quantile bounds must bracket the true quantile.
        let n = Normal::new(0.0, 1.0).unwrap();
        let fine = DsStructure::from_distribution(&n, 200).unwrap();
        for p in [0.05, 0.5, 0.95] {
            let b = fine.quantile_bounds(p).unwrap();
            let truth = n.quantile(p);
            assert!(b.lo() <= truth + 1e-6 && truth <= b.hi() + 1e-6, "p={p}: {b:?} vs {truth}");
        }
    }

    #[test]
    fn variance_pignistic_matches_discrete_case() {
        // Point focal elements: pignistic variance = ordinary variance.
        let ds = DsStructure::new(vec![
            (Interval::degenerate(0.0), 0.5),
            (Interval::degenerate(2.0), 0.5),
        ])
        .unwrap();
        assert!((ds.variance_pignistic() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn propagate_model_encloses_monotone_truth() {
        // f(x, y) = x + 2y over known-interval inputs: exact enclosure.
        let a = DsStructure::from_interval(iv(0.0, 1.0));
        let b = DsStructure::new(vec![(iv(0.0, 1.0), 0.5), (iv(1.0, 2.0), 0.5)]).unwrap();
        let (out, evals) =
            propagate_model(&[a, b.clone()], |x| x[0] + 2.0 * x[1], 256).unwrap();
        let m = out.mean_bounds();
        // E bounds: x in [0,1]; 2y in [2*0.5*(0+1), 2*0.5*(1+2)] = [1, 3].
        assert!((m.lo() - 1.0).abs() < 1e-12, "{m:?}");
        assert!((m.hi() - 4.0).abs() < 1e-12, "{m:?}");
        assert!(evals > 0);
        // Agreement with the dedicated interval arithmetic path.
        let direct = DsStructure::from_interval(iv(0.0, 1.0))
            .add(&b.mul(&DsStructure::from_interval(iv(2.0, 2.0))).unwrap())
            .unwrap();
        assert!((direct.mean_bounds().lo() - m.lo()).abs() < 1e-12);
        assert!((direct.mean_bounds().hi() - m.hi()).abs() < 1e-12);
        assert!(propagate_model(&[], |_| 0.0, 16).is_err());
    }

    #[test]
    fn condensation_preserves_envelope_conservatively() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let a = DsStructure::from_distribution(&n, 50).unwrap();
        let s = a.add(&a).unwrap();
        assert_eq!(s.len(), 2500);
        let c = s.condensed(50);
        assert!(c.len() <= 50);
        // Condensed envelope must enclose the original envelope.
        for x in [-3.0, -1.0, 0.0, 2.0] {
            let orig = s.cdf_bounds(x);
            let cond = c.cdf_bounds(x);
            assert!(cond.lo() <= orig.lo() + 1e-12);
            assert!(cond.hi() >= orig.hi() - 1e-12);
        }
        // Mean bounds can only widen (hulls are conservative) and stay
        // close for adjacent merging.
        assert!(c.mean_bounds().lo() <= s.mean_bounds().lo() + 1e-12);
        assert!(c.mean_bounds().hi() >= s.mean_bounds().hi() - 1e-12);
    }
}
