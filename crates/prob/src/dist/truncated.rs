//! Truncated normal distribution.

use super::{Continuous, Normal, Support};
use crate::error::{ProbError, Result};
use crate::rng::RngCore;

/// A normal distribution truncated to `[a, b]`.
///
/// The standard representation of a physical quantity with known hard
/// limits but Gaussian belief inside them (e.g. a sensor reading clipped
/// to its range) — restricting the support is the distributional analogue
/// of the paper's *operational design domain restriction* (uncertainty
/// prevention).
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, TruncatedNormal};
/// let t = TruncatedNormal::new(0.0, 1.0, -1.0, 1.0)?;
/// assert_eq!(t.cdf(-1.0), 0.0);
/// assert_eq!(t.cdf(1.0), 1.0);
/// assert!(t.variance() < 1.0); // truncation removes spread
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    base: Normal,
    a: f64,
    b: f64,
    /// CDF of the base at `a` and `b` (cached).
    cdf_a: f64,
    cdf_b: f64,
}

impl TruncatedNormal {
    /// Creates a normal `N(mu, sigma²)` truncated to `[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if the base parameters are
    /// invalid, `a >= b`, or the truncation interval carries negligible
    /// probability mass (< 1e-12).
    pub fn new(mu: f64, sigma: f64, a: f64, b: f64) -> Result<Self> {
        let base = Normal::new(mu, sigma)?;
        if !(a < b) || !a.is_finite() || !b.is_finite() {
            return Err(ProbError::InvalidParameter(format!(
                "TruncatedNormal requires finite a < b, got ({a}, {b})"
            )));
        }
        let cdf_a = base.cdf(a);
        let cdf_b = base.cdf(b);
        if cdf_b - cdf_a < 1e-12 {
            return Err(ProbError::InvalidParameter(
                "truncation interval carries negligible probability".into(),
            ));
        }
        Ok(Self { base, a, b, cdf_a, cdf_b })
    }

    /// Lower truncation bound.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Upper truncation bound.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The untruncated base distribution.
    pub fn base(&self) -> &Normal {
        &self.base
    }

    fn mass(&self) -> f64 {
        self.cdf_b - self.cdf_a
    }
}

impl Continuous for TruncatedNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            self.base.pdf(x) / self.mass()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.a {
            0.0
        } else if x >= self.b {
            1.0
        } else {
            (self.base.cdf(x) - self.cdf_a) / self.mass()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "TruncatedNormal::quantile: p in [0,1], got {p}");
        if p == 0.0 { // tidy: allow(float-eq)
            return self.a;
        }
        if p == 1.0 { // tidy: allow(float-eq)
            return self.b;
        }
        self.base
            .quantile(self.cdf_a + p * self.mass())
            .clamp(self.a, self.b)
    }

    fn mean(&self) -> f64 {
        // mu + sigma (phi(alpha) - phi(beta)) / Z.
        let alpha = (self.a - self.base.mu()) / self.base.sigma();
        let beta = (self.b - self.base.mu()) / self.base.sigma();
        let phi = crate::special::standard_normal_pdf;
        self.base.mu() + self.base.sigma() * (phi(alpha) - phi(beta)) / self.mass()
    }

    fn variance(&self) -> f64 {
        let alpha = (self.a - self.base.mu()) / self.base.sigma();
        let beta = (self.b - self.base.mu()) / self.base.sigma();
        let phi = crate::special::standard_normal_pdf;
        let z = self.mass();
        let term1 = (alpha * phi(alpha) - beta * phi(beta)) / z;
        let term2 = (phi(alpha) - phi(beta)) / z;
        self.base.sigma().powi(2) * (1.0 + term1 - term2 * term2)
    }

    fn support(&self) -> Support {
        Support::new(self.a, self.b)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Rejection from the base is efficient when the interval holds
        // non-trivial mass; otherwise inverse transform.
        if self.mass() > 0.25 {
            loop {
                let x = self.base.sample(rng);
                if x >= self.a && x <= self.b {
                    return x;
                }
            }
        } else {
            self.quantile(super::uniform_open01(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(TruncatedNormal::new(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 50.0, 51.0).is_err()); // negligible mass
    }

    #[test]
    fn symmetric_truncation_preserves_mean() {
        let t = TruncatedNormal::new(5.0, 2.0, 3.0, 7.0).unwrap();
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!(t.variance() < 4.0);
    }

    #[test]
    fn one_sided_truncation_shifts_mean() {
        let t = TruncatedNormal::new(0.0, 1.0, 0.0, 8.0).unwrap();
        // Half-normal mean = sqrt(2/pi).
        assert!((t.mean() - (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn quantile_cdf_round_trip() {
        let t = TruncatedNormal::new(1.0, 2.0, -1.0, 2.5).unwrap();
        testutil::check_quantile_cdf_round_trip(&t, &[-0.5, 0.0, 1.0, 2.0], 1e-9);
        assert_eq!(t.quantile(0.0), -1.0);
        assert_eq!(t.quantile(1.0), 2.5);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let t = TruncatedNormal::new(0.0, 1.0, -1.5, 0.5).unwrap();
        testutil::check_pdf_integrates_to_cdf(&t, -1.5, 0.5, 1e-9);
    }

    #[test]
    fn sampling_stays_inside_and_matches_moments() {
        let t = TruncatedNormal::new(0.0, 1.0, -1.0, 2.0).unwrap();
        let mut rng = testutil::rng(2024);
        for x in t.sample_n(&mut rng, 5_000) {
            assert!((-1.0..=2.0).contains(&x));
        }
        testutil::check_sample_moments(&t, 81, 300_000, 5.0);
    }

    #[test]
    fn narrow_tail_truncation_uses_inverse_transform() {
        // Mass in [3, 4] is ~1.3e-3 < 0.25, exercising the quantile path.
        let t = TruncatedNormal::new(0.0, 1.0, 3.0, 4.0).unwrap();
        let mut rng = testutil::rng(7);
        for x in t.sample_n(&mut rng, 2_000) {
            assert!((3.0..=4.0).contains(&x));
        }
    }
}
