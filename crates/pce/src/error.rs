//! Error types for polynomial chaos construction.

use std::fmt;
use sysunc_algebra::AlgebraError;

/// Errors from PCE specification, quadrature and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum PceError {
    /// The expansion specification was invalid; the payload explains why.
    InvalidSpec(String),
    /// A linear-algebra step (quadrature eigen-solve or regression solve)
    /// failed.
    Algebra(AlgebraError),
}

impl fmt::Display for PceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PceError::InvalidSpec(msg) => write!(f, "invalid PCE specification: {msg}"),
            PceError::Algebra(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for PceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PceError::Algebra(e) => Some(e),
            PceError::InvalidSpec(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<AlgebraError> for PceError {
    fn from(e: AlgebraError) -> Self {
        PceError::Algebra(e)
    }
}

/// Convenience result alias for the PCE crate.
pub type Result<T> = std::result::Result<T, PceError>;
