/root/repo/target/debug/deps/sysunc_pce-3079bbb11a80b6c1.d: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/debug/deps/libsysunc_pce-3079bbb11a80b6c1.rlib: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/debug/deps/libsysunc_pce-3079bbb11a80b6c1.rmeta: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

crates/pce/src/lib.rs:
crates/pce/src/error.rs:
crates/pce/src/expansion.rs:
crates/pce/src/input.rs:
crates/pce/src/multiindex.rs:
crates/pce/src/quadrature.rs:
