//! The unified propagation engine layer.
//!
//! The paper's central claim is that aleatory, epistemic and ontological
//! uncertainty are facets of *one* modeling relation — yet a toolkit
//! reproducing it naturally grows one propagation code path per
//! mathematical machinery: Monte Carlo in `sampling`, spectral expansion
//! in `pce`, belief/plausibility envelopes in `evidence`. This module
//! puts the single abstraction back: every engine is a [`Propagator`]
//! that consumes the same [`PropagationRequest`] (shared
//! [`UncertainInput`] declarations plus a deterministic [`Model`]) and
//! produces the same [`PropagationReport`] (mean/variance/quantile
//! *intervals*, tagged with the taxonomy kind it propagated and the
//! coping [`Means`] the engine realizes).
//!
//! Precise engines return degenerate intervals; the evidential engine
//! returns genuinely wide ones — the report type makes the epistemic
//! width a first-class output instead of an incompatible type.
//!
//! The hot path of the sampling engines is [`propagate_chunked`]: design
//! generation, inverse-CDF transform and model evaluation all run over
//! cache-aligned struct-of-arrays chunks ([`sysunc_sampling::SoaMatrix`])
//! with one virtual dispatch per chunk instead of per sample, tiled
//! across scoped OS threads. Outputs are bit-identical to the scalar
//! reference path (`sysunc_sampling::propagate`) for any chunk width and
//! thread count; only the fused mean/variance reduction is
//! chunk-width-sensitive at the ulp level (see DESIGN.md).
//!
//! [`run_batch`] fans a batch of (engine, request) jobs across OS threads
//! with `std::thread::scope`; because every engine derives all randomness
//! from the request seed, the parallel driver is bit-identical to
//! [`run_batch_serial`].

use crate::error::{Error, Result};
use crate::taxonomy::{Means, UncertaintyKind};
use std::fmt;
use sysunc_evidence::{DsStructure, Interval};
use sysunc_pce::{ChaosExpansion, PceInput};
use sysunc_prob::dist::{Beta, Continuous, Exponential, Normal, Uniform};
use sysunc_prob::rng::{RngCore, SeedableRng, StdRng};
use sysunc_prob::stats::{RunningStats, SortedSample};
use sysunc_sampling::{
    AlignedBuf, Design, LatinHypercubeDesign, RandomDesign, SoaMatrix, SobolDesign,
};

pub use sysunc_sampling::Model;

/// One uncertain input of a propagation problem, in engine-neutral form.
///
/// Every engine translates the declaration into its native
/// representation: a [`Continuous`] distribution for sampling engines, a
/// Wiener–Askey germ for the spectral engine, a Dempster–Shafer structure
/// for the evidential engine. The [`UncertainInput::Interval`] variant is
/// *purely epistemic* (known bounds, no distribution) and is only
/// representable by the evidential engine; sampling and spectral engines
/// reject it with [`Error::Unsupported`] rather than silently assuming a
/// uniform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UncertainInput {
    /// `X ~ N(mu, sigma²)` — aleatory.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// `X ~ U(a, b)` — aleatory.
    Uniform {
        /// Lower bound.
        a: f64,
        /// Upper bound.
        b: f64,
    },
    /// `X ~ Exp(rate)` — aleatory.
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// `X ~ Beta(alpha, beta)` on `[0, 1]` — aleatory.
    Beta {
        /// First shape parameter.
        alpha: f64,
        /// Second shape parameter.
        beta: f64,
    },
    /// `X ∈ [lo, hi]` with no distributional claim — epistemic.
    Interval {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl UncertainInput {
    /// The taxonomy kind this input declares.
    pub fn kind(&self) -> UncertaintyKind {
        match self {
            UncertainInput::Interval { .. } => UncertaintyKind::Epistemic,
            _ => UncertaintyKind::Aleatory,
        }
    }

    /// Native form for sampling engines.
    fn to_continuous(self) -> Result<Box<dyn Continuous>> {
        match self {
            UncertainInput::Normal { mu, sigma } => Ok(Box::new(Normal::new(mu, sigma)?)),
            UncertainInput::Uniform { a, b } => Ok(Box::new(Uniform::new(a, b)?)),
            UncertainInput::Exponential { rate } => Ok(Box::new(Exponential::new(rate)?)),
            UncertainInput::Beta { alpha, beta } => Ok(Box::new(Beta::new(alpha, beta)?)),
            UncertainInput::Interval { lo, hi } => Err(Error::Unsupported(format!(
                "interval input [{lo}, {hi}] has no sampling distribution; \
                 use the evidential engine"
            ))),
        }
    }

    /// Native form for the spectral (polynomial chaos) engine.
    fn to_pce(self) -> Result<PceInput> {
        match self {
            UncertainInput::Normal { mu, sigma } => Ok(PceInput::Normal { mu, sigma }),
            UncertainInput::Uniform { a, b } => Ok(PceInput::Uniform { a, b }),
            UncertainInput::Exponential { rate } => Ok(PceInput::Exponential { rate }),
            UncertainInput::Beta { alpha, beta } => Ok(PceInput::Beta { alpha, beta }),
            UncertainInput::Interval { lo, hi } => Err(Error::Unsupported(format!(
                "interval input [{lo}, {hi}] has no polynomial-chaos germ; \
                 use the evidential engine"
            ))),
        }
    }

    /// Native form for the evidential engine: distributions are outer-
    /// discretized into `cells` equal-mass focal intervals, intervals are
    /// taken as-is (a single focal element of mass 1).
    fn to_ds(self, cells: usize) -> Result<DsStructure> {
        match self {
            UncertainInput::Interval { lo, hi } => {
                Ok(DsStructure::from_interval(sysunc_evidence::Interval::new(lo, hi)?))
            }
            other => {
                let dist = other.to_continuous()?;
                Ok(DsStructure::from_distribution(dist.as_ref(), cells)?)
            }
        }
    }
}

/// A complete propagation problem: what to push through which model, at
/// what cost, reproducibly.
#[derive(Clone)]
pub struct PropagationRequest<'m> {
    /// Input declarations, one per model dimension.
    pub inputs: Vec<UncertainInput>,
    /// The deterministic model `y = f(x)` (paper Fig. 2, model A).
    pub model: &'m dyn Model,
    /// Evaluation budget for budget-driven engines (sample count for
    /// sampling engines, focal-product cap for the evidential engine).
    /// Grid-driven engines may spend less and report what they used.
    pub budget: usize,
    /// Seed from which every engine derives all of its randomness — the
    /// reproducibility contract that makes parallel batch execution
    /// bit-identical to serial.
    pub seed: u64,
    /// Quantile levels to report, each in `(0, 1)`.
    pub quantile_levels: Vec<f64>,
    /// Optional exceedance query: report bounds on `P(Y > threshold)`.
    pub threshold: Option<f64>,
}

impl<'m> PropagationRequest<'m> {
    /// Builds a request with defaults: budget 4096, seed 2020 (the
    /// paper's year), quantiles 5% / 50% / 95%, no threshold.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for empty inputs.
    pub fn new(inputs: Vec<UncertainInput>, model: &'m dyn Model) -> Result<Self> {
        if inputs.is_empty() {
            return Err(Error::InvalidInput("propagation needs at least one input".into()));
        }
        Ok(Self {
            inputs,
            model,
            budget: 4096,
            seed: 2020,
            quantile_levels: vec![0.05, 0.5, 0.95],
            threshold: None,
        })
    }

    /// Sets the evaluation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the reported quantile levels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for levels outside `(0, 1)`.
    pub fn with_quantile_levels(mut self, levels: Vec<f64>) -> Result<Self> {
        if levels.iter().any(|p| !(*p > 0.0 && *p < 1.0)) {
            return Err(Error::InvalidInput(format!(
                "quantile levels must lie in (0, 1), got {levels:?}"
            )));
        }
        self.quantile_levels = levels;
        Ok(self)
    }

    /// Adds an exceedance query `P(Y > threshold)`.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// The dominant taxonomy kind of the declared inputs: epistemic as
    /// soon as one input is a pure interval, aleatory otherwise.
    pub fn dominant_kind(&self) -> UncertaintyKind {
        if self.inputs.iter().any(|i| i.kind() == UncertaintyKind::Epistemic) {
            UncertaintyKind::Epistemic
        } else {
            UncertaintyKind::Aleatory
        }
    }
}

impl fmt::Debug for PropagationRequest<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropagationRequest")
            .field("inputs", &self.inputs)
            .field("budget", &self.budget)
            .field("seed", &self.seed)
            .field("quantile_levels", &self.quantile_levels)
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

/// The unified result of one engine run.
///
/// All statistics are [`Interval`]s: precise engines return degenerate
/// (zero-width) intervals, the evidential engine returns the true
/// belief/plausibility envelope. Downstream code that only wants a number
/// calls the `*_estimate` midpoint accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationReport {
    /// Name of the engine that produced the report.
    pub engine: &'static str,
    /// The coping means (paper Sec. IV) the engine realizes.
    pub means: Means,
    /// Dominant taxonomy kind of the propagated inputs.
    pub kind: UncertaintyKind,
    /// Bounds on the output mean.
    pub mean: Interval,
    /// Bounds on the output variance (pignistic point value for the
    /// evidential engine, see [`DsStructure::variance_pignistic`]).
    pub variance: Interval,
    /// `(level, bounds)` per requested quantile level.
    pub quantiles: Vec<(f64, Interval)>,
    /// Bounds on `P(Y > threshold)` when the request asked for it.
    /// Range: both endpoints in `[0, 1]`.
    pub exceedance: Option<Interval>,
    /// Model evaluations actually spent.
    pub evaluations: usize,
}

impl PropagationReport {
    /// Point estimate of the mean (interval midpoint).
    pub fn mean_estimate(&self) -> f64 {
        self.mean.midpoint()
    }

    /// Point estimate of the variance (interval midpoint).
    pub fn variance_estimate(&self) -> f64 {
        self.variance.midpoint()
    }

    /// Point estimate of the standard deviation.
    pub fn std_dev_estimate(&self) -> f64 {
        self.variance_estimate().max(0.0).sqrt()
    }

    /// Width of the epistemic envelope on the mean — zero for precise
    /// engines, positive for interval-valued ones.
    pub fn epistemic_width(&self) -> f64 {
        self.mean.width()
    }
}

impl fmt::Display for PropagationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let iv = |i: &Interval| {
            if i.width() < 1e-12 {
                format!("{:.5}", i.midpoint())
            } else {
                format!("[{:.5}, {:.5}]", i.lo(), i.hi())
            }
        };
        write!(
            f,
            "{:<16} kind={:<10} means={:<11} mean={} var={} evals={}",
            self.engine,
            self.kind.to_string(),
            self.means.to_string(),
            iv(&self.mean),
            iv(&self.variance),
            self.evaluations
        )?;
        if let Some(e) = &self.exceedance {
            write!(f, " p_exceed={}", iv(e))?;
        }
        Ok(())
    }
}

/// A propagation engine: one uniform interface over Monte Carlo, Latin
/// hypercube, quasi-Monte Carlo, spectral and evidential propagation.
///
/// Implementations must be deterministic given `request.seed` — that is
/// what makes [`run_batch`] bit-identical to [`run_batch_serial`].
pub trait Propagator: Sync {
    /// Stable engine identifier (used in reports and tables).
    fn name(&self) -> &'static str;

    /// The coping means (paper Sec. IV) this engine realizes.
    fn means(&self) -> Means;

    /// Runs the engine on one request.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when the engine cannot represent an
    /// input declaration, and propagates substrate failures.
    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport>;
}

/// Default number of samples per chunk of the chunked driver: large
/// enough to amortize the per-chunk virtual dispatch, small enough that a
/// chunk's working set (inputs + outputs) stays cache-resident.
pub const CHUNK_WIDTH: usize = 1024;

/// Tuning knobs of [`propagate_chunked`]. Neither knob affects the
/// outputs: chunk width and thread count only change *how* the same
/// sample values are computed and reduced (see DESIGN.md, "Chunked
/// struct-of-arrays kernels", for the exact determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkOptions {
    /// Samples per chunk (clamped to at least 1).
    pub width: usize,
    /// Worker threads tiling the chunks (clamped to at least 1).
    pub threads: usize,
}

impl Default for ChunkOptions {
    fn default() -> Self {
        Self { width: CHUNK_WIDTH, threads: 1 }
    }
}

impl ChunkOptions {
    /// Serial execution with the default chunk width.
    pub fn serial() -> Self {
        Self::default()
    }

    /// Sizes the thread pool for a budget: available parallelism (capped
    /// at 8) when the run spans at least four chunks, serial otherwise —
    /// tiny runs are dominated by thread startup.
    pub fn auto(budget: usize) -> Self {
        let threads = if budget >= 4 * CHUNK_WIDTH {
            std::thread::available_parallelism().map_or(1, |p| p.get().min(8))
        } else {
            1
        };
        Self { width: CHUNK_WIDTH, threads }
    }
}

/// Result of a chunked propagation run: the output sample in a
/// cache-aligned buffer plus the fused per-chunk moments.
#[derive(Debug)]
pub struct ChunkedRun {
    outputs: AlignedBuf,
    stats: RunningStats,
}

impl ChunkedRun {
    /// Model outputs, one per design point, in design order.
    pub fn outputs(&self) -> &[f64] {
        self.outputs.as_slice()
    }

    /// The fused output moments (per-chunk accumulators merged in chunk
    /// index order).
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Estimated mean of the model output.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Estimated variance of the model output.
    pub fn variance(&self) -> f64 {
        self.stats.variance()
    }

    /// Estimated `P(Y > threshold)` — an exact count, bit-identical to
    /// the scalar path. Range: `[0, 1]`.
    pub fn exceedance_probability(&self, threshold: f64) -> f64 {
        let outputs = self.outputs();
        outputs.iter().filter(|&&y| y > threshold).count() as f64
            / outputs.len().max(1) as f64
    }

    /// Sorts the outputs once for repeated quantile queries.
    ///
    /// # Errors
    ///
    /// Returns an error when the outputs contain NaN (e.g. a model
    /// sampled out of its domain).
    pub fn sorted(&self) -> Result<SortedSample> {
        Ok(SortedSample::from_slice(self.outputs())?)
    }
}

/// Evaluates rows `lo..lo + out.len()` of the input matrix into `out`,
/// accumulating the chunk's moments into `stats`.
fn run_chunk(
    x: &SoaMatrix,
    model: &dyn Model,
    lo: usize,
    out: &mut [f64],
    stats: &mut RunningStats,
) {
    let cols = x.chunk(lo, lo + out.len());
    model.eval_batch(&cols, out);
    for &y in out.iter() {
        stats.push(y);
    }
}

/// The unified chunked propagation driver: generates the design straight
/// into a struct-of-arrays matrix, applies the inverse-CDF transform one
/// *dimension* at a time ([`Continuous::quantile_fill`]), and evaluates
/// the model one *chunk* at a time ([`Model::eval_batch`]), tiling chunks
/// across scoped OS threads.
///
/// Every engine and the serving layer funnel through this function; the
/// scalar `sysunc_sampling::propagate` remains as the reference
/// implementation it is tested against.
///
/// Determinism: outputs, exceedance counts, min/max and sort-based
/// quantiles are **bit-identical** to the scalar path for any chunk
/// width and thread count (same design values, same RNG consumption
/// order, same elementwise transforms). The fused mean/variance merge
/// per-chunk accumulators in chunk index order, so they are independent
/// of the thread count but may differ from the sequential push by a few
/// ulps — the one documented tolerance-equivalence case.
///
/// # Errors
///
/// Propagates design-generation and dimension errors.
pub fn propagate_chunked(
    inputs: &[&dyn Continuous],
    design: &dyn Design,
    model: &dyn Model,
    n: usize,
    options: ChunkOptions,
    rng: &mut dyn RngCore,
) -> Result<ChunkedRun> {
    let dim = inputs.len();
    let mut u = SoaMatrix::zeroed(dim, n);
    design.generate_into(n, dim, rng, &mut u)?;
    // Inverse-CDF transform, one full column per input dimension: one
    // virtual call per (dimension, run) instead of per (dimension,
    // sample). The clamp matches `sysunc_sampling::to_input_space`.
    let mut x = SoaMatrix::zeroed(dim, n);
    for (j, d) in inputs.iter().enumerate() {
        let uc = u.col_mut(j);
        for v in uc.iter_mut() {
            *v = v.clamp(1e-15, 1.0 - 1e-15);
        }
        d.quantile_fill(uc, x.col_mut(j));
    }
    drop(u);

    let width = options.width.max(1);
    let threads = options.threads.max(1);
    let mut outputs = AlignedBuf::zeroed(n);
    let n_chunks = n.div_ceil(width);
    let mut chunk_stats: Vec<RunningStats> = (0..n_chunks).map(|_| RunningStats::new()).collect();
    // One job per chunk: disjoint output slice + dedicated stats slot,
    // so any tiling over threads reduces to the same merged result.
    let mut jobs: Vec<(usize, &mut [f64], &mut RunningStats)> = outputs
        .as_mut_slice()
        .chunks_mut(width)
        .zip(chunk_stats.iter_mut())
        .enumerate()
        .map(|(c, (out, stats))| (c * width, out, stats))
        .collect();
    let x_ref = &x;
    if threads <= 1 || jobs.len() <= 1 {
        for (lo, out, stats) in &mut jobs {
            run_chunk(x_ref, model, *lo, out, stats);
        }
    } else {
        let per = jobs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for group in jobs.chunks_mut(per) {
                scope.spawn(move || {
                    for (lo, out, stats) in group.iter_mut() {
                        run_chunk(x_ref, model, *lo, out, stats);
                    }
                });
            }
        });
    }
    drop(jobs);

    // Merge in chunk index order — independent of thread scheduling.
    let mut stats = RunningStats::new();
    for s in &chunk_stats {
        stats.merge(s);
    }
    Ok(ChunkedRun { outputs, stats })
}

/// Shared implementation for the three design-of-experiment engines, on
/// top of the chunked driver.
fn sampling_report(
    engine: &'static str,
    means: Means,
    design: &dyn Design,
    request: &PropagationRequest<'_>,
) -> Result<PropagationReport> {
    let dists: Vec<Box<dyn Continuous>> = request
        .inputs
        .iter()
        .map(|i| i.to_continuous())
        .collect::<Result<_>>()?;
    let refs: Vec<&dyn Continuous> = dists.iter().map(Box::as_ref).collect();
    let mut rng = StdRng::seed_from_u64(request.seed);
    let run = propagate_chunked(
        &refs,
        design,
        request.model,
        request.budget,
        ChunkOptions::auto(request.budget),
        &mut rng,
    )?;
    // Sort once, answer every level — but only when levels were asked
    // for, so NaN outputs still yield a (quantile-free) report.
    let quantiles = if request.quantile_levels.is_empty() {
        Vec::new()
    } else {
        let sorted = run.sorted()?;
        request
            .quantile_levels
            .iter()
            .map(|&p| (p, Interval::degenerate(sorted.interpolated(p))))
            .collect()
    };
    Ok(PropagationReport {
        engine,
        means,
        kind: request.dominant_kind(),
        mean: Interval::degenerate(run.mean()),
        variance: Interval::degenerate(run.variance()),
        quantiles,
        exceedance: request
            .threshold
            .map(|t| Interval::degenerate(run.exceedance_probability(t))),
        evaluations: run.outputs().len(),
    })
}

/// Crude Monte Carlo propagation (uncertainty removal by brute-force
/// design of experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloEngine;

impl Propagator for MonteCarloEngine {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn means(&self) -> Means {
        Means::Removal
    }

    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport> {
        sampling_report(self.name(), self.means(), &RandomDesign, request)
    }
}

/// Latin-hypercube propagation (stratified design of experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatinHypercubeEngine;

impl Propagator for LatinHypercubeEngine {
    fn name(&self) -> &'static str {
        "latin-hypercube"
    }

    fn means(&self) -> Means {
        Means::Removal
    }

    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport> {
        sampling_report(self.name(), self.means(), &LatinHypercubeDesign, request)
    }
}

/// Sobol' quasi-Monte Carlo propagation (low-discrepancy design).
#[derive(Debug, Clone, Copy, Default)]
pub struct SobolEngine;

impl Propagator for SobolEngine {
    fn name(&self) -> &'static str {
        "sobol-qmc"
    }

    fn means(&self) -> Means {
        Means::Removal
    }

    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport> {
        sampling_report(self.name(), self.means(), &SobolDesign::default(), request)
    }
}

/// Spectral propagation by polynomial chaos projection: fits a surrogate
/// on a tensor Gauss grid, reads mean and variance off the coefficients
/// (uncertainty *forecasting*), and samples the cheap surrogate for
/// quantiles and exceedance.
#[derive(Debug, Clone, Copy)]
pub struct SpectralEngine {
    /// Total polynomial degree of the expansion.
    pub degree: usize,
}

impl SpectralEngine {
    /// Engine with the given expansion degree (clamped to at least 1).
    pub fn new(degree: usize) -> Self {
        Self { degree: degree.max(1) }
    }
}

impl Default for SpectralEngine {
    fn default() -> Self {
        Self::new(5)
    }
}

impl Propagator for SpectralEngine {
    fn name(&self) -> &'static str {
        "pce-spectral"
    }

    fn means(&self) -> Means {
        Means::Forecasting
    }

    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport> {
        let inputs: Vec<PceInput> =
            request.inputs.iter().map(|i| i.to_pce()).collect::<Result<_>>()?;
        let model = request.model;
        let pce = ChaosExpansion::fit_projection(&inputs, self.degree, |x| model.eval(x))?;
        // Quantiles/exceedance via LHS samples of the surrogate — cheap
        // (no model calls) and deterministic under the request seed.
        let n = request.budget.max(1024);
        let mut rng = StdRng::seed_from_u64(request.seed);
        let points = LatinHypercubeDesign
            .generate(n, inputs.len(), &mut rng)
            .map_err(Error::Sampling)?;
        let outputs: Vec<f64> = points.iter().map(|u| pce.eval_u(u)).collect();
        let quantiles = if request.quantile_levels.is_empty() {
            Vec::new()
        } else {
            // One sort shared by every level (same routine as the
            // sampling engines).
            let sorted = SortedSample::from_slice(&outputs)?;
            request
                .quantile_levels
                .iter()
                .map(|&p| (p, Interval::degenerate(sorted.interpolated(p))))
                .collect()
        };
        let exceedance = request.threshold.map(|t| {
            let freq = outputs.iter().filter(|&&y| y > t).count() as f64
                / outputs.len().max(1) as f64;
            Interval::degenerate(freq)
        });
        Ok(PropagationReport {
            engine: self.name(),
            means: self.means(),
            kind: request.dominant_kind(),
            mean: Interval::degenerate(pce.mean()),
            variance: Interval::degenerate(pce.variance()),
            quantiles,
            exceedance,
            evaluations: pce.evaluations(),
        })
    }
}

/// Evidential propagation through Dempster–Shafer structures: every
/// statistic comes back as a guaranteed belief/plausibility envelope —
/// the engine that *tolerates* epistemic uncertainty instead of averaging
/// it away, and the only one accepting [`UncertainInput::Interval`].
#[derive(Debug, Clone, Copy)]
pub struct EvidentialEngine {
    /// Focal cells per discretized distribution input.
    pub cells: usize,
}

impl EvidentialEngine {
    /// Engine with the given discretization resolution (at least 2).
    pub fn new(cells: usize) -> Self {
        Self { cells: cells.max(2) }
    }
}

impl Default for EvidentialEngine {
    fn default() -> Self {
        Self::new(32)
    }
}

impl Propagator for EvidentialEngine {
    fn name(&self) -> &'static str {
        "evidential"
    }

    fn means(&self) -> Means {
        Means::Tolerance
    }

    fn propagate(&self, request: &PropagationRequest<'_>) -> Result<PropagationReport> {
        let ds: Vec<DsStructure> = request
            .inputs
            .iter()
            .map(|i| i.to_ds(self.cells))
            .collect::<Result<_>>()?;
        let model = request.model;
        let (out, evaluations) =
            sysunc_evidence::propagate_model(&ds, |x| model.eval(x), request.budget)?;
        let quantiles = request
            .quantile_levels
            .iter()
            .map(|&p| Ok((p, out.quantile_bounds(p)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(PropagationReport {
            engine: self.name(),
            means: self.means(),
            kind: request.dominant_kind(),
            mean: out.mean_bounds(),
            variance: Interval::degenerate(out.variance_pignistic()),
            quantiles,
            exceedance: request.threshold.map(|t| out.exceedance_bounds(t)),
            evaluations,
        })
    }
}

/// The four standard engines of the suite, boxed for batch driving: MC,
/// LHS, spectral PCE and evidential.
pub fn standard_engines() -> Vec<Box<dyn Propagator>> {
    vec![
        Box::new(MonteCarloEngine),
        Box::new(LatinHypercubeEngine),
        Box::new(SpectralEngine::default()),
        Box::new(EvidentialEngine::default()),
    ]
}

/// One unit of batch work: an engine paired with the request it runs.
pub type BatchJob<'a, 'm> = (&'a dyn Propagator, &'a PropagationRequest<'m>);

/// Runs a batch of jobs sequentially, preserving order.
pub fn run_batch_serial(jobs: &[BatchJob<'_, '_>]) -> Vec<Result<PropagationReport>> {
    jobs.iter().map(|(engine, request)| engine.propagate(request)).collect()
}

/// Runs a batch of jobs across `threads` scoped OS threads, preserving
/// order. Every engine derives its randomness from the request seed, so
/// the results are bit-identical to [`run_batch_serial`].
pub fn run_batch(jobs: &[BatchJob<'_, '_>], threads: usize) -> Vec<Result<PropagationReport>> {
    let threads = threads.max(1);
    let mut results: Vec<Option<Result<PropagationReport>>> =
        jobs.iter().map(|_| None).collect();
    let chunk = jobs.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (job_chunk, slot_chunk) in jobs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for ((engine, request), slot) in job_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(engine.propagate(request));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| match r {
            Some(res) => res,
            None => Err(Error::InvalidInput("batch worker dropped a job".into())),
        })
        .collect()
}

/// Collapses a batch onto its distinct jobs before dispatch.
///
/// Given one key per job (for the serving layer: the canonical request
/// bytes), returns `(uniques, assignment)` where `uniques` lists the
/// index of the first occurrence of each distinct key in encounter
/// order, and `assignment[i]` is the position in `uniques` whose result
/// job `i` shares. Running only `uniques` and fanning results back out
/// through `assignment` yields exactly the reports a full run would —
/// engines are deterministic by request seed, so equal keys mean equal
/// reports.
pub fn dedup_by_key<K: Eq + std::hash::Hash>(keys: &[K]) -> (Vec<usize>, Vec<usize>) {
    let mut first_seen: std::collections::HashMap<&K, usize> =
        std::collections::HashMap::with_capacity(keys.len());
    let mut uniques = Vec::new();
    let mut assignment = Vec::with_capacity(keys.len());
    for key in keys {
        let next = uniques.len();
        let slot = *first_seen.entry(key).or_insert(next);
        if slot == next {
            uniques.push(assignment.len());
        }
        assignment.push(slot);
    }
    (uniques, assignment)
}

/// Convenience: runs one request across every given engine in parallel.
pub fn run_all(
    engines: &[Box<dyn Propagator>],
    request: &PropagationRequest<'_>,
    threads: usize,
) -> Vec<Result<PropagationReport>> {
    let jobs: Vec<BatchJob<'_, '_>> =
        engines.iter().map(|e| (e.as_ref(), request)).collect();
    run_batch(&jobs, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_request(model: &dyn Model) -> PropagationRequest<'_> {
        PropagationRequest::new(
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 2.0 },
                UncertainInput::Uniform { a: 0.0, b: 1.0 },
            ],
            model,
        )
        .unwrap()
        .with_budget(20_000)
        .with_seed(7)
    }

    #[test]
    fn engines_agree_on_linear_model() {
        // Y = 2 X1 + 3 X2: E = 3.5, Var = 16.75.
        let model = |x: &[f64]| 2.0 * x[0] + 3.0 * x[1];
        let req = linear_request(&model);
        for engine in standard_engines() {
            let rep = engine.propagate(&req).unwrap();
            assert!(
                rep.mean.contains(3.5) || (rep.mean_estimate() - 3.5).abs() < 0.06,
                "{}: mean {:?}",
                rep.engine,
                rep.mean
            );
            if rep.engine == "evidential" {
                // Outer discretization is conservative: the pignistic
                // variance adds cell-width spread on top of the true
                // variance, so it bounds truth from above.
                assert!(
                    rep.variance_estimate() >= 16.75 && rep.variance_estimate() < 40.0,
                    "{}: var {}",
                    rep.engine,
                    rep.variance_estimate()
                );
            } else {
                assert!(
                    (rep.variance_estimate() - 16.75).abs() < 0.9,
                    "{}: var {}",
                    rep.engine,
                    rep.variance_estimate()
                );
            }
            assert_eq!(rep.kind, UncertaintyKind::Aleatory);
            assert!(rep.evaluations > 0);
        }
    }

    #[test]
    fn interval_inputs_are_evidential_only() {
        let model = |x: &[f64]| x[0];
        let req = PropagationRequest::new(
            vec![UncertainInput::Interval { lo: 1.0, hi: 3.0 }],
            &model,
        )
        .unwrap();
        assert!(matches!(
            MonteCarloEngine.propagate(&req),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            SpectralEngine::default().propagate(&req),
            Err(Error::Unsupported(_))
        ));
        let rep = EvidentialEngine::default().propagate(&req).unwrap();
        assert_eq!(rep.kind, UncertaintyKind::Epistemic);
        assert!((rep.mean.lo() - 1.0).abs() < 1e-9 && (rep.mean.hi() - 3.0).abs() < 1e-9);
        assert!(rep.epistemic_width() > 1.0);
    }

    #[test]
    fn evidential_envelope_encloses_sampling_estimates() {
        let model = |x: &[f64]| x[0] + x[1];
        let req = PropagationRequest::new(
            vec![
                UncertainInput::Uniform { a: 0.0, b: 1.0 },
                UncertainInput::Interval { lo: 0.0, hi: 0.5 },
            ],
            &model,
        )
        .unwrap();
        let rep = EvidentialEngine::default().propagate(&req).unwrap();
        // True mean range: 0.5 + [0, 0.5].
        assert!(rep.mean.lo() <= 0.51 && rep.mean.hi() >= 0.99, "{:?}", rep.mean);
    }

    #[test]
    fn exceedance_and_quantiles_are_reported() {
        let model = |x: &[f64]| x[0];
        let req = PropagationRequest::new(
            vec![UncertainInput::Normal { mu: 0.0, sigma: 1.0 }],
            &model,
        )
        .unwrap()
        .with_budget(50_000)
        .with_threshold(1.645);
        for engine in standard_engines() {
            let rep = engine.propagate(&req).unwrap();
            let e = rep.exceedance.expect("threshold was requested");
            assert!(
                e.lo() <= 0.08 && e.hi() >= 0.02,
                "{}: exceedance {e:?}",
                rep.engine
            );
            let median = rep.quantiles.iter().find(|(p, _)| (*p - 0.5).abs() < 1e-12);
            let (_, m) = median.expect("median requested by default");
            assert!(m.lo() <= 0.1 && m.hi() >= -0.1, "{}: median {m:?}", rep.engine);
        }
    }

    #[test]
    fn request_validation() {
        let model = |x: &[f64]| x[0];
        assert!(matches!(
            PropagationRequest::new(vec![], &model),
            Err(Error::InvalidInput(_))
        ));
        let req =
            PropagationRequest::new(vec![UncertainInput::Normal { mu: 0.0, sigma: 1.0 }], &model)
                .unwrap();
        assert!(req.with_quantile_levels(vec![0.0]).is_err());
    }

    #[test]
    fn parallel_batch_identical_to_serial() {
        let m1 = |x: &[f64]| x[0] * x[0];
        let m2 = |x: &[f64]| (0.5 * x[0]).exp() + x[1];
        let r1 = PropagationRequest::new(
            vec![UncertainInput::Normal { mu: 0.0, sigma: 1.0 }],
            &m1,
        )
        .unwrap()
        .with_seed(11);
        let r2 = PropagationRequest::new(
            vec![
                UncertainInput::Normal { mu: 0.0, sigma: 1.0 },
                UncertainInput::Uniform { a: -1.0, b: 1.0 },
            ],
            &m2,
        )
        .unwrap()
        .with_seed(13)
        .with_threshold(1.0);
        let engines = standard_engines();
        let mut jobs: Vec<BatchJob<'_, '_>> = Vec::new();
        for e in &engines {
            jobs.push((e.as_ref(), &r1));
            jobs.push((e.as_ref(), &r2));
        }
        let serial = run_batch_serial(&jobs);
        for threads in [1, 2, 4, 7] {
            let parallel = run_batch(&jobs, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_driver_outputs_bit_identical_to_scalar_path() {
        let x1 = Normal::new(1.0, 2.0).unwrap();
        let x2 = Uniform::new(0.0, 1.0).unwrap();
        let refs: Vec<&dyn Continuous> = vec![&x1, &x2];
        let model = |x: &[f64]| 2.0 * x[0] + 3.0 * x[1];
        let designs: Vec<Box<dyn Design>> = vec![
            Box::new(RandomDesign),
            Box::new(LatinHypercubeDesign),
            Box::new(SobolDesign::default()),
        ];
        for design in &designs {
            for n in [1, 100, 1024, 2500] {
                let mut rng = StdRng::seed_from_u64(5);
                let scalar =
                    sysunc_sampling::propagate(&refs, design.as_ref(), &model, n, &mut rng)
                        .unwrap();
                for (width, threads) in [(1, 1), (7, 1), (256, 3), (1024, 2), (4096, 4)] {
                    let mut rng = StdRng::seed_from_u64(5);
                    let run = propagate_chunked(
                        &refs,
                        design.as_ref(),
                        &model,
                        n,
                        ChunkOptions { width, threads },
                        &mut rng,
                    )
                    .unwrap();
                    assert_eq!(run.outputs().len(), n);
                    for (i, (a, b)) in
                        run.outputs().iter().zip(&scalar.outputs).enumerate()
                    {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{} n={n} width={width} threads={threads} sample {i}",
                            design.name()
                        );
                    }
                    // Fused moments: tolerance equivalence, not bit
                    // equality (documented in DESIGN.md).
                    assert!((run.mean() - scalar.mean()).abs() <= 1e-10);
                    assert!((run.variance() - scalar.variance()).abs() <= 1e-8);
                    // Counts and sorted quantiles: bit-identical.
                    assert_eq!(
                        run.exceedance_probability(3.5).to_bits(),
                        scalar.exceedance_probability(3.5).to_bits()
                    );
                    assert_eq!(
                        run.sorted().unwrap().interpolated(0.9).to_bits(),
                        scalar.quantile(0.9).unwrap().to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_driver_rejects_nan_quantiles_but_reports_moments() {
        let x1 = Uniform::new(0.0, 1.0).unwrap();
        let refs: Vec<&dyn Continuous> = vec![&x1];
        let nan_model = |_: &[f64]| f64::NAN;
        let mut rng = StdRng::seed_from_u64(3);
        let run = propagate_chunked(
            &refs,
            &RandomDesign,
            &nan_model,
            64,
            ChunkOptions::serial(),
            &mut rng,
        )
        .unwrap();
        assert!(run.mean().is_nan());
        assert!(run.sorted().is_err());
    }

    #[test]
    fn dedup_by_key_groups_equal_keys_in_encounter_order() {
        let keys = ["a", "b", "a", "c", "b", "a"];
        let (uniques, assignment) = dedup_by_key(&keys);
        assert_eq!(uniques, vec![0, 1, 3], "first occurrence of a, b, c");
        assert_eq!(assignment, vec![0, 1, 0, 2, 1, 0]);
        // Fanning the unique results back out reconstructs the batch.
        let reconstructed: Vec<&str> =
            assignment.iter().map(|&slot| keys[uniques[slot]]).collect();
        assert_eq!(reconstructed, keys);
    }

    #[test]
    fn dedup_by_key_handles_empty_and_all_distinct_batches() {
        let empty: [&str; 0] = [];
        assert_eq!(dedup_by_key(&empty), (vec![], vec![]));
        let distinct = [10u64, 20, 30];
        let (uniques, assignment) = dedup_by_key(&distinct);
        assert_eq!(uniques, vec![0, 1, 2]);
        assert_eq!(assignment, vec![0, 1, 2]);
        let identical = ["x"; 5];
        let (uniques, assignment) = dedup_by_key(&identical);
        assert_eq!(uniques, vec![0]);
        assert_eq!(assignment, vec![0; 5]);
    }
}
