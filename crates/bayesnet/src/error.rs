//! Error types for Bayesian-network construction and inference.

use std::fmt;

/// Errors from network construction, factor algebra and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum BnError {
    /// A node definition was malformed; the payload explains why.
    InvalidNode(String),
    /// A factor operation received inconsistent shapes.
    InvalidFactor(String),
    /// A node name or id was not found.
    UnknownNode(String),
    /// A state name was not found on its node.
    UnknownState(String),
    /// The evidence has probability zero under the model — in the paper's
    /// terms, an observation outside the model: an ontological event.
    InconsistentEvidence,
}

impl fmt::Display for BnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BnError::InvalidNode(msg) => write!(f, "invalid node: {msg}"),
            BnError::InvalidFactor(msg) => write!(f, "invalid factor: {msg}"),
            BnError::UnknownNode(name) => write!(f, "unknown node '{name}'"),
            BnError::UnknownState(name) => write!(f, "unknown state '{name}'"),
            BnError::InconsistentEvidence => {
                write!(f, "evidence has zero probability under the model")
            }
        }
    }
}

impl std::error::Error for BnError {}

/// Convenience result alias for the Bayesian-network crate.
pub type Result<T> = std::result::Result<T, BnError>;
