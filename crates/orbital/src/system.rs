//! N-body gravitational systems with heterogeneous (mascon) bodies.
//!
//! This is the paper's Fig. 2 physical system, built as an actual
//! simulator: "a reality where only two planets exist" whose behavior the
//! deterministic model A (Newton's laws, here integrated numerically) and
//! the probabilistic model B (frequentist occupancy, see
//! [`crate::observe`]) both describe. Heterogeneous mass distributions
//! (Sec. III-B) are modeled by *mascons* — sub-masses offset from the body
//! centre that rotate with the body — so a point-mass model of the same
//! body exhibits genuine, reducible model error.

use crate::error::{OrbitalError, Result};
use crate::vec2::Vec2;

/// A point sub-mass of a heterogeneous body, fixed in the body frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mascon {
    /// Offset from the body centre in the body frame.
    pub offset: Vec2,
    /// Fraction of the body's total mass carried by this mascon.
    pub mass_fraction: f64,
}

/// A celestial body: total mass, kinematic state, and an optional mascon
/// decomposition with spin.
#[derive(Debug, Clone, PartialEq)]
pub struct Body {
    /// Name for reports.
    pub name: String,
    /// Total mass.
    pub mass: f64,
    /// Centre-of-mass position.
    pub position: Vec2,
    /// Centre-of-mass velocity.
    pub velocity: Vec2,
    /// Mascon decomposition (empty = ideal point mass).
    pub mascons: Vec<Mascon>,
    /// Spin rate of the body frame (rad per time unit).
    pub spin: f64,
}

impl Body {
    /// Creates an ideal point-mass body.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] for non-positive mass.
    pub fn point_mass<S: Into<String>>( // tidy: allow(prob-contract)
        name: S,
        mass: f64,
        position: Vec2,
        velocity: Vec2,
    ) -> Result<Self> {
        if !(mass > 0.0) || !mass.is_finite() {
            return Err(OrbitalError::InvalidBody(format!("mass must be > 0, got {mass}")));
        }
        Ok(Self { name: name.into(), mass, position, velocity, mascons: Vec::new(), spin: 0.0 })
    }

    /// Gives the body a heterogeneous mass distribution: `k` mascons evenly
    /// spaced on a ring of the given radius, with `lumpiness ∈ [0, 1)`
    /// skewing mass toward the first mascon (0 = symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] for `k == 0`, negative radius
    /// or lumpiness outside `[0, 1)`.
    pub fn with_mascon_ring(
        mut self,
        k: usize,
        radius: f64,
        lumpiness: f64,
        spin: f64,
    ) -> Result<Self> {
        if k == 0 || radius < 0.0 || !(0.0..1.0).contains(&lumpiness) {
            return Err(OrbitalError::InvalidBody(format!(
                "mascon ring needs k > 0, radius >= 0, lumpiness in [0,1); got ({k}, {radius}, {lumpiness})"
            )));
        }
        let base = 1.0 / k as f64;
        let mut fractions: Vec<f64> = (0..k)
            .map(|i| if i == 0 { base * (1.0 + lumpiness * (k as f64 - 1.0)) } else { base * (1.0 - lumpiness) })
            .collect();
        let total: f64 = fractions.iter().sum();
        for f in &mut fractions {
            *f /= total;
        }
        // Place mascons so the centre of mass stays at the body centre:
        // offset the ring's centroid correction onto every mascon.
        let mut mascons: Vec<Mascon> = (0..k)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
                Mascon {
                    offset: Vec2::new(radius * angle.cos(), radius * angle.sin()),
                    mass_fraction: fractions[i],
                }
            })
            .collect();
        let centroid: Vec2 = mascons
            .iter()
            .fold(Vec2::zero(), |acc, m| acc + m.offset * m.mass_fraction);
        for m in &mut mascons {
            m.offset -= centroid;
        }
        self.mascons = mascons;
        self.spin = spin;
        Ok(self)
    }

    /// Whether the body is an ideal point mass.
    pub fn is_point_mass(&self) -> bool { // tidy: allow(prob-contract)
        self.mascons.is_empty()
    }
}

/// An N-body system under Newtonian gravity.
#[derive(Debug, Clone, PartialEq)]
pub struct NBodySystem {
    /// Bodies.
    pub bodies: Vec<Body>,
    /// Gravitational constant.
    pub g: f64,
    /// Elapsed simulation time (drives mascon spin phases).
    pub time: f64,
    /// Gravitational softening length (avoids singularities on close
    /// approaches; 0 = none).
    pub softening: f64,
}

impl NBodySystem {
    /// Creates a system.
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] for fewer than one body or
    /// non-positive `g`.
    pub fn new(bodies: Vec<Body>, g: f64) -> Result<Self> {
        if bodies.is_empty() {
            return Err(OrbitalError::InvalidBody("system needs at least one body".into()));
        }
        if !(g > 0.0) || !g.is_finite() {
            return Err(OrbitalError::InvalidBody(format!("G must be > 0, got {g}")));
        }
        Ok(Self { bodies, g, time: 0.0, softening: 0.0 })
    }

    /// The paper's two-planet universe: masses `m1`, `m2` separated by
    /// `d`, placed on a mutual circular orbit around their barycentre
    /// (G = 1).
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] for non-positive masses or
    /// separation.
    pub fn two_planets(m1: f64, m2: f64, d: f64) -> Result<Self> {
        if !(d > 0.0) {
            return Err(OrbitalError::InvalidBody(format!("separation must be > 0, got {d}")));
        }
        let total = m1 + m2;
        // Barycentric radii and circular orbital speed.
        let r1 = d * m2 / total;
        let r2 = d * m1 / total;
        let omega = (total / (d * d * d)).sqrt(); // G = 1
        let b1 = Body::point_mass(
            "planet-1",
            m1,
            Vec2::new(-r1, 0.0),
            Vec2::new(0.0, -r1 * omega),
        )?;
        let b2 =
            Body::point_mass("planet-2", m2, Vec2::new(r2, 0.0), Vec2::new(0.0, r2 * omega))?;
        Self::new(vec![b1, b2], 1.0)
    }

    /// Orbital period of the circular two-planet configuration (Kepler's
    /// third law, G = 1).
    pub fn circular_period(m1: f64, m2: f64, d: f64) -> f64 {
        2.0 * std::f64::consts::PI * (d * d * d / (m1 + m2)).sqrt()
    }

    /// World-frame positions and masses of all gravitating point sources
    /// of a body (the body itself for point masses, its spun mascons
    /// otherwise).
    fn sources(&self, body: &Body) -> Vec<(Vec2, f64)> {
        if body.is_point_mass() {
            vec![(body.position, body.mass)]
        } else {
            let angle = body.spin * self.time;
            body.mascons
                .iter()
                .map(|m| (body.position + m.offset.rotated(angle), body.mass * m.mass_fraction))
                .collect()
        }
    }

    /// Gravitational acceleration on body `i` from all other bodies.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn acceleration(&self, i: usize) -> Vec2 {
        assert!(i < self.bodies.len(), "acceleration: body index out of range");
        let target = &self.bodies[i];
        let eps2 = self.softening * self.softening;
        let mut acc = Vec2::zero();
        for (j, other) in self.bodies.iter().enumerate() {
            if j == i {
                continue;
            }
            for (pos, mass) in self.sources(other) {
                let r = pos - target.position;
                let d2 = r.norm_squared() + eps2;
                let d = d2.sqrt();
                acc += r * (self.g * mass / (d2 * d));
            }
        }
        acc
    }

    /// Accelerations of all bodies.
    pub fn accelerations(&self) -> Vec<Vec2> {
        (0..self.bodies.len()).map(|i| self.acceleration(i)).collect()
    }

    /// Total mechanical energy (kinetic + pairwise point-source
    /// potential).
    pub fn total_energy(&self) -> f64 {
        let kinetic: f64 = self
            .bodies
            .iter()
            .map(|b| 0.5 * b.mass * b.velocity.norm_squared())
            .sum();
        let mut potential = 0.0;
        for i in 0..self.bodies.len() {
            for j in i + 1..self.bodies.len() {
                for (pi, mi) in self.sources(&self.bodies[i]) {
                    for (pj, mj) in self.sources(&self.bodies[j]) {
                        potential -= self.g * mi * mj / pi.distance(pj).max(1e-12);
                    }
                }
            }
        }
        kinetic + potential
    }

    /// Total linear momentum.
    pub fn total_momentum(&self) -> Vec2 {
        self.bodies
            .iter()
            .fold(Vec2::zero(), |acc, b| acc + b.velocity * b.mass)
    }

    /// Total angular momentum about the origin.
    pub fn total_angular_momentum(&self) -> f64 {
        self.bodies
            .iter()
            .map(|b| b.mass * b.position.cross(b.velocity))
            .sum()
    }

    /// Injects a third planet on a wide orbit — the paper's Sec. III-C
    /// ontological surprise ("at some point we observe a behavior of the
    /// planets that contradicts the prediction by the models due to the
    /// influence of a third planet").
    ///
    /// # Errors
    ///
    /// Returns [`OrbitalError::InvalidBody`] for non-positive mass or
    /// distance.
    pub fn inject_third_planet(&mut self, mass: f64, distance: f64) -> Result<()> {
        if !(distance > 0.0) {
            return Err(OrbitalError::InvalidBody(format!(
                "distance must be > 0, got {distance}"
            )));
        }
        let total: f64 = self.bodies.iter().map(|b| b.mass).sum();
        let speed = (self.g * total / distance).sqrt();
        self.bodies.push(Body::point_mass(
            "planet-3",
            mass,
            Vec2::new(0.0, distance),
            Vec2::new(-speed, 0.0),
        )?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_validation() {
        assert!(Body::point_mass("x", 0.0, Vec2::zero(), Vec2::zero()).is_err());
        assert!(Body::point_mass("x", -1.0, Vec2::zero(), Vec2::zero()).is_err());
        let b = Body::point_mass("x", 1.0, Vec2::zero(), Vec2::zero()).unwrap();
        assert!(b.clone().with_mascon_ring(0, 0.1, 0.0, 1.0).is_err());
        assert!(b.clone().with_mascon_ring(4, 0.1, 1.0, 1.0).is_err());
        assert!(NBodySystem::new(vec![], 1.0).is_err());
        assert!(NBodySystem::new(vec![b], 0.0).is_err());
    }

    #[test]
    fn mascon_ring_preserves_total_mass_and_centroid() {
        let b = Body::point_mass("p", 2.0, Vec2::zero(), Vec2::zero())
            .unwrap()
            .with_mascon_ring(6, 0.3, 0.4, 2.0)
            .unwrap();
        let total: f64 = b.mascons.iter().map(|m| m.mass_fraction).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let centroid = b
            .mascons
            .iter()
            .fold(Vec2::zero(), |acc, m| acc + m.offset * m.mass_fraction);
        assert!(centroid.norm() < 1e-12, "centre of mass must stay at the body centre");
    }

    #[test]
    fn two_planets_start_with_zero_net_momentum() {
        let sys = NBodySystem::two_planets(1.0, 0.5, 2.0).unwrap();
        assert!(sys.total_momentum().norm() < 1e-12);
        // Mutual acceleration points along the separation axis.
        let a0 = sys.acceleration(0);
        assert!(a0.x > 0.0 && a0.y.abs() < 1e-15);
    }

    #[test]
    fn point_mass_gravity_inverse_square() {
        let sys = NBodySystem::new(
            vec![
                Body::point_mass("a", 1.0, Vec2::zero(), Vec2::zero()).unwrap(),
                Body::point_mass("b", 4.0, Vec2::new(2.0, 0.0), Vec2::zero()).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let a = sys.acceleration(0);
        assert!((a.x - 1.0).abs() < 1e-12); // G m / r² = 4/4
        let b = sys.acceleration(1);
        assert!((b.x + 0.25).abs() < 1e-12); // 1/4, opposite direction
    }

    #[test]
    fn symmetric_mascon_body_approximates_point_mass_far_away() {
        let far = Vec2::new(100.0, 0.0);
        let point = NBodySystem::new(
            vec![
                Body::point_mass("probe", 1e-6, far, Vec2::zero()).unwrap(),
                Body::point_mass("planet", 1.0, Vec2::zero(), Vec2::zero()).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let hetero = NBodySystem::new(
            vec![
                Body::point_mass("probe", 1e-6, far, Vec2::zero()).unwrap(),
                Body::point_mass("planet", 1.0, Vec2::zero(), Vec2::zero())
                    .unwrap()
                    .with_mascon_ring(8, 0.5, 0.0, 1.0)
                    .unwrap(),
            ],
            1.0,
        )
        .unwrap();
        let ap = point.acceleration(0);
        let ah = hetero.acceleration(0);
        assert!((ap - ah).norm() / ap.norm() < 1e-3);
    }

    #[test]
    fn lumpy_mascon_body_differs_near_field() {
        let near = Vec2::new(1.5, 0.3);
        let mk = |mascons: bool| {
            let planet = Body::point_mass("planet", 1.0, Vec2::zero(), Vec2::zero()).unwrap();
            let planet = if mascons {
                planet.with_mascon_ring(4, 0.5, 0.6, 1.0).unwrap()
            } else {
                planet
            };
            NBodySystem::new(
                vec![Body::point_mass("probe", 1e-6, near, Vec2::zero()).unwrap(), planet],
                1.0,
            )
            .unwrap()
        };
        let ap = mk(false).acceleration(0);
        let ah = mk(true).acceleration(0);
        assert!(
            (ap - ah).norm() / ap.norm() > 1e-3,
            "near-field epistemic model error must be visible"
        );
    }

    #[test]
    fn third_planet_injection() {
        let mut sys = NBodySystem::two_planets(1.0, 1.0, 2.0).unwrap();
        assert_eq!(sys.bodies.len(), 2);
        sys.inject_third_planet(0.1, 10.0).unwrap();
        assert_eq!(sys.bodies.len(), 3);
        assert!(sys.inject_third_planet(0.1, 0.0).is_err());
    }
}
