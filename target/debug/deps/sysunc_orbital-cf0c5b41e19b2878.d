/root/repo/target/debug/deps/sysunc_orbital-cf0c5b41e19b2878.d: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/debug/deps/libsysunc_orbital-cf0c5b41e19b2878.rmeta: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

crates/orbital/src/lib.rs:
crates/orbital/src/error.rs:
crates/orbital/src/integrator.rs:
crates/orbital/src/kepler.rs:
crates/orbital/src/observe.rs:
crates/orbital/src/system.rs:
crates/orbital/src/vec2.rs:
