//! E6 — Sec. V-A: fault tree analysis of the perception system with
//! uncertainty: cut sets, exact and bounded quantification, importance
//! measures, interval/fuzzy (Tanaka) extensions, and dynamic gates.

use std::sync::Arc;
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::evidence::{FuzzyNumber, Interval};
use sysunc::fta::{
    esary_proschan, importance, minimal_cut_sets, quantify_with, rare_event_approximation,
    DynGateKind, DynamicFaultTree, FaultTree, GateKind,
};
use sysunc::prob::dist::{Exponential, Weibull};
use sysunc_bench::{header, section};

fn perception_tree() -> Result<FaultTree, Box<dyn std::error::Error>> {
    let mut ft = FaultTree::new();
    let cam = ft.add_basic_event("camera channel fails", 1e-3)?;
    let radar = ft.add_basic_event("radar channel fails", 2e-3)?;
    let lidar = ft.add_basic_event("lidar channel fails", 3e-3)?;
    let fusion = ft.add_basic_event("fusion software fault", 5e-5)?;
    let power = ft.add_basic_event("power supply fails", 1e-5)?;
    // 2-out-of-3 sensor voting; system fails if 2+ sensors fail, or the
    // fusion software faults, or power is lost.
    let vote = ft.add_gate("2oo3 sensor loss", GateKind::KOfN(2), vec![cam, radar, lidar])?;
    let top =
        ft.add_gate("perception failure", GateKind::Or, vec![vote, fusion, power])?;
    ft.set_top(top)?;
    Ok(ft)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E6", "Sec. V-A — FTA of the perception system with uncertainty");
    let ft = perception_tree()?;

    section("minimal cut sets (MOCUS)");
    let cuts = minimal_cut_sets(&ft)?;
    for cut in &cuts {
        let names: Vec<&str> =
            cut.iter().map(|&i| ft.basic_events()[i].name.as_str()).collect();
        println!("  {{{}}}", names.join(", "));
    }

    section("top event quantification");
    let exact = ft.top_probability_exact()?;
    println!("  exact (enumeration)       = {exact:.6e}");
    println!("  rare-event approximation  = {:.6e}", rare_event_approximation(&ft, &cuts));
    println!("  Esary-Proschan bound      = {:.6e}", esary_proschan(&ft, &cuts));

    section("importance measures");
    println!(
        "  {:<26} {:>12} {:>8} {:>10} {:>10}",
        "basic event", "Birnbaum", "FV", "RAW", "RRW"
    );
    for (i, be) in ft.basic_events().iter().enumerate() {
        let m = importance(&ft, i)?;
        println!(
            "  {:<26} {:>12.3e} {:>8.3} {:>10.1} {:>10.2}",
            be.name, m.birnbaum, m.fussell_vesely, m.risk_achievement_worth,
            m.risk_reduction_worth
        );
    }

    section("epistemic quantification: interval FTA (factor-5 error bands)");
    let intervals: Vec<Interval> = ft
        .basic_events()
        .iter()
        .map(|b| Interval::new(b.probability / 5.0, (b.probability * 5.0).min(1.0)))
        .collect::<Result<_, _>>()?;
    let bounds = quantify_with(&ft, &intervals)?;
    println!("  P(top) in [{:.3e}, {:.3e}]  (width {:.3e})", bounds.lo(), bounds.hi(), bounds.width());

    section("fuzzy FTA (Tanaka): triangular memberships");
    let fuzzies: Vec<FuzzyNumber> = ft
        .basic_events()
        .iter()
        .map(|b| {
            FuzzyNumber::triangular(b.probability / 5.0, b.probability, (b.probability * 5.0).min(1.0))
        })
        .collect::<Result<_, _>>()?;
    let top = quantify_with(&ft, &fuzzies)?;
    println!(
        "  core {:.3e}; alpha=0.5 cut [{:.3e}, {:.3e}]; support [{:.3e}, {:.3e}]",
        top.core().midpoint(),
        top.alpha_cut(0.5).lo(),
        top.alpha_cut(0.5).hi(),
        top.support().lo(),
        top.support().hi()
    );
    println!("  centroid defuzzification = {:.3e}", top.defuzzify_centroid());

    section("dynamic FTA (Dugan): cold spare + PAND, mission profile");
    let mut dft = DynamicFaultTree::new();
    let ecu1 = dft.add_event("primary ECU", Arc::new(Exponential::new(1.0 / 8_000.0)?));
    let ecu2 = dft.add_event("cold-spare ECU", Arc::new(Exponential::new(1.0 / 8_000.0)?));
    let compute = dft.add_gate("compute platform", DynGateKind::ColdSpare, vec![ecu1, ecu2])?;
    let cooling = dft.add_event("cooling degrades", Arc::new(Weibull::new(2.0, 12_000.0)?));
    let sensor = dft.add_event("sensor ages out", Arc::new(Weibull::new(3.0, 9_000.0)?));
    let wearout =
        dft.add_gate("cooling-then-sensor", DynGateKind::PriorityAnd, vec![cooling, sensor])?;
    let top = dft.add_gate("vehicle platform failure", DynGateKind::Or, vec![compute, wearout])?;
    dft.set_top(top)?;
    let mut rng = StdRng::seed_from_u64(6);
    println!("  {:>10} {:>16}", "mission h", "unreliability");
    for mission in [1_000.0, 4_000.0, 8_000.0, 16_000.0] {
        let u = dft.unreliability(mission, 200_000, &mut rng)?;
        println!("  {mission:>10} {:>16.5}", u.mean());
    }
    let (mttf, frac) = dft.mean_time_to_failure(200_000, &mut rng)?;
    println!("  MTTF ≈ {:.0} h over {:.1}% failing runs", mttf.mean(), 100.0 * frac);
    Ok(())
}
