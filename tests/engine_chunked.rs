//! Determinism contract of the chunked struct-of-arrays driver
//! (DESIGN.md, "Chunked struct-of-arrays kernels"): for any budget,
//! chunk width and thread count — including tails that are not a
//! multiple of the width — the chunked path must reproduce the scalar
//! reference path bit-for-bit on outputs, exceedance counts and
//! sort-based quantiles, and within a tight tolerance on the fused
//! mean/variance. Every engine of the catalog must additionally be
//! deterministic under its request seed across repeated and parallel
//! batch runs.

use sysunc::prob::dist::Continuous;
use sysunc::prob::propcheck::{self, u64_range, usize_range};
use sysunc::prob::rng::{SeedableRng, StdRng};
use sysunc::propagator::{propagate_chunked, ChunkOptions};
use sysunc::sampling::{
    propagate, Design, HaltonDesign, LatinHypercubeDesign, RandomDesign, SobolDesign,
    StratifiedDesign,
};
use sysunc::{
    run_batch, run_batch_serial, standard_engines, BatchJob, Model, PropagationRequest,
    SobolEngine, UncertainInput,
};

fn designs() -> Vec<Box<dyn Design>> {
    vec![
        Box::new(RandomDesign),
        Box::new(LatinHypercubeDesign),
        Box::new(SobolDesign::default()),
        Box::new(HaltonDesign::default()),
        Box::new(StratifiedDesign { strata_per_dim: 3 }),
    ]
}

struct CurvedModel;

impl Model for CurvedModel {
    fn eval(&self, x: &[f64]) -> f64 {
        (x[0] * x[1]).sin() + x[2].exp().ln_1p()
    }
}

#[test]
fn chunked_outputs_bit_identical_to_scalar_for_every_design() {
    // Arbitrary budgets and chunk widths, deliberately coprime so the
    // final chunk is almost always a ragged tail; a divergence shrinks
    // to the smallest budget/width/thread combination that exhibits it.
    propcheck::check(
        "chunked_outputs_bit_identical_to_scalar_for_every_design",
        48,
        (usize_range(1..700), usize_range(1..300), usize_range(1..5), u64_range(0..10_000)),
        |&(n, width, threads, seed)| {
        let dists = sysunc::prob::dist::Uniform::new(0.2, 2.0).expect("valid");
        let norm = sysunc::prob::dist::Normal::new(0.0, 1.0).expect("valid");
        let expo = sysunc::prob::dist::Exponential::new(1.3).expect("valid");
        let inputs: Vec<&dyn Continuous> = vec![&dists, &norm, &expo];
        for design in designs() {
            let mut rng = StdRng::seed_from_u64(seed);
            let scalar = propagate(&inputs, design.as_ref(), &CurvedModel, n, &mut rng)
                .expect("scalar path runs");
            let mut rng = StdRng::seed_from_u64(seed);
            let run = propagate_chunked(
                &inputs,
                design.as_ref(),
                &CurvedModel,
                n,
                ChunkOptions { width, threads },
                &mut rng,
            )
            .expect("chunked path runs");
            for (i, (a, b)) in run.outputs().iter().zip(&scalar.outputs).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} sample {i} diverges (n={n} width={width} threads={threads})",
                    design.name()
                );
            }
            assert_eq!(
                run.exceedance_probability(0.8).to_bits(),
                scalar.exceedance_probability(0.8).to_bits(),
                "{} exceedance count",
                design.name()
            );
            let sorted = run.sorted().expect("finite outputs");
            for p in [0.05, 0.5, 0.95] {
                assert_eq!(
                    sorted.interpolated(p).to_bits(),
                    scalar.quantile(p).expect("valid level").to_bits(),
                    "{} quantile {p}",
                    design.name()
                );
            }
        }
    });
}

#[test]
fn fused_moments_match_sequential_within_tolerance() {
    // The one documented non-bit-identical reduction: per-chunk
    // accumulators merged in chunk order vs a sequential streaming
    // push. Mathematically equal; floating-point-wise within ulps.
    propcheck::check(
        "fused_moments_match_sequential_within_tolerance",
        48,
        (usize_range(2..3000), usize_range(1..513), usize_range(1..6), u64_range(0..10_000)),
        |&(n, width, threads, seed)| {
        let a = sysunc::prob::dist::Normal::new(1.0, 2.0).expect("valid");
        let b = sysunc::prob::dist::Uniform::new(0.0, 1.0).expect("valid");
        let inputs: Vec<&dyn Continuous> = vec![&a, &b];
        let model = |x: &[f64]| 2.0 * x[0] + 3.0 * x[1];
        let mut rng = StdRng::seed_from_u64(seed);
        let scalar = propagate(&inputs, &LatinHypercubeDesign, &model, n, &mut rng)
            .expect("scalar path runs");
        let mut rng = StdRng::seed_from_u64(seed);
        let run = propagate_chunked(
            &inputs,
            &LatinHypercubeDesign,
            &model,
            n,
            ChunkOptions { width, threads },
            &mut rng,
        )
        .expect("chunked path runs");
        let mean_scale = scalar.mean().abs().max(1.0);
        let var_scale = scalar.variance().abs().max(1.0);
        assert!(
            (run.mean() - scalar.mean()).abs() <= 1e-10 * mean_scale,
            "fused mean drifted: {} vs {} (n={n} width={width})",
            run.mean(),
            scalar.mean()
        );
        assert!(
            (run.variance() - scalar.variance()).abs() <= 1e-9 * var_scale,
            "fused variance drifted: {} vs {} (n={n} width={width})",
            run.variance(),
            scalar.variance()
        );
        // Thread count must not matter at all: same widths, different
        // tiling, bit-identical moments.
        let mut rng = StdRng::seed_from_u64(seed);
        let retiled = propagate_chunked(
            &inputs,
            &LatinHypercubeDesign,
            &model,
            n,
            ChunkOptions { width, threads: threads % 6 + 1 },
            &mut rng,
        )
        .expect("chunked path runs");
        assert_eq!(run.mean().to_bits(), retiled.mean().to_bits());
        assert_eq!(run.variance().to_bits(), retiled.variance().to_bits());
    });
}


#[test]
fn every_engine_is_deterministic_under_its_seed() {
    // The full catalog (MC, LHS, Sobol, spectral, evidential): repeated
    // runs and parallel batch runs of the same seeded request must
    // produce equal reports — the property the serving layer's response
    // cache and batch dedup rely on.
    let model = CurvedModel;
    let inputs = vec![
        UncertainInput::Uniform { a: 0.2, b: 2.0 },
        UncertainInput::Normal { mu: 0.0, sigma: 1.0 },
        UncertainInput::Exponential { rate: 1.3 },
    ];
    for budget in [1, 100, 1024, 5000] {
        let request = PropagationRequest::new(inputs.clone(), &model)
            .expect("valid request")
            .with_budget(budget)
            .with_seed(77)
            .with_threshold(1.0);
        let mut engines = standard_engines();
        engines.push(Box::new(SobolEngine));
        assert_eq!(engines.len(), 5, "the full catalog");
        let jobs: Vec<BatchJob<'_, '_>> =
            engines.iter().map(|e| (e.as_ref(), &request)).collect();
        let serial = run_batch_serial(&jobs);
        for report in serial.iter().flatten() {
            assert!(report.evaluations > 0);
        }
        for threads in [2, 5] {
            let parallel = run_batch(&jobs, threads);
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(
                    s.as_ref().expect("engine runs"),
                    p.as_ref().expect("engine runs"),
                    "budget {budget}, threads {threads}"
                );
            }
        }
    }
}
