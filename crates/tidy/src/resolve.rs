//! Semantic resolution layer: module tree, item graph, and
//! per-function type-annotation dataflow.
//!
//! The earlier symbol table answered "is this name re-exported
//! *anywhere*?" — a deliberately over-approximate question, because it
//! could not see module structure. This layer parses each file's token
//! stream into a real **module tree** (the file scope plus every inline
//! `mod name { … }` block, with exact item spans), assembles the trees
//! of one crate into a **module graph** by linking `mod name;`
//! declarations to their files, and resolves `use`/`pub use` paths —
//! including globs, aliases, `crate::`/`self::`/`super::` prefixes and
//! re-export chains — against that graph. Reachability then becomes an
//! exact question: an item is public API iff a `pub` chain from the
//! crate root actually reaches it ([`CrateGraph::root_reachable`]).
//!
//! A second pass extracts a **function/struct signature index**
//! ([`FileFacts`]): every `fn` with its parameter and return type
//! annotations and its exact body extent, and every `struct` with its
//! float-typed named fields. This is what lets `float-eq` follow a
//! float through a parameter, a call result, or a field access instead
//! of only spotting literals, and what `lock-hygiene` walks for guard
//! liveness.
//!
//! In the paper's vocabulary: the over-approximate table left residual
//! *epistemic* uncertainty about our own code ("is this `pub` item
//! actually reachable? we cannot tell"); replacing heuristics with
//! resolution discharges that uncertainty instead of sampling around
//! it. Where resolution still fails (a path through a macro, an
//! external crate), the reachability analysis degrades to the old
//! name-level over-approximation for that path only — a lint must
//! never accuse reachable code.

use std::collections::{HashMap, HashSet};

use crate::cursor::Cursor;
use crate::lexer::TokenKind;
use crate::SourceFile;

/// Visibility of an item, module or use declaration, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Unrestricted `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

impl Visibility {
    /// True only for unrestricted `pub`.
    pub fn is_pub(self) -> bool {
        matches!(self, Visibility::Pub)
    }
}

/// One named item declared at module level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item keyword: `fn`, `struct`, `enum`, `trait`, `const`,
    /// `static`, `type`, `union`, `macro`.
    pub kind: &'static str,
    /// The declared name.
    pub name: String,
    /// Visibility as written (`macro_rules!` with `#[macro_export]`
    /// counts as `Pub`).
    pub vis: Visibility,
    /// 1-based line of the declaration.
    pub line: usize,
    /// 1-based line of the item's last token (exact span).
    pub end_line: usize,
}

/// One leaf of a `use` tree, with its visibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Visibility of the whole `use` declaration.
    pub vis: Visibility,
    /// Path segments as written (may start with `crate`, `self`,
    /// `super`, or an external crate name). A trailing `self` leaf
    /// (`use a::{self}`) is normalized away, so the last segment is
    /// the name being imported.
    pub path: Vec<String>,
    /// True for `path::*`.
    pub glob: bool,
    /// The `as` rename, when present.
    pub alias: Option<String>,
    /// 1-based line of the leaf.
    pub line: usize,
}

impl UseDecl {
    /// The name this leaf binds in its module's namespace (`None` for
    /// globs).
    pub fn binding(&self) -> Option<&str> {
        if self.glob {
            return None;
        }
        self.alias.as_deref().or_else(|| self.path.last().map(String::as_str))
    }
}

/// A `mod name;` declaration referring to a file module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// The declared module name.
    pub name: String,
    /// Visibility as written.
    pub vis: Visibility,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One module scope within a single file: index 0 is the file scope,
/// every inline `mod name { … }` block adds one.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Inline module name; empty for the file scope.
    pub name: String,
    /// Parent scope index (`None` for the file scope).
    pub parent: Option<usize>,
    /// How the inline module was declared.
    pub vis: Visibility,
    /// 1-based line of the `mod` keyword (0 for the file scope).
    pub line: usize,
    /// Items declared directly in this scope.
    pub items: Vec<Item>,
    /// `mod name;` file-module declarations in this scope.
    pub mod_decls: Vec<ModDecl>,
    /// Use-tree leaves declared in this scope.
    pub uses: Vec<UseDecl>,
    /// Inline child scopes.
    pub children: Vec<usize>,
}

impl Default for Visibility {
    fn default() -> Self {
        Visibility::Private
    }
}

/// The module scopes of one file, from [`parse_scopes`].
#[derive(Debug, Clone)]
pub struct FileScopes {
    /// Scope 0 is the file scope.
    pub scopes: Vec<Scope>,
}

/// A type annotation reduced to what the dataflow needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAnn {
    /// Exactly `f32` or `f64` (possibly behind `&`/`&mut`).
    Float(&'static str),
    /// A simple named type (last path segment, generics stripped).
    Named(String),
    /// Anything else (tuples, fn pointers, impl Trait, …).
    Other,
}

/// One function parameter with its annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding name (`_`-prefixed names kept verbatim).
    pub name: String,
    /// The declared type.
    pub ty: TypeAnn,
}

/// One `fn` anywhere in a file (module level, impl block, or nested),
/// with its signature facts and exact body extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnInfo {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Named parameters (receiver `self` excluded).
    pub params: Vec<Param>,
    /// Declared return type (`Other` when omitted).
    pub ret: TypeAnn,
    /// Token extent of the body: indices of the `{` and its matching
    /// `}`; `None` for bodiless trait/extern signatures.
    pub body: Option<(usize, usize)>,
    /// The `Self` type of the enclosing `impl` block (last path
    /// segment), or `None` for free functions. `impl Trait for Type`
    /// records `Type`, the implementing side.
    pub self_ty: Option<String>,
}

/// One `struct` with named fields, keeping the float-typed ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructInfo {
    /// The struct name.
    pub name: String,
    /// Named fields annotated `f32`/`f64`, with the float type.
    pub float_fields: Vec<(String, &'static str)>,
    /// Every named field with a simple named type annotation (last
    /// path segment): receiver-type method resolution follows field
    /// accesses (`self.pool.try_submit(..)`) through these.
    pub named_fields: Vec<(String, String)>,
}

/// The signature index of one file: every function and struct, any
/// nesting depth, in source order (so the innermost body containing a
/// token index is the *last* match).
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// All functions in the file.
    pub fns: Vec<FnInfo>,
    /// All structs with named fields.
    pub structs: Vec<StructInfo>,
}

/// Item keywords that declare a named symbol.
const ITEM_KINDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "union"];

// ---------------------------------------------------------------------
// Pass A: module scopes (tree of inline modules + items + uses)
// ---------------------------------------------------------------------

/// Parses one file's module scopes: items, `mod` declarations and use
/// trees per scope, with inline `mod { }` blocks as child scopes.
/// `#[cfg(test)]` extents are excluded throughout.
pub fn parse_scopes(file: &SourceFile) -> FileScopes {
    let mut scopes = vec![Scope::default()];
    let tokens = file.tokens();
    let end = tokens.len();
    parse_scope_body(file, 0, end, 0, &mut scopes);
    FileScopes { scopes }
}

/// Parses declarations in `tokens[from..to]` into scope `scope`,
/// recursing into inline modules. Balanced regions of items we do not
/// model (fn bodies, impl/trait blocks, braced initializers) are
/// skipped whole, so brace depth stays exact.
fn parse_scope_body(
    file: &SourceFile,
    from: usize,
    to: usize,
    scope: usize,
    scopes: &mut Vec<Scope>,
) {
    let src = &file.content;
    let tokens = file.tokens();
    let mut i = from;
    while i < to {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        // Attributes: detect `#[macro_export]`, skip the rest.
        if t.kind == TokenKind::Punct && t.text(src) == "#" {
            let mut c = Cursor::new(src, tokens);
            c.seek(i + 1);
            c.skip_comments();
            // `#![…]` inner attributes too.
            if c.at_punct("!") {
                c.bump();
                c.skip_comments();
            }
            if c.at_punct("[") {
                let open = c.pos();
                if let Some(end) = c.skip_balanced("[", "]") {
                    let macro_export = tokens[open..end]
                        .iter()
                        .any(|u| u.kind == TokenKind::Ident && u.text(src) == "macro_export");
                    i = end;
                    if macro_export {
                        // Attach to the following `macro_rules!` item.
                        i = parse_macro_rules(file, i, to, scope, scopes, true)
                            .unwrap_or(i);
                    }
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        if file.in_test_block(t.line) {
            i += 1;
            continue;
        }
        // Visibility marker.
        let decl_start = i;
        let mut vis = Visibility::Private;
        let mut c = Cursor::new(src, tokens);
        c.seek(i);
        if c.eat_ident("pub") {
            vis = Visibility::Pub;
            c.skip_comments();
            if c.at_punct("(") {
                vis = Visibility::Restricted;
                if c.skip_balanced("(", ")").is_none() {
                    return;
                }
            }
        }
        // Item modifiers, then the keyword.
        let kind = loop {
            c.skip_comments();
            let Some(word) = c.eat_any_ident() else { break None };
            match word {
                "unsafe" | "async" | "default" => continue,
                "extern" => {
                    c.skip_comments();
                    if matches!(
                        c.peek().map(|t| t.kind),
                        Some(TokenKind::Str | TokenKind::RawStr)
                    ) {
                        c.bump();
                    }
                    continue;
                }
                "const" => {
                    c.skip_comments();
                    if c.at_ident("fn") {
                        c.bump();
                        break Some("fn");
                    }
                    break Some("const");
                }
                "static" => {
                    c.skip_comments();
                    if c.at_ident("mut") {
                        c.bump();
                    }
                    break Some("static");
                }
                "macro_rules" => {
                    if let Some(next) =
                        parse_macro_rules(file, decl_start, to, scope, scopes, false)
                    {
                        i = next;
                    } else {
                        i = c.pos();
                    }
                    break None;
                }
                "mod" | "use" | "impl" | "trait" => break Some(match word {
                    "mod" => "mod",
                    "use" => "use",
                    "impl" => "impl",
                    _ => "trait",
                }),
                w if ITEM_KINDS.contains(&w) => {
                    break ITEM_KINDS.iter().find(|k| **k == w).copied()
                }
                _ => break None,
            }
        };
        let Some(kind) = kind else {
            i = c.pos().max(i + 1);
            continue;
        };
        match kind {
            "mod" => {
                let line = tokens[decl_start].line;
                let Some(name) = c.eat_any_ident() else {
                    i = c.pos();
                    continue;
                };
                let name = name.to_string();
                c.skip_comments();
                if c.at_punct(";") {
                    c.bump();
                    scopes[scope].mod_decls.push(ModDecl { name, vis, line });
                    i = c.pos();
                } else if c.at_punct("{") {
                    let open = c.pos();
                    let close = matching_close(file, open, "{", "}");
                    let child = scopes.len();
                    scopes.push(Scope {
                        name,
                        parent: Some(scope),
                        vis,
                        line,
                        ..Scope::default()
                    });
                    scopes[scope].children.push(child);
                    parse_scope_body(file, open + 1, close, child, scopes);
                    i = close + 1;
                } else {
                    i = c.pos();
                }
            }
            "use" => {
                let line = tokens[decl_start].line;
                let mut leaves = Vec::new();
                parse_use_tree(file, &mut c, &mut Vec::new(), &mut leaves);
                for (path, glob, alias) in leaves {
                    if !path.is_empty() || glob {
                        scopes[scope].uses.push(UseDecl { vis, path, glob, alias, line });
                    }
                }
                i = c.pos();
            }
            "impl" => {
                // Not a named item; skip the whole block.
                i = skip_to_block_end(file, c.pos(), to);
            }
            "trait" => {
                let line = tokens[decl_start].line;
                if let Some(name) = c.eat_any_ident() {
                    let end = skip_to_block_end(file, c.pos(), to);
                    scopes[scope].items.push(Item {
                        kind: "trait",
                        name: name.to_string(),
                        vis,
                        line,
                        end_line: tokens[end.saturating_sub(1).min(tokens.len() - 1)]
                            .end_line,
                    });
                    i = end;
                } else {
                    i = c.pos();
                }
            }
            kind => {
                let line = tokens[decl_start].line;
                let Some(name) = c.eat_any_ident() else {
                    i = c.pos();
                    continue;
                };
                let name = name.to_string();
                // Skip to the end of the item: its body's matching `}`
                // or the terminating `;`, whichever comes first at
                // depth 0 (generics, where-clauses and initializers are
                // walked token-by-token; `;` inside braces or brackets
                // — e.g. `[0; 4]` — does not terminate).
                let end = skip_item_end(file, c.pos(), to);
                scopes[scope].items.push(Item {
                    kind,
                    name,
                    vis,
                    line,
                    end_line: tokens[end.saturating_sub(1).min(tokens.len() - 1)].end_line,
                });
                i = end;
            }
        }
    }
}

/// Records a `macro_rules! name { … }` item and returns the index one
/// past its body. `start` points at the attribute/`macro_rules` token.
fn parse_macro_rules(
    file: &SourceFile,
    start: usize,
    to: usize,
    scope: usize,
    scopes: &mut Vec<Scope>,
    exported: bool,
) -> Option<usize> {
    let src = &file.content;
    let tokens = file.tokens();
    let mut c = Cursor::new(src, tokens);
    c.seek(start);
    // Walk forward to `macro_rules` (skipping comments/whitespace-only
    // distance; bounded so an attribute on another item bails out).
    let mut steps = 0;
    while !c.at_ident("macro_rules") {
        c.bump()?;
        steps += 1;
        if steps > 4 || c.pos() >= to {
            return None;
        }
    }
    let line = c.peek()?.line;
    c.bump(); // macro_rules
    if !c.eat_punct("!") {
        return None;
    }
    let name = c.eat_any_ident()?.to_string();
    let open = {
        c.skip_comments();
        c.pos()
    };
    let close = matching_close(file, open, "{", "}");
    if !file.in_test_block(line) {
        scopes[scope].items.push(Item {
            kind: "macro",
            name,
            vis: if exported { Visibility::Pub } else { Visibility::Private },
            line,
            end_line: tokens[close.min(tokens.len() - 1)].end_line,
        });
    }
    Some(close + 1)
}

/// Index of the token matching the next `open` at or after `i`
/// (clamped to `tokens.len()` when unbalanced).
pub(crate) fn matching_close(file: &SourceFile, i: usize, open: &str, close: &str) -> usize {
    let tokens = file.tokens();
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            let text = file.text(&tokens[j]);
            if text == open {
                depth += 1;
            } else if text == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    j
}

/// Skips from `i` past the next `{…}` block (or a bare `;`), returning
/// the index one past it. Used for impl/trait bodies.
fn skip_to_block_end(file: &SourceFile, i: usize, to: usize) -> usize {
    let tokens = file.tokens();
    let mut j = i;
    while j < to {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "{" => return matching_close(file, j, "{", "}") + 1,
                ";" => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    to
}

/// Skips from `i` to one past the end of an item declaration: the
/// matching `}` of its first depth-0 `{`, or the first depth-0 `;`.
/// Parens/brackets are tracked so `;` inside `[0; 4]` or a closure does
/// not terminate early.
fn skip_item_end(file: &SourceFile, i: usize, to: usize) -> usize {
    let tokens = file.tokens();
    let mut j = i;
    let mut paren = 0i64;
    while j < to {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" => return matching_close(file, j, "{", "}") + 1,
                ";" if paren <= 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    to
}

/// Parses one use tree into `(path, glob, alias)` leaves. `prefix` is
/// the path accumulated so far; consumes through the terminating `;`.
fn parse_use_tree(
    file: &SourceFile,
    c: &mut Cursor<'_>,
    prefix: &mut Vec<String>,
    out: &mut Vec<(Vec<String>, bool, Option<String>)>,
) {
    let mut path = prefix.clone();
    loop {
        c.skip_comments();
        if c.at_punct("*") {
            c.bump();
            out.push((path.clone(), true, None));
            break;
        }
        if c.at_punct("{") {
            c.bump();
            loop {
                c.skip_comments();
                if c.at_punct("}") {
                    c.bump();
                    break;
                }
                parse_use_tree(file, c, &mut path.clone(), out);
                c.skip_comments();
                if c.at_punct(",") {
                    c.bump();
                }
                if c.peek().is_none() {
                    break;
                }
            }
            break;
        }
        let Some(seg) = c.eat_any_ident() else { break };
        if seg == "as" {
            let alias = c.eat_any_ident().map(str::to_string);
            out.push((path.clone(), false, alias));
            break;
        }
        // `self` as a *leaf* (`use a::{self, b}`) imports the path so
        // far; `self::` as a *prefix* stays a path segment.
        if seg == "self" && !path.is_empty() {
            c.skip_comments();
            if c.at_punct("::") {
                path.push(seg.to_string());
                c.bump();
                continue;
            }
            // Leaf, possibly aliased.
            let alias = if c.at_ident("as") {
                c.bump();
                c.eat_any_ident().map(str::to_string)
            } else {
                None
            };
            out.push((path.clone(), false, alias));
            break;
        }
        path.push(seg.to_string());
        c.skip_comments();
        if c.at_punct("::") {
            c.bump();
            continue;
        }
        if c.at_ident("as") {
            c.bump();
            let alias = c.eat_any_ident().map(str::to_string);
            out.push((path.clone(), false, alias));
            break;
        }
        out.push((path.clone(), false, None));
        break;
    }
    c.skip_comments();
    if c.at_punct(";") {
        c.bump();
    }
}

// ---------------------------------------------------------------------
// Pass B: function/struct signature index
// ---------------------------------------------------------------------

/// Extracts every `fn` signature+body extent and every named-field
/// `struct` from the file, at any nesting depth, in source order.
/// Functions inside an `impl` block additionally record the block's
/// `Self` type, so methods can be looked up by `(type, name)`.
pub fn parse_facts(file: &SourceFile) -> FileFacts {
    let src = &file.content;
    let tokens = file.tokens();
    let impls = impl_extents(file);
    let mut facts = FileFacts::default();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text(src) {
            "fn" => {
                let (info, next) = parse_fn(file, i);
                let resume = match &info {
                    // Scan on from just inside the body so nested fns
                    // are indexed too.
                    Some(f) => f.body.map(|(open, _)| open + 1).unwrap_or(next),
                    None => next,
                };
                if let Some(mut f) = info {
                    // The innermost enclosing impl block (extents are
                    // in source order, so the last containing wins).
                    f.self_ty = impls
                        .iter()
                        .filter(|(open, close, _)| (*open..=*close).contains(&i))
                        .last()
                        .and_then(|(_, _, ty)| ty.clone());
                    facts.fns.push(f);
                }
                i = resume.max(i + 1);
            }
            "struct" => {
                let (info, next) = parse_struct(file, i);
                if let Some(s) = info {
                    facts.structs.push(s);
                }
                i = next.max(i + 1);
            }
            _ => i += 1,
        }
    }
    facts
}

/// Every `impl` block in the file: `(body_open, body_close, self_ty)`
/// with token indices of the braces and the implementing type's last
/// path segment (`None` for shapes the type model cannot name).
fn impl_extents(file: &SourceFile) -> Vec<(usize, usize, Option<String>)> {
    let src = &file.content;
    let tokens = file.tokens();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text(src) == "impl" {
            // `impl Trait` in *type* position follows a sigil (`:`,
            // `->`, `(`, `+`, `=`, `,`, `<`, `&`); an impl *block*'s
            // keyword starts an item.
            let item_pos = tokens[..i]
                .iter()
                .rfind(|u| !u.is_comment())
                .map(|u| {
                    !(u.kind == TokenKind::Punct
                        && matches!(
                            file.text(u),
                            ":" | "->" | "(" | "+" | "=" | "," | "<" | "&"
                        ))
                })
                .unwrap_or(true);
            if item_pos {
                // The body opens at the first `{` of the header (impl
                // headers cannot contain braces before the body).
                let mut j = i + 1;
                let mut open = None;
                while j < tokens.len() {
                    if tokens[j].kind == TokenKind::Punct {
                        match file.text(&tokens[j]) {
                            "{" => {
                                open = Some(j);
                                break;
                            }
                            ";" => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let close = matching_close(file, open, "{", "}");
                    out.push((open, close, impl_self_ty(file, i, open)));
                    // Resume inside the body so nested impls are found.
                    i = open + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// The implementing type of an `impl` header spanning tokens
/// `(kw, body_open)`: the type after the last trait-position `for`
/// (HRTB `for<'a>` excluded), or the type right after the impl
/// generics for inherent impls.
fn impl_self_ty(file: &SourceFile, kw: usize, body_open: usize) -> Option<String> {
    let src = &file.content;
    let tokens = file.tokens();
    let mut c = Cursor::new(src, tokens);
    c.seek(kw + 1);
    c.skip_comments();
    if c.at_punct("<") {
        skip_generics(file, &mut c);
    }
    let mut start = c.pos();
    let mut j = start;
    while j < body_open {
        let t = &tokens[j];
        if t.kind == TokenKind::Ident {
            match t.text(src) {
                // A `where` clause ends the type head.
                "where" => break,
                "for" => {
                    let hrtb = tokens[j + 1..body_open]
                        .iter()
                        .find(|u| !u.is_comment())
                        .map(|u| u.kind == TokenKind::Punct && file.text(u) == "<")
                        .unwrap_or(false);
                    if !hrtb {
                        start = j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    let mut c = Cursor::new(src, tokens);
    c.seek(start);
    match parse_type(file, &mut c) {
        TypeAnn::Named(name) if name != "dyn" => Some(name),
        TypeAnn::Float(f) => Some(f.to_string()),
        _ => None,
    }
}

/// Parses the type annotation starting at token index `i`, returning
/// the annotation and the index one past its extent. Exposed for rules
/// that scan `let name: Type` bindings inside bodies.
pub fn type_annotation_at(file: &SourceFile, i: usize) -> (TypeAnn, usize) {
    let mut c = Cursor::new(&file.content, file.tokens());
    c.seek(i);
    let ann = parse_type(file, &mut c);
    (ann, c.pos())
}

/// Parses a type annotation at the cursor, consuming it up to (not
/// including) a top-level `,`, `)`, `{`, `;` or `=`.
fn parse_type(file: &SourceFile, c: &mut Cursor<'_>) -> TypeAnn {
    let ann = parse_type_head(file, c);
    // Consume any trailing tokens of a type we do not model, stopping
    // at a top-level delimiter.
    let mut depth = 0i64;
    while let Some(t) = c.peek() {
        if t.kind == TokenKind::Punct {
            match file.text(t) {
                "(" | "[" => depth += 1,
                ")" | "]" if depth > 0 => depth -= 1,
                "," | ")" | "]" | "{" | ";" | "=" if depth == 0 => break,
                "<" => {
                    skip_generics(file, c);
                    continue;
                }
                _ => {}
            }
        }
        c.bump();
    }
    ann
}

/// Parses the head of a type annotation — sigils, the path, and one
/// generic-argument list — without the trailing top-level consumption,
/// so it can recurse inside `Arc<…>`-style transparent wrappers.
fn parse_type_head(file: &SourceFile, c: &mut Cursor<'_>) -> TypeAnn {
    let src = &file.content;
    c.skip_comments();
    // Strip reference sigils and lifetimes.
    while c.at_punct("&") {
        c.bump();
        c.skip_comments();
        if matches!(c.peek().map(|t| t.kind), Some(TokenKind::Lifetime)) {
            c.bump();
            c.skip_comments();
        }
        if c.at_ident("mut") {
            c.bump();
            c.skip_comments();
        }
    }
    let mut ann = TypeAnn::Other;
    if let Some(t) = c.peek() {
        if t.kind == TokenKind::Ident {
            // Walk the path, keeping the last segment.
            let mut last = t.text(src).to_string();
            c.bump();
            loop {
                c.skip_comments();
                if c.at_punct("::") {
                    c.bump();
                    c.skip_comments();
                    if let Some(seg) = c.eat_any_ident() {
                        last = seg.to_string();
                        continue;
                    }
                }
                break;
            }
            let transparent = matches!(last.as_str(), "Arc" | "Rc" | "Box");
            ann = match last.as_str() {
                "f32" => TypeAnn::Float("f32"),
                "f64" => TypeAnn::Float("f64"),
                _ => TypeAnn::Named(last),
            };
            c.skip_comments();
            if c.at_punct("<") {
                if transparent {
                    // Deref-transparent smart pointers: the annotation
                    // flows through to the pointee (`Arc<T>` compares,
                    // calls, and locks as a `T`). The pointee is read
                    // with a forked cursor; the whole argument list is
                    // then skipped balanced (`>>` counts double).
                    let mut inner = *c;
                    inner.bump();
                    ann = parse_type_head(file, &mut inner);
                    skip_generics(file, c);
                } else {
                    // Other generic arguments demote to a plain named
                    // head type (`Vec<f64>` is not a float).
                    skip_generics(file, c);
                }
            }
        }
    }
    ann
}

/// Skips a balanced generic-argument list opening at the cursor's `<`.
/// Compound shift tokens count double.
fn skip_generics(file: &SourceFile, c: &mut Cursor<'_>) {
    let src = &file.content;
    let mut depth = 0i64;
    while let Some(t) = c.bump() {
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "->" => {}
                ";" | "{" => return, // malformed; bail out
                _ => {}
            }
            if depth <= 0 {
                return;
            }
        }
    }
}

/// Parses one `fn` whose keyword sits at token `i`. Returns the info
/// (None for unparsable shapes) and the index one past the signature's
/// end (body close, or `;`).
fn parse_fn(file: &SourceFile, i: usize) -> (Option<FnInfo>, usize) {
    let src = &file.content;
    let tokens = file.tokens();
    let line = tokens[i].line;
    let mut c = Cursor::new(src, tokens);
    c.seek(i + 1);
    let Some(name) = c.eat_any_ident() else { return (None, i + 1) };
    let name = name.to_string();
    c.skip_comments();
    if c.at_punct("<") {
        skip_generics(file, &mut c);
        c.skip_comments();
    }
    if !c.at_punct("(") {
        return (None, c.pos());
    }
    let params_open = c.pos();
    let params_close = matching_close(file, params_open, "(", ")");
    // Parameters: `[mut] name: Type` at paren depth 1, split on
    // top-level commas. Destructuring patterns are skipped.
    let mut params = Vec::new();
    let mut p = Cursor::new(src, tokens);
    p.seek(params_open + 1);
    while p.pos() < params_close {
        p.skip_comments();
        if p.pos() >= params_close {
            break;
        }
        // One parameter: find its `:` at depth 0 (relative to here).
        let start = p.pos();
        let mut colon = None;
        let mut depth = 0i64;
        let mut q = p;
        while q.pos() < params_close {
            let Some(t) = q.peek() else { break };
            if t.kind == TokenKind::Punct {
                match file.text(t) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => {
                        skip_generics(file, &mut q);
                        continue;
                    }
                    ":" if depth == 0 => {
                        colon = Some(q.pos());
                        break;
                    }
                    "," if depth == 0 => break,
                    _ => {}
                }
            }
            q.bump();
        }
        if let Some(colon) = colon {
            // Binding name: the last plain ident before the colon that
            // is a simple pattern (`x`, `mut x`); anything else (tuple
            // or struct patterns) is skipped.
            let mut name_tok = None;
            let mut simple = true;
            for t in &tokens[start..colon] {
                if t.is_comment() {
                    continue;
                }
                match t.kind {
                    TokenKind::Ident if file.text(t) == "mut" => {}
                    TokenKind::Ident if name_tok.is_none() => name_tok = Some(t),
                    _ => simple = false,
                }
            }
            let mut ty_cursor = Cursor::new(src, tokens);
            ty_cursor.seek(colon + 1);
            let ty = parse_type(file, &mut ty_cursor);
            if let (Some(nt), true) = (name_tok, simple) {
                params.push(Param { name: file.text(nt).to_string(), ty });
            }
            p.seek(ty_cursor.pos().min(params_close));
        }
        // Advance past the separating comma (or to the close).
        let mut depth = 0i64;
        while p.pos() < params_close {
            let Some(t) = p.peek() else { break };
            if t.kind == TokenKind::Punct {
                match file.text(t) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        p.bump();
                        break;
                    }
                    _ => {}
                }
            }
            p.bump();
        }
    }
    // Return type.
    let mut c = Cursor::new(src, tokens);
    c.seek(params_close + 1);
    c.skip_comments();
    let ret = if c.at_punct("->") {
        c.bump();
        parse_type(file, &mut c)
    } else {
        TypeAnn::Other
    };
    // Body: the first `{` before a `;` (where-clauses walked over).
    let mut j = c.pos();
    let mut body = None;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "{" => {
                    body = Some((j, matching_close(file, j, "{", "}")));
                    break;
                }
                ";" => break,
                _ => {}
            }
        }
        j += 1;
    }
    let end = body.map(|(_, close)| close + 1).unwrap_or(j + 1);
    (Some(FnInfo { name, line, params, ret, body, self_ty: None }), end)
}

/// Parses one `struct` whose keyword sits at token `i`, recording its
/// float-typed named fields. Tuple and unit structs return no fields.
fn parse_struct(file: &SourceFile, i: usize) -> (Option<StructInfo>, usize) {
    let src = &file.content;
    let tokens = file.tokens();
    let mut c = Cursor::new(src, tokens);
    c.seek(i + 1);
    let Some(name) = c.eat_any_ident() else { return (None, i + 1) };
    let name = name.to_string();
    c.skip_comments();
    if c.at_punct("<") {
        skip_generics(file, &mut c);
        c.skip_comments();
    }
    // Where clause tokens up to `{`, `;` or `(`.
    let mut j = c.pos();
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "{" => break,
                ";" | "(" => return (Some(StructInfo { name, float_fields: Vec::new(), named_fields: Vec::new() }), j),
                _ => {}
            }
        }
        j += 1;
    }
    if j >= tokens.len() {
        return (Some(StructInfo { name, float_fields: Vec::new(), named_fields: Vec::new() }), j);
    }
    let open = j;
    let close = matching_close(file, open, "{", "}");
    let mut float_fields = Vec::new();
    let mut named_fields = Vec::new();
    let mut f = Cursor::new(src, tokens);
    f.seek(open + 1);
    while f.pos() < close {
        f.skip_comments();
        if f.pos() >= close {
            break;
        }
        // `[pub[(…)]] name : Type ,`
        if f.at_ident("pub") {
            f.bump();
            f.skip_comments();
            if f.at_punct("(") {
                f.skip_balanced("(", ")");
                f.skip_comments();
            }
        }
        if f.at_punct("#") {
            // Field attribute.
            f.bump();
            f.skip_balanced("[", "]");
            continue;
        }
        let Some(field) = f.eat_any_ident() else {
            f.bump();
            continue;
        };
        let field = field.to_string();
        if !f.eat_punct(":") {
            continue;
        }
        match parse_type(file, &mut f) {
            TypeAnn::Float(ty) => {
                float_fields.push((field.clone(), ty));
                named_fields.push((field, ty.to_string()));
            }
            TypeAnn::Named(ty) => named_fields.push((field, ty)),
            TypeAnn::Other => {}
        }
        f.eat_punct(",");
    }
    (Some(StructInfo { name, float_fields, named_fields }), close + 1)
}

// ---------------------------------------------------------------------
// Crate assembly and path resolution
// ---------------------------------------------------------------------

/// One module of an assembled crate graph.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (empty for the crate root).
    pub name: String,
    /// Parent module index (`None` for the root).
    pub parent: Option<usize>,
    /// Visibility at the declaration site (`Pub` for the root).
    pub vis: Visibility,
    /// Full path from the crate root.
    pub path: Vec<String>,
    /// Index of the file providing this module's contents, into the
    /// workspace file list.
    pub file_idx: usize,
    /// Items declared directly in the module.
    pub items: Vec<Item>,
    /// Use leaves declared in the module.
    pub uses: Vec<UseDecl>,
    /// Child module indices (inline and file modules).
    pub children: Vec<usize>,
    /// False for files present under `src/` that no `mod` declaration
    /// attaches to the tree — an unreferenced (dead) file.
    pub declared: bool,
}

/// What a path resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A module of this crate.
    Module(usize),
    /// Item `item` of module `module` (indices into the graph).
    Item { module: usize, item: usize },
    /// The path leaves the crate (external crate or std).
    External,
    /// The path could not be resolved inside the crate.
    Unknown,
}

/// The assembled module graph of one crate.
#[derive(Debug, Clone)]
pub struct CrateGraph {
    /// Directory name under `crates/`.
    pub name: String,
    /// Modules; index 0 is the crate root.
    pub modules: Vec<Module>,
}

/// Exact root-reachability of a crate's public items.
#[derive(Debug, Clone)]
pub struct ReachSet {
    /// Per module: reachable as a public namespace from the root.
    pub module_ns: Vec<bool>,
    /// Per module, per item: reachable from the root.
    pub items: Vec<Vec<bool>>,
    /// Leaf names of `pub use` paths that could not be resolved
    /// in-crate; reachability degrades to name-matching for these so
    /// the rule never accuses code a macro or exotic path reaches.
    pub unresolved_names: HashSet<String>,
}

impl CrateGraph {
    /// Assembles one crate's module graph from its files.
    /// `files` pairs each workspace file index with its layout-derived
    /// module path (`lib.rs` → `[]`, `a/mod.rs` → `["a"]`, `a/b.rs` →
    /// `["a","b"]`); `trees` holds each file's parsed scopes.
    pub fn build(
        name: &str,
        files: &[(usize, Vec<String>)],
        trees: &HashMap<usize, FileScopes>,
    ) -> Option<CrateGraph> {
        let root_file = files.iter().find(|(_, p)| p.is_empty())?.0;
        let mut graph = CrateGraph { name: name.to_string(), modules: Vec::new() };
        let mut attached: HashSet<usize> = HashSet::new();
        graph.attach(
            root_file,
            0,
            None,
            Visibility::Pub,
            Vec::new(),
            true,
            files,
            trees,
            &mut attached,
        );
        // Files never referenced by a `mod` declaration are dead; keep
        // them in the graph (as undeclared private children of the
        // root) so their `pub` items surface as unreachable.
        let mut orphans: Vec<&(usize, Vec<String>)> =
            files.iter().filter(|(fi, _)| !attached.contains(fi)).collect();
        orphans.sort_by_key(|(fi, _)| *fi);
        for (fi, layout) in orphans {
            let path = layout.clone();
            let name = path.last().cloned().unwrap_or_default();
            graph.attach(
                *fi,
                0,
                Some(0),
                Visibility::Private,
                path,
                false,
                files,
                trees,
                &mut attached,
            );
            if let Some(m) = graph.modules.iter_mut().rev().find(|m| m.file_idx == *fi) {
                m.name = name.clone();
            }
        }
        Some(graph)
    }

    /// Recursively attaches `scope_idx` of file `file_idx` as a module.
    #[allow(clippy::too_many_arguments)]
    fn attach(
        &mut self,
        file_idx: usize,
        scope_idx: usize,
        parent: Option<usize>,
        vis: Visibility,
        path: Vec<String>,
        declared: bool,
        files: &[(usize, Vec<String>)],
        trees: &HashMap<usize, FileScopes>,
        attached: &mut HashSet<usize>,
    ) -> usize {
        attached.insert(file_idx);
        let idx = self.modules.len();
        let scope = &trees[&file_idx].scopes[scope_idx];
        self.modules.push(Module {
            name: scope.name.clone(),
            parent,
            vis,
            path: path.clone(),
            file_idx,
            items: scope.items.clone(),
            uses: scope.uses.clone(),
            children: Vec::new(),
            declared,
        });
        let child_scopes: Vec<(usize, String, Visibility)> = scope
            .children
            .iter()
            .map(|&c| {
                let s = &trees[&file_idx].scopes[c];
                (c, s.name.clone(), s.vis)
            })
            .collect();
        let mod_decls = scope.mod_decls.clone();
        for (c, name, cvis) in child_scopes {
            let mut child_path = path.clone();
            child_path.push(name);
            let child =
                self.attach(file_idx, c, Some(idx), cvis, child_path, true, files, trees, attached);
            self.modules[idx].children.push(child);
        }
        for d in mod_decls {
            let mut child_path = path.clone();
            child_path.push(d.name.clone());
            let Some(&(target_file, _)) =
                files.iter().find(|(_, layout)| *layout == child_path)
            else {
                continue; // missing file; cargo would reject the tree
            };
            let child = self.attach(
                target_file,
                0,
                Some(idx),
                d.vis,
                child_path,
                true,
                files,
                trees,
                attached,
            );
            self.modules[child].name = d.name;
            self.modules[idx].children.push(child);
        }
        idx
    }

    /// The crate root module.
    pub fn root(&self) -> &Module {
        &self.modules[0]
    }

    /// The module with exactly this path, if present.
    pub fn module(&self, path: &[String]) -> Option<&Module> {
        self.modules.iter().find(|m| m.path == path)
    }

    /// Child of module `m` with this name.
    fn child_named(&self, m: usize, name: &str) -> Option<usize> {
        self.modules[m].children.iter().copied().find(|&c| self.modules[c].name == name)
    }

    /// Resolves `path` as written in module `from`. Tries the module's
    /// own namespace first (2015-style relative paths), then the crate
    /// root (2018 uniform paths); explicit `crate::`/`self::`/`super::`
    /// prefixes are honored.
    pub fn resolve(&self, from: usize, path: &[String]) -> Target {
        if path.is_empty() {
            return Target::Unknown;
        }
        match path[0].as_str() {
            "crate" => return self.resolve_in(0, &path[1..], 0),
            "self" => return self.resolve_in(from, &path[1..], 0),
            "super" => {
                let mut cur = from;
                let mut rest = path;
                while rest.first().map(String::as_str) == Some("super") {
                    match self.modules[cur].parent {
                        Some(p) => cur = p,
                        None => return Target::Unknown,
                    }
                    rest = &rest[1..];
                }
                return self.resolve_in(cur, rest, 0);
            }
            _ => {}
        }
        match self.resolve_in(from, path, 0) {
            Target::Unknown => match self.resolve_in(0, path, 0) {
                // Neither relative nor root-anchored: the first
                // segment names an external crate (or something we
                // cannot see).
                Target::Unknown => Target::External,
                t => t,
            },
            t => t,
        }
    }

    /// Resolves `segs` starting inside module `cur`'s namespace.
    fn resolve_in(&self, mut cur: usize, segs: &[String], depth: usize) -> Target {
        if depth > 32 {
            return Target::Unknown; // re-export cycle
        }
        if segs.is_empty() {
            return Target::Module(cur);
        }
        for (k, seg) in segs.iter().enumerate() {
            let last = k + 1 == segs.len();
            // Child module?
            if let Some(c) = self.child_named(cur, seg) {
                if last {
                    return Target::Module(c);
                }
                cur = c;
                continue;
            }
            // Item in the current module?
            if last {
                if let Some(ii) =
                    self.modules[cur].items.iter().position(|it| it.name == *seg)
                {
                    return Target::Item { module: cur, item: ii };
                }
            }
            // A use binding in the current module (re-export chain)?
            let binding = self.modules[cur]
                .uses
                .iter()
                .find(|u| u.binding() == Some(seg.as_str()))
                .cloned();
            if let Some(u) = binding {
                match self.resolve(cur, &resolve_guard(&u.path, depth)) {
                    Target::Module(m) => {
                        if last {
                            return Target::Module(m);
                        }
                        cur = m;
                        continue;
                    }
                    Target::Item { module, item } => {
                        return if last {
                            Target::Item { module, item }
                        } else {
                            Target::Unknown
                        };
                    }
                    Target::External => return Target::External,
                    Target::Unknown => return Target::Unknown,
                }
            }
            // Glob imports into the current module?
            let globs: Vec<UseDecl> = self.modules[cur]
                .uses
                .iter()
                .filter(|u| u.glob)
                .cloned()
                .collect();
            for g in globs {
                if let Target::Module(gm) = self.resolve(cur, &resolve_guard(&g.path, depth))
                {
                    let t = self.resolve_in(gm, &segs[k..], depth + 1);
                    if t != Target::Unknown {
                        return t;
                    }
                }
            }
            return Target::Unknown;
        }
        Target::Module(cur)
    }

    /// Exact root-reachability over the `pub` graph: reachable
    /// namespaces, reachable items, and the leaf names of unresolvable
    /// `pub use` paths (for the conservative fallback).
    pub fn root_reachable(&self) -> ReachSet {
        let mut reach = ReachSet {
            module_ns: vec![false; self.modules.len()],
            items: self.modules.iter().map(|m| vec![false; m.items.len()]).collect(),
            unresolved_names: HashSet::new(),
        };
        let mut queue = vec![0usize];
        reach.module_ns[0] = true;
        while let Some(m) = queue.pop() {
            for (ii, item) in self.modules[m].items.iter().enumerate() {
                if item.vis.is_pub() {
                    reach.items[m][ii] = true;
                }
            }
            for &c in &self.modules[m].children {
                if self.modules[c].vis.is_pub() && !reach.module_ns[c] {
                    reach.module_ns[c] = true;
                    queue.push(c);
                }
            }
            for u in &self.modules[m].uses {
                if !u.vis.is_pub() {
                    continue;
                }
                match self.resolve(m, &u.path) {
                    Target::Module(t) => {
                        // `pub use m2` and `pub use m2::*` both expose
                        // m2's public namespace from here.
                        if !reach.module_ns[t] {
                            reach.module_ns[t] = true;
                            queue.push(t);
                        }
                    }
                    Target::Item { module, item } => {
                        reach.items[module][item] = true;
                    }
                    Target::External
                        if matches!(
                            u.path.first().map(String::as_str),
                            Some("std" | "core" | "alloc")
                        ) => {}
                    // A first segment we cannot see could be another
                    // workspace crate (harmless) or macro output
                    // (must not be accused) — fall back either way.
                    Target::External | Target::Unknown => {
                        if let Some(name) = u.binding() {
                            reach.unresolved_names.insert(name.to_string());
                        } else {
                            // An unresolved glob could cover anything
                            // its path's last segment names.
                            if let Some(seg) = u.path.last() {
                                reach.unresolved_names.insert(seg.clone());
                            }
                        }
                    }
                }
            }
        }
        reach
    }
}

/// Caps re-export recursion by truncating paths once the budget runs
/// out (cheap cycle guard; real trees never get near it).
fn resolve_guard(path: &[String], depth: usize) -> Vec<String> {
    if depth > 32 {
        Vec::new()
    } else {
        path.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src, FileKind::RustLibrary)
    }

    fn graph(specs: &[(&str, &[&str], &str)]) -> (Vec<SourceFile>, CrateGraph) {
        // specs: (path, layout module path, source)
        let files: Vec<SourceFile> =
            specs.iter().map(|(p, _, s)| file(p, s)).collect();
        let trees: HashMap<usize, FileScopes> =
            files.iter().enumerate().map(|(i, f)| (i, parse_scopes(f))).collect();
        let layout: Vec<(usize, Vec<String>)> = specs
            .iter()
            .enumerate()
            .map(|(i, (_, l, _))| (i, l.iter().map(|s| s.to_string()).collect()))
            .collect();
        let g = CrateGraph::build("x", &layout, &trees).expect("root present");
        (files, g)
    }

    #[test]
    fn scopes_capture_items_inline_modules_and_visibility() {
        let f = file(
            "crates/x/src/lib.rs",
            "pub fn a() {}\n\
             pub(crate) fn b() {}\n\
             fn c() {}\n\
             pub mod inner { pub struct S; mod deeper { pub const K: u8 = 0; } }\n\
             mod filemod;\n\
             pub use inner::S;\n",
        );
        let t = parse_scopes(&f);
        assert_eq!(t.scopes.len(), 3, "file scope + two inline scopes");
        let root = &t.scopes[0];
        let names: Vec<(&str, Visibility)> =
            root.items.iter().map(|i| (i.name.as_str(), i.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("a", Visibility::Pub),
                ("b", Visibility::Restricted),
                ("c", Visibility::Private),
            ]
        );
        assert_eq!(root.mod_decls, vec![ModDecl {
            name: "filemod".into(),
            vis: Visibility::Private,
            line: 5,
        }]);
        assert_eq!(root.uses.len(), 1);
        assert_eq!(root.uses[0].binding(), Some("S"));
        let inner = &t.scopes[root.children[0]];
        assert_eq!(inner.name, "inner");
        assert!(inner.vis.is_pub());
        assert_eq!(inner.items[0].name, "S");
        let deeper = &t.scopes[inner.children[0]];
        assert_eq!(deeper.name, "deeper");
        assert_eq!(deeper.vis, Visibility::Private);
        assert_eq!(deeper.items[0].name, "K");
    }

    #[test]
    fn item_spans_cover_bodies_exactly() {
        let f = file(
            "crates/x/src/lib.rs",
            "pub fn long() {\n    body();\n}\n\npub struct After;\n",
        );
        let t = parse_scopes(&f);
        let items = &t.scopes[0].items;
        assert_eq!((items[0].line, items[0].end_line), (1, 3));
        assert_eq!((items[1].line, items[1].end_line), (5, 5));
    }

    #[test]
    fn test_blocks_and_macro_items_are_handled() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[macro_export]\nmacro_rules! exported { () => {}; }\n\
             macro_rules! private_m { () => {}; }\n\
             #[cfg(test)]\nmod tests { pub fn helper() {} }\n",
        );
        let t = parse_scopes(&f);
        let items = &t.scopes[0].items;
        let kinds: Vec<(&str, &str, Visibility)> =
            items.iter().map(|i| (i.kind, i.name.as_str(), i.vis)).collect();
        assert_eq!(
            kinds,
            vec![
                ("macro", "exported", Visibility::Pub),
                ("macro", "private_m", Visibility::Private),
            ]
        );
        assert_eq!(t.scopes.len(), 1, "cfg(test) inline module is not modeled");
    }

    #[test]
    fn graph_links_file_modules_and_marks_orphans() {
        let (_, g) = graph(&[
            ("crates/x/src/lib.rs", &[], "pub mod a;\nmod b;\n"),
            ("crates/x/src/a.rs", &["a"], "pub fn fa() {}\n"),
            ("crates/x/src/b.rs", &["b"], "pub fn fb() {}\n"),
            ("crates/x/src/dead.rs", &["dead"], "pub fn gone() {}\n"),
        ]);
        let a = g.module(&["a".into()]).expect("a");
        assert!(a.vis.is_pub());
        assert!(a.declared);
        let b = g.module(&["b".into()]).expect("b");
        assert_eq!(b.vis, Visibility::Private);
        let dead = g.module(&["dead".into()]).expect("dead");
        assert!(!dead.declared, "unreferenced file is attached as undeclared");
    }

    #[test]
    fn resolve_handles_relative_root_crate_self_and_super() {
        let (_, g) = graph(&[
            (
                "crates/x/src/lib.rs",
                &[],
                "mod a;\nmod b;\npub use crate::a::A;\n",
            ),
            ("crates/x/src/a.rs", &["a"], "pub struct A;\nuse super::b::B;\n"),
            ("crates/x/src/b.rs", &["b"], "pub struct B;\n"),
        ]);
        let root = 0;
        let a_mod = g
            .modules
            .iter()
            .position(|m| m.path == ["a".to_string()])
            .expect("a idx");
        // Root-anchored.
        assert!(matches!(
            g.resolve(root, &["a".into(), "A".into()]),
            Target::Item { .. }
        ));
        // crate:: prefix.
        assert!(matches!(
            g.resolve(a_mod, &["crate".into(), "b".into(), "B".into()]),
            Target::Item { .. }
        ));
        // super:: from a submodule.
        assert!(matches!(
            g.resolve(a_mod, &["super".into(), "b".into(), "B".into()]),
            Target::Item { .. }
        ));
        // Unknown first segments are external.
        assert_eq!(g.resolve(root, &["std".into(), "fmt".into()]), Target::External);
    }

    #[test]
    fn root_reachability_follows_pub_chains_only() {
        let (_, g) = graph(&[
            (
                "crates/x/src/lib.rs",
                &[],
                "pub mod open;\nmod hidden;\npub use hidden::Rescued;\n",
            ),
            ("crates/x/src/open.rs", &["open"], "pub fn shown() {}\nfn priv_fn() {}\n"),
            (
                "crates/x/src/hidden.rs",
                &["hidden"],
                "pub struct Rescued;\npub struct Lost;\n",
            ),
        ]);
        let reach = g.root_reachable();
        let find = |name: &str| {
            g.modules
                .iter()
                .enumerate()
                .find_map(|(mi, m)| {
                    m.items
                        .iter()
                        .position(|i| i.name == name)
                        .map(|ii| reach.items[mi][ii])
                })
                .expect("item present")
        };
        assert!(find("shown"), "pub item in pub module");
        assert!(!find("priv_fn"), "private item never reachable");
        assert!(find("Rescued"), "pub use rescues a single item");
        assert!(!find("Lost"), "sibling in the private module stays dead");
    }

    #[test]
    fn glob_reexports_expand_item_by_item() {
        let (_, g) = graph(&[
            ("crates/x/src/lib.rs", &[], "mod grp;\npub use grp::prelude::*;\n"),
            (
                "crates/x/src/grp.rs",
                &["grp"],
                "mod detail;\npub use detail as prelude;\n",
            ),
            (
                "crates/x/src/grp/detail.rs",
                &["grp", "detail"],
                "pub fn via_glob() {}\nfn not_exported() {}\n",
            ),
        ]);
        let reach = g.root_reachable();
        let detail = g
            .modules
            .iter()
            .position(|m| m.path == ["grp".to_string(), "detail".to_string()])
            .expect("detail idx");
        assert!(reach.module_ns[detail], "glob over an aliased module reaches it");
        let via = g.modules[detail].items.iter().position(|i| i.name == "via_glob").unwrap();
        assert!(reach.items[detail][via]);
    }

    #[test]
    fn reexport_chains_across_modules_resolve() {
        // lib -> mid (private) whose pub use pulls from leaf (private):
        // only the chained name is reachable.
        let (_, g) = graph(&[
            ("crates/x/src/lib.rs", &[], "mod mid;\npub use mid::Deep;\n"),
            ("crates/x/src/mid.rs", &["mid"], "mod leaf;\npub use leaf::Deep;\n"),
            (
                "crates/x/src/mid/leaf.rs",
                &["mid", "leaf"],
                "pub struct Deep;\npub struct Stranded;\n",
            ),
        ]);
        let reach = g.root_reachable();
        let leaf = g
            .modules
            .iter()
            .position(|m| m.path == ["mid".to_string(), "leaf".to_string()])
            .expect("leaf idx");
        let deep = g.modules[leaf].items.iter().position(|i| i.name == "Deep").unwrap();
        let stranded =
            g.modules[leaf].items.iter().position(|i| i.name == "Stranded").unwrap();
        assert!(reach.items[leaf][deep], "two-hop pub use chain reaches the item");
        assert!(
            !reach.items[leaf][stranded],
            "the dead sibling of a chained re-export is caught"
        );
    }

    #[test]
    fn unresolved_pub_use_degrades_to_name_matching() {
        let (_, g) = graph(&[(
            "crates/x/src/lib.rs",
            &[],
            "pub use mystery_macro_output::Thing;\npub use std::fmt::Debug;\n",
        )]);
        let reach = g.root_reachable();
        assert!(
            reach.unresolved_names.contains("Thing"),
            "external-looking leaf names are tracked for the conservative fallback"
        );
        assert!(
            !reach.unresolved_names.contains("Debug"),
            "std paths are known-external and need no fallback"
        );
    }

    #[test]
    fn facts_index_fn_signatures_and_struct_fields() {
        let f = file(
            "crates/x/src/lib.rs",
            "pub fn dist(a: f64, b: &f64, n: usize) -> f64 { body() }\n\
             fn helper(v: Vec<f64>) -> Vec<f64> { v }\n\
             pub struct Reading { pub value: f64, label: String, weight: f32 }\n\
             pub struct Unit;\n",
        );
        let facts = parse_facts(&f);
        assert_eq!(facts.fns.len(), 2);
        let dist = &facts.fns[0];
        assert_eq!(dist.name, "dist");
        assert_eq!(
            dist.params,
            vec![
                Param { name: "a".into(), ty: TypeAnn::Float("f64") },
                Param { name: "b".into(), ty: TypeAnn::Float("f64") },
                Param { name: "n".into(), ty: TypeAnn::Named("usize".into()) },
            ]
        );
        assert_eq!(dist.ret, TypeAnn::Float("f64"));
        assert!(dist.body.is_some());
        let helper = &facts.fns[1];
        assert_eq!(helper.ret, TypeAnn::Named("Vec".into()), "generics strip to the head");
        assert_eq!(facts.structs.len(), 2);
        assert_eq!(
            facts.structs[0].float_fields,
            vec![("value".to_string(), "f64"), ("weight".to_string(), "f32")]
        );
        assert!(facts.structs[1].float_fields.is_empty());
    }

    #[test]
    fn facts_cover_methods_and_nested_fns() {
        let f = file(
            "crates/x/src/lib.rs",
            "impl T {\n    pub fn mean(&self) -> f64 { 0.0 }\n}\n\
             fn outer() {\n    fn inner(q: f32) -> f32 { q }\n}\n",
        );
        let facts = parse_facts(&f);
        let names: Vec<&str> = facts.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["mean", "outer", "inner"], "source order, any depth");
        assert_eq!(facts.fns[0].ret, TypeAnn::Float("f64"));
        assert_eq!(facts.fns[2].params[0].ty, TypeAnn::Float("f32"));
    }

    #[test]
    fn facts_record_the_impl_self_type() {
        let f = file(
            "crates/x/src/lib.rs",
            "impl WorkerPool {\n    pub fn try_submit(&self) -> bool { true }\n}\n\
             impl fmt::Display for PoolError {\n    fn fmt(&self) -> Result { ok() }\n}\n\
             impl<T> Shard<T> {\n    fn get(&self) -> u32 { 0 }\n}\n\
             fn free() {}\n",
        );
        let facts = parse_facts(&f);
        let tys: Vec<Option<&str>> =
            facts.fns.iter().map(|f| f.self_ty.as_deref()).collect();
        assert_eq!(
            tys,
            vec![Some("WorkerPool"), Some("PoolError"), Some("Shard"), None],
            "inherent and trait impls both record the implementing type"
        );
    }

    #[test]
    fn smart_pointers_are_deref_transparent_in_annotations() {
        let f = file(
            "crates/x/src/lib.rs",
            "fn run(ctx: &Arc<ServerContext>, pool: Rc<Vec<u8>>, raw: Vec<f64>) {}\n\
             pub struct Holder { ctx: Arc<ServerContext>, cache: ResponseCache }\n",
        );
        let facts = parse_facts(&f);
        assert_eq!(
            facts.fns[0].params[0].ty,
            TypeAnn::Named("ServerContext".into()),
            "Arc<T> flows through to T"
        );
        assert_eq!(facts.fns[0].params[1].ty, TypeAnn::Named("Vec".into()));
        assert_eq!(facts.fns[0].params[2].ty, TypeAnn::Named("Vec".into()));
        assert_eq!(
            facts.structs[0].named_fields,
            vec![
                ("ctx".to_string(), "ServerContext".to_string()),
                ("cache".to_string(), "ResponseCache".to_string()),
            ]
        );
    }
}
