/root/repo/target/release/deps/exp_fig2_models-1194518f3e35a6f1.d: crates/bench/src/bin/exp_fig2_models.rs

/root/repo/target/release/deps/exp_fig2_models-1194518f3e35a6f1: crates/bench/src/bin/exp_fig2_models.rs

crates/bench/src/bin/exp_fig2_models.rs:
