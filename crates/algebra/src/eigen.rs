//! Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).
//!
//! This is the engine behind Golub–Welsch Gauss quadrature: the nodes of an
//! `n`-point Gauss rule are the eigenvalues of the Jacobi matrix built from
//! the orthogonal-polynomial recurrence coefficients, and the weights follow
//! from the first components of the eigenvectors.

use crate::error::{AlgebraError, Result};

/// Eigendecomposition of a symmetric tridiagonal matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// First component of each (normalized) eigenvector, aligned with
    /// `values`. This is all Golub–Welsch needs.
    pub first_components: Vec<f64>,
}

/// Computes eigenvalues and eigenvector first components of the symmetric
/// tridiagonal matrix with diagonal `diag` and off-diagonal `offdiag`
/// (`offdiag.len() == diag.len() - 1`).
///
/// Implicit QL algorithm with Wilkinson shifts, rotating a row vector that
/// starts as `e_1` to accumulate the eigenvector first components.
///
/// # Errors
///
/// Returns [`AlgebraError::DimensionMismatch`] for inconsistent lengths and
/// [`AlgebraError::ConvergenceFailure`] if an eigenvalue fails to converge
/// in 50 iterations (practically unreachable for quadrature-sized inputs).
///
/// # Examples
///
/// ```
/// use sysunc_algebra::eigen::tridiagonal_eigen;
/// // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
/// let e = tridiagonal_eigen(&[2.0, 2.0], &[1.0])?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), sysunc_algebra::AlgebraError>(())
/// ```
pub fn tridiagonal_eigen(diag: &[f64], offdiag: &[f64]) -> Result<TridiagonalEigen> {
    let n = diag.len();
    if n == 0 {
        return Err(AlgebraError::DimensionMismatch("empty diagonal".into()));
    }
    if offdiag.len() + 1 != n {
        return Err(AlgebraError::DimensionMismatch(format!(
            "offdiag must have length {}, got {}",
            n - 1,
            offdiag.len()
        )));
    }
    let mut d = diag.to_vec();
    // e is padded so e[n-1] = 0.
    let mut e = offdiag.to_vec();
    e.push(0.0);
    // z accumulates the first row of the rotation product: eigenvector first
    // components.
    let mut z = vec![0.0; n];
    z[0] = 1.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(AlgebraError::ConvergenceFailure("tridiagonal QL".into()));
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 { // tidy: allow(float-eq)
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate rotation into the first-component vector.
                f = z[i + 1];
                z[i + 1] = s * z[i] + c * f;
                z[i] = c * z[i] - s * f;
            }
            if r == 0.0 && m > l + 1 { // tidy: allow(float-eq)
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, carrying the first components along.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("eigenvalues are finite")); // tidy: allow(panic)
    Ok(TridiagonalEigen {
        values: idx.iter().map(|&i| d[i]).collect(),
        first_components: idx.iter().map(|&i| z[i]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one() {
        let e = tridiagonal_eigen(&[5.0], &[]).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert!((e.first_components[0].abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn two_by_two_known() {
        let e = tridiagonal_eigen(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        // Eigenvectors are (1, ∓1)/√2, so first components ±1/√2.
        for fc in &e.first_components {
            assert!((fc.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let e = tridiagonal_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-14);
        assert!((e.values[1] - 2.0).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn toeplitz_tridiagonal_analytic_spectrum() {
        // diag = 2, offdiag = -1 on n=10: eigenvalues 2 - 2 cos(kπ/(n+1)).
        let n = 10;
        let e = tridiagonal_eigen(&vec![2.0; n], &vec![-1.0; n - 1]).unwrap();
        for (k, &v) in e.values.iter().enumerate() {
            let expect =
                2.0 - 2.0 * (std::f64::consts::PI * (k + 1) as f64 / (n as f64 + 1.0)).cos();
            assert!((v - expect).abs() < 1e-10, "k={k}: {v} vs {expect}");
        }
    }

    #[test]
    fn first_components_have_unit_norm() {
        let e = tridiagonal_eigen(&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.6, 0.7]).unwrap();
        // The z-vector is a rotation image of e1, so Σ z_i² = 1.
        let norm2: f64 = e.first_components.iter().map(|z| z * z).sum();
        assert!((norm2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(tridiagonal_eigen(&[], &[]).is_err());
        assert!(tridiagonal_eigen(&[1.0, 2.0], &[]).is_err());
    }

    #[test]
    fn trace_is_preserved() {
        let diag = [1.5, -2.0, 0.7, 3.3, 0.1];
        let off = [0.4, 1.2, -0.3, 0.9];
        let e = tridiagonal_eigen(&diag, &off).unwrap();
        let trace: f64 = diag.iter().sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }
}
