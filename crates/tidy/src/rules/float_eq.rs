//! Rule `float-eq`: library code must not compare float-typed
//! expressions with `==` or `!=`. Exact float equality silently encodes
//! a zero-tolerance assumption; numerical code should compare against
//! an explicit tolerance (or use `total_cmp` for ordering).
//!
//! Detection is token-based: a comparison is flagged when either
//! adjacent operand *is* float-shaped — a float literal token (`0.5`,
//! `1e-3`, `1f64`) or an `f64::`/`f32::` associated constant — or when
//! it is a bare identifier that the enclosing function bound with an
//! explicit float annotation (`let x: f64 = …`). The latter is the
//! only type propagation the lint does: annotations are declared facts,
//! so `a == b` on two annotated float locals is as certain a defect as
//! `a == 0.5`. Anything needing real inference (field types, returns,
//! unannotated lets) stays out of scope for a lexical lint. A `==`
//! inside a string literal or a comment is not a comparison and cannot
//! fire. Intentional exact comparisons (e.g. checking a CDF saturates
//! at exactly 0 or 1) take `// tidy: allow(float-eq)`.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct FloatEq;

/// True when the operand whose *last* significant token sits at `i`
/// (scanning left from the operator) is float-shaped.
fn left_is_float(file: &SourceFile, i: usize) -> bool {
    let sig: Vec<&Token> =
        file.tokens()[..i].iter().rev().filter(|t| !t.is_comment()).take(3).collect();
    match sig.first() {
        Some(t) if t.kind == TokenKind::Float => true,
        // `f64::CONST` / `f32::CONST`: ident preceded by `::` preceded
        // by the float type name.
        Some(t) if t.kind == TokenKind::Ident => matches!(
            (sig.get(1), sig.get(2)),
            (Some(colons), Some(ty))
                if colons.kind == TokenKind::Punct
                    && file.text(colons) == "::"
                    && ty.kind == TokenKind::Ident
                    && matches!(file.text(ty), "f64" | "f32")
        ),
        _ => false,
    }
}

/// True when the operand starting at token index `i` (scanning right
/// from the operator) is float-shaped. A leading unary `-` is skipped.
fn right_is_float(file: &SourceFile, i: usize) -> bool {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let Some(mut first) = sig.next() else { return false };
    if first.kind == TokenKind::Punct && file.text(first) == "-" {
        match sig.next() {
            Some(t) => first = t,
            None => return false,
        }
    }
    match first.kind {
        TokenKind::Float => true,
        TokenKind::Ident if matches!(file.text(first), "f64" | "f32") => sig
            .next()
            .map(|t| t.kind == TokenKind::Punct && file.text(t) == "::")
            .unwrap_or(false),
        _ => false,
    }
}

/// The bare identifier ending the left operand at `i`, if the operand
/// is exactly one identifier (not a path segment, field or call).
fn left_bare_ident<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let mut sig = file.tokens()[..i].iter().rev().filter(|t| !t.is_comment());
    let last = sig.next()?;
    if last.kind != TokenKind::Ident {
        return None;
    }
    if let Some(prev) = sig.next() {
        if prev.kind == TokenKind::Punct && matches!(file.text(prev), "." | "::") {
            return None;
        }
    }
    Some(file.text(last))
}

/// The bare identifier opening the right operand at `i`, if the
/// operand is exactly one identifier (optionally negated; not a path
/// head, receiver, call or index).
fn right_bare_ident<'f>(file: &'f SourceFile, i: usize) -> Option<&'f str> {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let mut first = sig.next()?;
    if first.kind == TokenKind::Punct && file.text(first) == "-" {
        first = sig.next()?;
    }
    if first.kind != TokenKind::Ident {
        return None;
    }
    if let Some(next) = sig.next() {
        if next.kind == TokenKind::Punct
            && matches!(file.text(next), "." | "::" | "(" | "[")
        {
            return None;
        }
    }
    Some(file.text(first))
}

/// One function body: its `{`/`}` token extent and the locals the
/// function binds with an explicit `let name: f32|f64` annotation.
struct FnBody {
    open: usize,
    close: usize,
    float_lets: HashMap<String, &'static str>,
}

/// Advances past a balanced punctuation pair opening at `i`, returning
/// the index of the matching closer (or the end of the file).
fn matching_close(file: &SourceFile, i: usize, open: &str, close: &str) -> usize {
    let tokens = file.tokens();
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            let text = file.text(&tokens[j]);
            if text == open {
                depth += 1;
            } else if text == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    j
}

/// Collects `let [mut] name: f32|f64` bindings (with `=` or `;` right
/// after the type, so `Vec<f64>` and friends don't qualify) between
/// token indices `open` and `close`.
fn float_lets(file: &SourceFile, open: usize, close: usize) -> HashMap<String, &'static str> {
    let sig: Vec<usize> = (open..close)
        .filter(|&i| !file.tokens()[i].is_comment())
        .collect();
    let text = |slot: usize| file.text(&file.tokens()[sig[slot]]);
    let kind = |slot: usize| file.tokens()[sig[slot]].kind;
    let mut found = HashMap::new();
    for s in 0..sig.len() {
        if kind(s) != TokenKind::Ident || text(s) != "let" {
            continue;
        }
        let mut n = s + 1;
        if n < sig.len() && kind(n) == TokenKind::Ident && text(n) == "mut" {
            n += 1;
        }
        if n + 3 >= sig.len() || kind(n) != TokenKind::Ident || text(n + 1) != ":" {
            continue;
        }
        let name = text(n);
        let ty = match (kind(n + 2) == TokenKind::Ident).then(|| text(n + 2)) {
            Some("f64") => "f64",
            Some("f32") => "f32",
            _ => continue,
        };
        if matches!(text(n + 3), "=" | ";") {
            found.insert(name.to_string(), ty);
        }
    }
    found
}

/// Finds every `fn` body in the file (including nested ones) with its
/// annotated float locals. Bodies are returned in source order, so the
/// innermost body containing an index is the *last* match.
fn function_bodies(file: &SourceFile) -> Vec<FnBody> {
    let tokens = file.tokens();
    let mut bodies = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || file.text(t) != "fn" {
            i += 1;
            continue;
        }
        // Parameter list: first `(` after the name/generics, balanced.
        let mut j = i + 1;
        while j < tokens.len()
            && !(tokens[j].kind == TokenKind::Punct && file.text(&tokens[j]) == "(")
        {
            j += 1;
        }
        let params_end = matching_close(file, j, "(", ")");
        // Body: the first `{` before any `;` (a bare `;` means a
        // bodiless trait/extern signature).
        let mut k = params_end + 1;
        let mut open = None;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                match file.text(&tokens[k]) {
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    ";" => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k.max(i + 1);
            continue;
        };
        let close = matching_close(file, open, "{", "}");
        bodies.push(FnBody { open, close, float_lets: float_lets(file, open, close) });
        // Keep scanning from just inside the body so nested functions
        // get their own (innermost) entry.
        i = open + 1;
    }
    bodies
}

impl Lint for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn explain(&self) -> &'static str {
        "Float-typed expressions must not be compared with `==` or `!=` in \
         library code: exact float equality silently encodes a zero-tolerance \
         assumption that numerical error will violate. Compare against an \
         explicit tolerance, or use `total_cmp` for ordering. The check fires \
         when either operand is a float literal, an `f64::`/`f32::` constant, \
         or a local the enclosing function bound with an explicit `let x: \
         f32|f64` annotation; intentional exact comparisons (saturation \
         checks, IEEE special cases) take `// tidy: allow(float-eq)` with a \
         justification."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let bodies = function_bodies(file);
        // Innermost body containing token `i` — the last in source
        // order, since nested bodies are pushed after their enclosers.
        let innermost = |i: usize| {
            bodies.iter().rev().find(|b| b.open < i && i < b.close)
        };
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Punct || file.in_test_block(t.line) {
                continue;
            }
            let op = file.text(t);
            if op != "==" && op != "!=" {
                continue;
            }
            if left_is_float(file, i) || right_is_float(file, i + 1) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "float compared with `{op}`; compare against a tolerance instead"
                    ),
                });
                continue;
            }
            // Type propagation from annotated lets: `a == b` where
            // either side is a bare float-annotated local.
            let Some(body) = innermost(i) else { continue };
            let local = left_bare_ident(file, i)
                .and_then(|name| body.float_lets.get_key_value(name))
                .or_else(|| {
                    right_bare_ident(file, i + 1)
                        .and_then(|name| body.float_lets.get_key_value(name))
                });
            if let Some((name, ty)) = local {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "`{name}` is bound as `let {name}: {ty}` but compared with \
                         `{op}`; compare against a tolerance instead"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        FloatEq.check(&file, &mut out);
        out
    }

    #[test]
    fn literal_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.5 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.0 != x }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == f64::INFINITY }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == 1f64 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == -0.5 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == 1e-3 }").len(), 1);
    }

    #[test]
    fn integer_and_identifier_comparisons_pass() {
        assert!(run("fn f(x: usize) -> bool { x == 5 }").is_empty());
        assert!(run("fn f(a: T, b: T) -> bool { a == b }").is_empty());
        assert!(run("fn f(s: &str) -> bool { s == \"0.5\" }").is_empty());
    }

    #[test]
    fn strings_and_doc_comments_mentioning_eq_pass() {
        // Former textual false-positive classes: `==` in prose or data.
        assert!(run("/// Checks whether `x == 0.5` holds approximately.\nfn f() {}\n")
            .is_empty());
        assert!(run("const RULE: &str = \"never write x == 0.5\";\n").is_empty());
        assert!(run("fn f() { /* x == 1.0 would be wrong */ }\n").is_empty());
    }

    #[test]
    fn tests_and_comments_are_exempt() {
        let src = "\
// exact: x == 0.5 is fine to mention
#[cfg(test)]
mod tests {
    fn t(x: f64) -> bool { x == 0.5 }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn multiline_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) -> bool {\n    x\n        == 0.5\n}\n").len(), 1);
    }

    #[test]
    fn annotated_float_locals_fire_on_bare_comparison() {
        let src = "\
fn f() -> bool {
    let a: f64 = compute();
    let b: f64 = other();
    a == b
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("let a: f64"), "{}", out[0].message);

        let negated = "fn f() -> bool {\n    let mut t: f32 = go();\n    x != -t\n}\n";
        assert_eq!(run(negated).len(), 1);
        // Uninitialized-then-assigned bindings still carry the type.
        let deferred = "fn f() -> bool {\n    let z: f64;\n    z = g();\n    z == w\n}\n";
        assert_eq!(run(deferred).len(), 1);
    }

    #[test]
    fn annotation_propagation_needs_a_bare_float_scalar_local() {
        // Unannotated let: no inference, no finding.
        assert!(run("fn f() -> bool {\n    let a = g();\n    a == b\n}\n").is_empty());
        // Annotated, but not a scalar float type.
        assert!(run(
            "fn f() -> bool {\n    let v: Vec<f64> = g();\n    v == w\n}\n"
        )
        .is_empty());
        // Not a bare identifier: fields, paths, calls and indexing.
        let src = "\
fn f() -> bool {
    let a: f64 = g();
    s.a == t.a && E::a == x && a(1) == y && a[0] == z
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn annotations_do_not_leak_across_function_boundaries() {
        let src = "\
fn first() {
    let a: f64 = g();
}
fn second(a: T, b: T) -> bool {
    a == b
}
";
        assert!(run(src).is_empty(), "`a` is float only inside `first`");

        // A nested fn has its own scope; the outer binding is not
        // visible inside it (nested fns cannot capture locals).
        let nested = "\
fn outer() -> bool {
    let a: f64 = g();
    fn inner(a: T, b: T) -> bool { a == b }
    a == done()
}
";
        let out = run(nested);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4, "only the outer comparison fires");
    }

    #[test]
    fn literal_and_annotation_findings_do_not_double_report() {
        let src = "fn f() -> bool {\n    let a: f64 = g();\n    a == 0.5\n}\n";
        assert_eq!(run(src).len(), 1, "one finding per comparison");
    }
}
