//! E9 — Sec. IV removal at design time: uncertainty propagation method
//! comparison (crude MC, LHS, Sobol' QMC, sparse-grid and tensor PCE) on
//! two canonical benchmarks: the smooth Ishigami function and a
//! discontinuous step function where spectral methods lose their edge.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::pce::{ChaosExpansion, PceInput};
use sysunc::prob::dist::{Continuous, Uniform};
use sysunc::sampling::{propagate, Design, LatinHypercubeDesign, RandomDesign, SobolDesign};
use sysunc_bench::{header, section};

fn ishigami(x: &[f64]) -> f64 {
    x[0].sin() + 7.0 * x[1].sin().powi(2) + 0.1 * x[2].powi(4) * x[0].sin()
}

/// Discontinuous benchmark: indicator of a corner region.
fn step(x: &[f64]) -> f64 {
    if x[0] > 0.5 && x[1] > 0.0 {
        1.0
    } else {
        0.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E9", "Sec. IV — propagation method comparison (accuracy per evaluation)");
    let pi = std::f64::consts::PI;

    section("smooth model: Ishigami over U(-pi, pi)^3");
    let mean_true = 3.5;
    let var_true = {
        let v1 = 0.5 * (1.0 + 0.1 * pi.powi(4) / 5.0).powi(2);
        let v2 = 49.0 / 8.0;
        let v13 = 0.01 * pi.powi(8) * (1.0 / 18.0 - 1.0 / 50.0);
        v1 + v2 + v13
    };
    let u = Uniform::new(-pi, pi)?;
    let inputs: Vec<&dyn Continuous> = vec![&u, &u, &u];
    println!("  {:<22} {:>8} {:>12} {:>12}", "method", "evals", "|mean err|", "|var err|");
    // Average sampling methods over replicates for fair comparison.
    let designs: Vec<(&str, Box<dyn Design>)> = vec![
        ("monte-carlo", Box::new(RandomDesign)),
        ("latin-hypercube", Box::new(LatinHypercubeDesign)),
        ("sobol-qmc", Box::new(SobolDesign::default())),
    ];
    for n in [128usize, 512, 2_048, 8_192] {
        for (name, design) in &designs {
            let reps = 8;
            let mut mean_err = 0.0;
            let mut var_err = 0.0;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(100 + rep);
                let res = propagate(&inputs, design.as_ref(), &ishigami, n, &mut rng)?;
                mean_err += (res.mean() - mean_true).abs() / reps as f64;
                var_err += (res.variance() - var_true).abs() / reps as f64;
            }
            println!("  {name:<22} {n:>8} {mean_err:>12.5} {var_err:>12.5}");
        }
    }
    for degree in [4usize, 6, 8, 10] {
        let pce = ChaosExpansion::fit_projection(
            &[PceInput::Uniform { a: -pi, b: pi }; 3],
            degree,
            ishigami,
        )?;
        println!(
            "  {:<22} {:>8} {:>12.5} {:>12.5}",
            format!("pce-tensor-deg{degree}"),
            pce.evaluations(),
            (pce.mean() - mean_true).abs(),
            (pce.variance() - var_true).abs()
        );
    }
    // Levels chosen so quadrature aliasing stays below basis truncation.
    for (degree, level) in [(4usize, 8usize), (6, 9), (8, 12)] {
        let pce = ChaosExpansion::fit_sparse_projection(
            &[PceInput::Uniform { a: -pi, b: pi }; 3],
            degree,
            level,
            ishigami,
        )?;
        println!(
            "  {:<22} {:>8} {:>12.5} {:>12.5}",
            format!("pce-sparse-l{level}"),
            pce.evaluations(),
            (pce.mean() - mean_true).abs(),
            (pce.variance() - var_true).abs()
        );
    }

    section("Sobol' sensitivity indices from the degree-10 expansion");
    let pce =
        ChaosExpansion::fit_projection(&[PceInput::Uniform { a: -pi, b: pi }; 3], 10, ishigami)?;
    let v = var_true;
    let s1_true = 0.5 * (1.0 + 0.1 * pi.powi(4) / 5.0).powi(2) / v;
    let s2_true = (49.0 / 8.0) / v;
    let st3_true = 0.01 * pi.powi(8) * (1.0 / 18.0 - 1.0 / 50.0) / v;
    println!("  {:>6} {:>10} {:>10}", "index", "pce", "analytic");
    println!("  {:>6} {:>10.4} {:>10.4}", "S1", pce.sobol_first(0), s1_true);
    println!("  {:>6} {:>10.4} {:>10.4}", "S2", pce.sobol_first(1), s2_true);
    println!("  {:>6} {:>10.4} {:>10.4}", "S3", pce.sobol_first(2), 0.0);
    println!("  {:>6} {:>10.4} {:>10.4}", "ST3", pce.sobol_total(2), st3_true);

    section("non-smooth model: corner indicator over U(-1, 1)^2 (crossover)");
    // True mean: P(x > 0.5) * P(y > 0) = 0.25 * 0.5.
    let truth = 0.125;
    let u2 = Uniform::new(-1.0, 1.0)?;
    let inputs2: Vec<&dyn Continuous> = vec![&u2, &u2];
    println!("  {:<22} {:>8} {:>12}", "method", "evals", "|mean err|");
    for n in [512usize, 4_096] {
        for (name, design) in &designs {
            let reps = 8;
            let mut err = 0.0;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(200 + rep);
                let res = propagate(&inputs2, design.as_ref(), &step, n, &mut rng)?;
                err += (res.mean() - truth).abs() / reps as f64;
            }
            println!("  {name:<22} {n:>8} {err:>12.5}");
        }
    }
    for degree in [6usize, 14] {
        let pce = ChaosExpansion::fit_projection(
            &[PceInput::Uniform { a: -1.0, b: 1.0 }; 2],
            degree,
            step,
        )?;
        println!(
            "  {:<22} {:>8} {:>12.5}",
            format!("pce-tensor-deg{degree}"),
            pce.evaluations(),
            (pce.mean() - truth).abs()
        );
    }
    println!("\n  Expected shape: on the smooth model PCE >> QMC > LHS > MC per");
    println!("  evaluation (spectral convergence); on the discontinuous model the");
    println!("  spectral advantage collapses (Gibbs) while QMC/MC keep their rates");
    println!("  — the crossover that motivates method *selection* as part of");
    println!("  uncertainty removal.");
    Ok(())
}
