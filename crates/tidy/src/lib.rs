//! # sysunc-tidy — the workspace's static-analysis gate
//!
//! A dependency-free lint driver that walks the workspace and enforces
//! the coding invariants the `sysunc` crates rely on. Rules operate on
//! a real token stream from the in-tree Rust [`lexer`] (comments,
//! string literals and numeric literals are tokens, not text), so the
//! textual false-positive classes of a line-regex gate — a `.unwrap()`
//! quoted in a string, a `==` mentioned in a doc comment, braces inside
//! literals — cannot fire. On top of the token stream, a semantic
//! [`resolve`] layer parses each crate's real module tree (inline and
//! file modules), builds a per-module item graph with `use`/`pub use`
//! edges (aliases, `crate::`/`super::` prefixes, globs), and indexes
//! per-function type annotations — so cross-file rules resolve paths
//! against the actual tree instead of matching names. The [`symbols`]
//! pass assembles those per-crate graphs into a workspace table;
//! `sysunc-tidy --dump-modules` renders the resolved trees for
//! inspection. A [`cfg`] layer builds per-function control-flow
//! graphs from the token stream and runs gen/kill dataflow over them;
//! the [`calls`] layer resolves call edges (free fns, `Type::` paths,
//! method calls through declared receiver types) so workspace rules
//! can propagate CFG facts across functions. `sysunc-tidy --dump-cfg`
//! renders the block graphs. Every finding records which layer
//! produced it in its `resolution` field (`token`, `module-graph`,
//! `type-flow`, or `cfg`) — the schema is `sysunc-tidy/3`.
//!
//! In the paper's vocabulary this is an uncertainty-**prevention**
//! means applied to our own toolchain: the rules remove whole classes
//! of epistemic uncertainty about the code base (does it build offline?
//! can library code abort the process? are probability contracts
//! stated? is the public API actually reachable?) before they can
//! occur, rather than detecting them later. Moving from line heuristics
//! to tokens removes the gate's *own* epistemic uncertainty about its
//! verdicts.
//!
//! ## Rules
//!
//! | rule              | invariant                                                                |
//! |-------------------|--------------------------------------------------------------------------|
//! | `manifest`        | every Cargo.toml dependency is a path (or workspace) dependency          |
//! | `panic`           | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code   |
//! | `float-eq`        | no `==`/`!=` where either operand's type *flows* from a float annotation — a parameter, a called fn's return type, an explicit or inferred `let`, a struct field — resolved workspace-wide |
//! | `prob-contract`   | public probability-named fns state a range contract                      |
//! | `error-impl`      | every `error.rs` enum implements `Display` and `Error`                   |
//! | `doc`             | public items in each crate's `lib.rs` carry doc comments                 |
//! | `suite-error`     | integration-suite code uses `sysunc::Error`, not per-crate enums         |
//! | `seed-discipline` | library code never builds an RNG from a hardcoded seed                   |
//! | `lock-hygiene`    | no `.lock().unwrap()` outside tests, and no guard *live on any CFG path* across a known-blocking call (`sleep`, socket I/O, `recv`, `join`) — guards dropped, moved, or returned before the call don't count |
//! | `lock-order-cycle`| per-function lock-acquisition orderings, propagated through resolved call edges, form no cycle within a crate |
//! | `panic-path`      | no `unwrap`/`expect`/`panic!`-family macro/element indexing reachable from the serve crate's request-handling entry points, walking real call edges |
//! | `unused-allow`    | every `tidy: allow(...)` comment suppresses a live finding               |
//! | `pub-reexport`    | every public item is root-reachable through a real `pub` chain — module tree resolved, glob re-exports expanded item-by-item — and every substrate crate surfaces in the facade |
//!
//! A violating line can be acknowledged explicitly with the escape
//! hatch comment `// tidy: allow(<rule>)` on the same or preceding
//! line; allowed violations are counted and reported, never silent —
//! and an allow comment that stops suppressing anything is itself a
//! violation (`unused-allow`).
//!
//! Checking is parallel across files on [`std::thread::scope`]; the
//! report is deterministic (byte-identical to a serial run). See
//! [`report`] for the `--json` findings schema and the `tidy.baseline`
//! ratchet format.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod calls;
pub mod cfg;
pub mod cursor;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod symbols;
pub mod walk;

use cursor::Cursor;
use lexer::{Token, TokenKind};

/// What kind of file a [`SourceFile`] is, which decides the lints that
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A `Cargo.toml` manifest.
    Manifest,
    /// Rust code shipped in a library (`src/`, excluding `src/bin/`).
    RustLibrary,
    /// Rust code that only runs under the test/bench/example harnesses.
    RustTest,
}

/// One `tidy: allow(<rule>)` acknowledgement comment, precomputed at
/// file load so suppression checks never rescan text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
}

/// One file of the workspace, read into memory with its classification,
/// token stream, and per-line derived facts (all computed once).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Full file contents.
    pub content: String,
    /// Classification deciding which lints apply.
    pub kind: FileKind,
    tokens: Vec<Token>,
    test_lines: Vec<bool>,
    allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Builds an in-memory file, lexing Rust sources eagerly (manifests
    /// get an empty token stream).
    pub fn new(path: impl Into<PathBuf>, content: impl Into<String>, kind: FileKind) -> Self {
        let content = content.into();
        let tokens = match kind {
            FileKind::Manifest => Vec::new(),
            _ => lexer::lex(&content),
        };
        let test_lines = test_lines_from(&content, &tokens);
        let allows = allow_markers(&content, &tokens);
        Self { path: path.into(), content, kind, tokens, test_lines, allows }
    }

    /// The file's lines, for line-oriented lint rules (manifests).
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.content.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// The lexed token stream (empty for manifests).
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// A [`Cursor`] at the start of the token stream.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor::new(&self.content, &self.tokens)
    }

    /// The text of one of this file's tokens.
    pub fn text(&self, token: &Token) -> &str {
        token.text(&self.content)
    }

    /// Per-line flags marking `#[cfg(test)]` item extents (1-based line
    /// `n` is `test_lines()[n - 1]`). Exact: brace matching runs over
    /// tokens, so braces in strings or comments cannot fool it.
    pub fn test_lines(&self) -> &[bool] {
        &self.test_lines
    }

    /// True when 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn in_test_block(&self, line: usize) -> bool {
        self.test_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// The file's `tidy: allow` acknowledgement comments.
    pub fn allows(&self) -> &[AllowMarker] {
        &self.allows
    }
}

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (a [`Lint::name`]).
    pub rule: &'static str,
    /// Human-readable description of the specific violation.
    pub message: String,
    /// Which analysis layer produced the finding: `"token"` for plain
    /// token-stream scans, `"module-graph"` for findings resolved over
    /// the [`resolve::CrateGraph`] module tree, `"type-flow"` for
    /// findings derived from the type-annotation dataflow, `"cfg"` for
    /// findings from control-flow-graph dataflow (lock liveness,
    /// lock-order cycles, panic reachability over call edges).
    pub resolution: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// A single invariant checked over one file at a time.
pub trait Lint: Sync {
    /// Short rule identifier used in reports and `allow(...)` comments.
    fn name(&self) -> &'static str;

    /// A paragraph explaining the invariant and its rationale, shown by
    /// `sysunc-tidy --explain <rule>`.
    fn explain(&self) -> &'static str;

    /// Whether the rule applies to files of this kind at all.
    fn applies(&self, kind: FileKind) -> bool;

    /// Checks one file, appending any violations found.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// An invariant checked over the whole workspace at once, with the
/// [`symbols::Workspace`] table in hand. Workspace rules run after the
/// per-file rules, single-threaded.
pub trait WorkspaceLint {
    /// Short rule identifier used in reports and `allow(...)` comments.
    fn name(&self) -> &'static str;

    /// A paragraph explaining the invariant, for `--explain`.
    fn explain(&self) -> &'static str;

    /// Checks the workspace, appending any violations found.
    fn check(&self, ws: &symbols::Workspace<'_>, out: &mut Vec<Violation>);
}

/// The outcome of a full workspace run: surviving violations plus the
/// ones acknowledged via `// tidy: allow(<rule>)` or ratcheted in the
/// baseline file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Report {
    /// Violations that stand (nonzero exit).
    pub violations: Vec<Violation>,
    /// Violations suppressed by an explicit allow comment.
    pub allowed: Vec<Violation>,
    /// Violations suppressed by the baseline ratchet file.
    pub baselined: Vec<Violation>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes (no unacknowledged violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Returns true when `line_no` (1-based) in `file` carries an
/// `allow(<rule>)` acknowledgement on the same or the preceding line.
///
/// Markers are precomputed per file, so this is a scan over the file's
/// (few) allow comments, not over its text.
pub fn is_allowed(file: &SourceFile, line_no: usize, rule: &str) -> bool {
    file.allows
        .iter()
        .any(|m| m.rule == rule && (m.line == line_no || m.line + 1 == line_no))
}

/// Parses `tidy: allow(...)` markers from the token stream: only plain
/// `//` line comments count — doc comments (`///`, `//!`) mentioning
/// the marker in prose do not create suppressions, and neither do
/// string literals.
fn allow_markers(src: &str, tokens: &[Token]) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let body = &text[2..]; // strip `//`
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment: prose, not a suppression
        }
        // A comment can carry several allow groups (e.g. a marker plus
        // its own `allow(unused-allow)` acknowledgement).
        let mut tail = body;
        while let Some(at) = tail.find("tidy:") {
            tail = tail[at + "tidy:".len()..].trim_start();
            let Some(rest) = tail.strip_prefix("allow(") else { continue };
            tail = rest;
            let Some(inner) = rest.split(')').next() else { continue };
            for rule in inner.split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(AllowMarker { line: t.line, rule: rule.to_string() });
                }
            }
        }
    }
    out
}

/// Runs every per-file lint over one file.
fn check_one(file: &SourceFile, lints: &[Box<dyn Lint>]) -> Vec<Violation> {
    let mut raw = Vec::new();
    for lint in lints {
        if lint.applies(file.kind) {
            lint.check(file, &mut raw);
        }
    }
    raw
}

/// Runs every lint over every file — per-file rules in parallel on
/// [`std::thread::scope`], then the workspace rules — splitting
/// findings into standing and explicitly allowed violations. The result
/// is deterministic and identical to [`check_files_serial`].
pub fn check_files(files: &[SourceFile]) -> Report {
    run_lints(files, true)
}

/// Serial variant of [`check_files`], for comparison and debugging.
pub fn check_files_serial(files: &[SourceFile]) -> Report {
    run_lints(files, false)
}

fn run_lints(files: &[SourceFile], parallel: bool) -> Report {
    let lints = rules::all();
    // Per-file pass. Results are collected per chunk in file order, so
    // the merged vector never depends on thread scheduling.
    let mut raw: Vec<Violation> = if parallel && files.len() > 1 {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let chunk = files.len().div_ceil(workers.min(files.len()));
        std::thread::scope(|s| {
            let lints = &lints;
            let handles: Vec<_> = files
                .chunks(chunk)
                .map(|fs| {
                    s.spawn(move || {
                        fs.iter().flat_map(|f| check_one(f, lints)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    } else {
        files.iter().flat_map(|f| check_one(f, &lints)).collect()
    };

    // Workspace pass: rules that need the cross-file symbol table.
    let ws = symbols::Workspace::build(files);
    for rule in rules::workspace() {
        rule.check(&ws, &mut raw);
    }

    // Partition by allow markers, tracking which markers earned keep.
    let index: HashMap<&Path, usize> =
        files.iter().enumerate().map(|(i, f)| (f.path.as_path(), i)).collect();
    let mut used: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for v in raw {
        match index.get(v.file.as_path()) {
            Some(&fi) => {
                let file = &files[fi];
                let mut suppressed = false;
                for (mi, m) in file.allows.iter().enumerate() {
                    if m.rule == v.rule && (m.line == v.line || m.line + 1 == v.line) {
                        used[fi][mi] = true;
                        suppressed = true;
                    }
                }
                if suppressed {
                    report.allowed.push(v);
                } else {
                    report.violations.push(v);
                }
            }
            // A violation pointing at a path outside the scanned set
            // (should not happen) always stands.
            None => report.violations.push(v),
        }
    }

    // Suppression-rot pass: allow comments that suppressed nothing are
    // themselves findings (and can, one level deep, be acknowledged
    // with `tidy: allow(unused-allow)`).
    for v in rules::unused_allow_pass(files, &used) {
        let fi = index[v.file.as_path()];
        if is_allowed(&files[fi], v.line, v.rule) {
            report.allowed.push(v);
        } else {
            report.violations.push(v);
        }
    }

    report.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.allowed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Walks the workspace at `root` and runs the full lint set.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let files = walk::collect(root)?;
    Ok(check_files(&files))
}

/// Marks, per line, whether that line is inside a `#[cfg(test)]` item
/// (attribute line through closing brace, inclusive). Used by rules
/// that only police shipped library code.
///
/// Exact: the extent comes from token-level brace matching, so braces
/// inside strings or comments cannot fool it.
pub fn test_block_lines(content: &str) -> Vec<bool> {
    let tokens = lexer::lex(content);
    test_lines_from(content, &tokens)
}

fn test_lines_from(content: &str, tokens: &[Token]) -> Vec<bool> {
    let n_lines = content.lines().count();
    let mut flags = vec![false; n_lines];
    let mark = |flags: &mut Vec<bool>, from: usize, to: usize| {
        for line in from..=to.min(n_lines) {
            if line >= 1 {
                flags[line - 1] = true;
            }
        }
    };
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = cfg_test_attr(content, tokens, i) else {
            i += 1;
            continue;
        };
        let attr_line = tokens[i].line;
        // Find the end of the annotated item: the matching close brace
        // of its first `{`, or a terminating `;` (e.g. `mod tests;`).
        let mut c = Cursor::new(content, tokens);
        c.seek(attr_end);
        let mut item_end = None;
        while let Some(t) = c.peek() {
            if t.kind == TokenKind::Punct {
                let text = t.text(content);
                if text == "{" {
                    item_end = c.skip_balanced("{", "}");
                    break;
                }
                if text == ";" {
                    item_end = Some(c.pos() + 1);
                    break;
                }
            }
            c.bump();
        }
        match item_end {
            Some(end) => {
                mark(&mut flags, attr_line, tokens[end - 1].line);
                i = end;
            }
            None => {
                // Unterminated item: everything to EOF is test code.
                mark(&mut flags, attr_line, n_lines);
                break;
            }
        }
    }
    flags
}

/// If `tokens[i..]` starts a `#[cfg(test)]`-style attribute (any `cfg`
/// attribute whose arguments mention the `test` ident), returns the
/// index one past its closing `]`.
fn cfg_test_attr(src: &str, tokens: &[Token], i: usize) -> Option<usize> {
    let mut c = Cursor::new(src, tokens);
    c.seek(i);
    if !c.eat_punct("#") {
        return None;
    }
    if !c.at_punct("[") {
        return None;
    }
    let open = c.pos();
    let end = c.skip_balanced("[", "]")?;
    let mut inner = Cursor::new(src, tokens);
    inner.seek(open + 1);
    if !inner.eat_ident("cfg") {
        return None;
    }
    let mentions_test = tokens[inner.pos()..end]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text(src) == "test");
    mentions_test.then_some(end)
}

/// True for lines that are entirely comments (`//`, `///`, `//!`).
/// Retained for line-oriented checks over non-Rust files; Rust rules
/// consume the token stream instead.
pub fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysFires;
    impl Lint for AlwaysFires {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn explain(&self) -> &'static str {
            "fixture"
        }
        fn applies(&self, kind: FileKind) -> bool {
            kind == FileKind::RustLibrary
        }
        fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
            for (no, line) in file.lines() {
                if line.contains("bad(") {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: no,
                        rule: self.name(),
                        resolution: "token",
                        message: "fixture".into(),
                    });
                }
            }
        }
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let file = SourceFile::new(
            "src/x.rs",
            "let a = 1; // tidy: allow(panic)\n// tidy: allow(panic)\nlet b = 2;\nlet c = 3;\n",
            FileKind::RustLibrary,
        );
        assert!(is_allowed(&file, 1, "panic"));
        assert!(is_allowed(&file, 3, "panic"), "preceding-line allow applies");
        assert!(!is_allowed(&file, 4, "panic"));
        assert!(!is_allowed(&file, 1, "float-eq"), "allow is rule-specific");
    }

    #[test]
    fn allow_markers_ignore_doc_comments_and_strings() {
        let file = SourceFile::new(
            "src/x.rs",
            "/// prose: `// tidy: allow(panic)` is the escape hatch\n\
             //! also prose: // tidy: allow(panic)\n\
             let s = \"// tidy: allow(panic)\";\n\
             let ok = 1; // tidy: allow(float-eq) — justified\n",
            FileKind::RustLibrary,
        );
        assert_eq!(file.allows().len(), 1);
        assert_eq!(file.allows()[0], AllowMarker { line: 4, rule: "float-eq".into() });
    }

    #[test]
    fn allow_markers_support_rule_lists() {
        let file = SourceFile::new(
            "src/x.rs",
            "x(); // tidy: allow(panic, float-eq)\n",
            FileKind::RustLibrary,
        );
        assert!(is_allowed(&file, 1, "panic"));
        assert!(is_allowed(&file, 1, "float-eq"));
        assert!(!is_allowed(&file, 1, "doc"));
    }

    #[test]
    fn report_partitions_allowed_from_standing() {
        let file = SourceFile::new(
            "src/x.rs",
            "bad(); // tidy: allow(panic)\nok();\nbad();\n",
            FileKind::RustLibrary,
        );
        let lint = AlwaysFires;
        let mut raw = Vec::new();
        lint.check(&file, &mut raw);
        let mut report = Report { files_scanned: 1, ..Report::default() };
        for v in raw {
            if is_allowed(&file, v.line, v.rule) {
                report.allowed.push(v);
            } else {
                report.violations.push(v);
            }
        }
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.violations.len(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn test_block_lines_tracks_cfg_test_modules() {
        let src = "\
pub fn shipped() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
pub fn also_shipped() {}
";
        let flags = test_block_lines(src);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn braces_in_strings_and_comments_do_not_fool_test_extents() {
        let src = "\
pub fn shipped() {}
#[cfg(test)]
mod tests {
    // a stray { in a comment
    const S: &str = \"}}}\";
    fn helper() {}
}
pub fn also_shipped() {}
";
        let flags = test_block_lines(src);
        assert_eq!(flags, vec![false, true, true, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_attribute_variants_are_recognized() {
        let src = "\
#[cfg(all(test, feature = \"slow\"))]
mod tests {
    fn t() {}
}
fn shipped() {}
";
        let flags = test_block_lines(src);
        assert_eq!(flags, vec![true, true, true, true, false]);
    }

    #[test]
    fn parallel_and_serial_reports_are_identical() {
        let files: Vec<SourceFile> = (0..16)
            .map(|i| {
                SourceFile::new(
                    format!("crates/x/src/f{i}.rs"),
                    "pub fn f(x: f64) -> bool { q.unwrap(); x == 0.5 }\n\
                     fn g() {} // tidy: allow(doc)\n",
                    FileKind::RustLibrary,
                )
            })
            .collect();
        let par = check_files(&files);
        let ser = check_files_serial(&files);
        assert_eq!(par, ser);
        assert!(!par.violations.is_empty(), "fixture should produce findings");
    }

    #[test]
    fn violation_display_is_file_line_rule_message() {
        let v = Violation {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            rule: "panic",
            resolution: "token",
            message: "found `.unwrap()`".into(),
        };
        assert_eq!(v.to_string(), "crates/x/src/lib.rs:7: panic: found `.unwrap()`");
    }
}
