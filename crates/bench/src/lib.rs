//! Shared reporting helpers for the `sysunc` experiment harness.
//!
//! Each experiment binary (`src/bin/exp_*.rs`) regenerates one
//! table/figure-equivalent of the paper (see EXPERIMENTS.md at the
//! workspace root); the helpers here keep their output format uniform.
//! The [`timing`] module is the in-tree benchmarking harness used by the
//! `benches/` targets in place of an external framework.

pub mod loadgen;
pub mod timing;
pub mod trend;

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Prints a section divider.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Prints a row of labeled values with fixed-width alignment.
pub fn row(label: &str, values: &[(&str, f64)]) {
    print!("  {label:<32}");
    for (name, v) in values {
        print!(" {name}={v:<12.6}");
    }
    println!();
}

/// Formats a probability vector.
pub fn prob_vec(v: &[f64]) -> String { // tidy: allow(prob-contract)
    let parts: Vec<String> = v.iter().map(|p| format!("{p:.4}")).collect();
    format!("[{}]", parts.join(", "))
}
