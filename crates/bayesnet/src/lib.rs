//! # sysunc-bayesnet — discrete Bayesian and evidential networks
//!
//! The graphical-model substrate of the `sysunc` toolkit (reproduction of
//! Gansch & Adee, *System Theoretic View on Uncertainties*, DATE 2020).
//! The paper's Sec. V-B proposes safety analysis with Bayesian networks
//! whose CPTs encode all three uncertainty types — the Fig. 4 / Table I
//! perception chain is the canonical instance, reproduced verbatim in this
//! crate's tests and in experiment E1.
//!
//! - [`BayesNet`] — DAG + CPT construction with full validation;
//!   topological order enforced by construction.
//! - [`Factor`] — discrete factor algebra (product, marginalization,
//!   evidence reduction).
//! - [`VariableElimination`] — exact posterior marginals, joints and
//!   evidence probabilities, with a greedy elimination order.
//! - [`likelihood_weighting`] — approximate inference used as an
//!   independent cross-check.
//! - [`EvidentialNetwork`] — Dempster–Shafer masses on a BN skeleton
//!   (Simon–Weber–Evsukoff, reference \[8\]): nodes range over *focal sets*,
//!   so epistemic indecision and ontological reserve propagate exactly and
//!   queries return [`sysunc_evidence::MassFunction`]s with Bel/Pl bounds.
//!
//! ```
//! use sysunc_bayesnet::BayesNet;
//!
//! // Paper Fig. 4: ground truth -> perception.
//! let mut bn = BayesNet::new();
//! let gt = bn.add_root("ground_truth", vec!["car", "pedestrian", "unknown"],
//!                      vec![0.6, 0.3, 0.1])?;
//! bn.add_node("perception",
//!             vec!["car", "pedestrian", "car_pedestrian", "none"], vec![gt],
//!             vec![vec![0.9, 0.005, 0.05, 0.045],
//!                  vec![0.005, 0.9, 0.05, 0.045],
//!                  vec![0.0, 0.0, 2.0 / 9.0, 7.0 / 9.0]])?;
//! // Diagnosis: what produced a "none" output?
//! let post = bn.marginal("ground_truth", &[("perception", "none")])?;
//! assert!(post[2] > 0.4); // dominated by unknown objects
//! # Ok::<(), sysunc_bayesnet::BnError>(())
//! ```

mod error;
mod evidential;
mod factor;
mod infer;
mod learn;
mod mpe;
mod network;
mod ranked;
mod structure;

pub use error::{BnError, Result};
pub use evidential::EvidentialNetwork;
pub use factor::Factor;
pub use infer::{likelihood_weighting, VariableElimination};
pub use learn::cpt_from_counts;
pub use mpe::most_probable_explanation;
pub use network::{BayesNet, Node};
pub use ranked::ranked_cpt;
pub use structure::d_separated;
